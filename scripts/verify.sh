#!/usr/bin/env bash
# Canonical tier-1 verification entrypoint (CI/tooling).
#
# The workspace has zero external dependencies, so everything here runs
# with --offline against an empty registry cache. Steps:
#   1. release build of every default-member crate
#   2. full test suite (unit + integration + doc-tests, warning-free),
#      run twice: MQO_THREADS=1 (serial oracle) and MQO_THREADS=4
#      (sharded bc_many) — results must be identical by construction
#   3. all remaining targets: examples, benches, experiment binaries
#   4. clippy (all targets, warnings are errors) and rustfmt --check
#   5. one smoke iteration of each bench target via the in-repo harness
#
# `scripts/verify.sh --bench-smoke` skips 1-4 and runs only the bench
# smoke, additionally recording the bc_oracle throughput baseline
# (including the sharded threads ∈ {1,2,4,8} series) to
# BENCH_bc_oracle.json at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

bench_smoke() {
    local record="${1:-}"
    echo "==> bench smoke (1 sample per benchmark)"
    for b in submod_algos bestcost opt_time; do
        MQO_BENCH_SAMPLES=1 MQO_BENCH_WARMUP=1 cargo bench --offline -q -p mqo-bench --bench "$b"
    done
    if [[ "$record" == "record" ]]; then
        echo "==> bc_oracle (3 samples, recording BENCH_bc_oracle.json)"
        MQO_BENCH_SAMPLES=3 MQO_BENCH_JSON="$PWD/BENCH_bc_oracle.json" \
            cargo bench --offline -q -p mqo-bench --bench bc_oracle
    else
        MQO_BENCH_SAMPLES=1 cargo bench --offline -q -p mqo-bench --bench bc_oracle
    fi
}

if [[ "${1:-}" == "--bench-smoke" ]]; then
    bench_smoke record
    exit 0
fi

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline (MQO_THREADS=1, serial oracle)"
MQO_THREADS=1 cargo test -q --offline

echo "==> cargo test -q --offline (MQO_THREADS=4, sharded bc_many)"
MQO_THREADS=4 cargo test -q --offline

echo "==> cargo build --all-targets --offline (examples, benches, bins)"
cargo build --all-targets --offline

echo "==> cargo clippy --offline --all-targets -- -D warnings"
cargo clippy --offline --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

bench_smoke

echo "==> tier-1 verification passed"
