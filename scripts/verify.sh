#!/usr/bin/env bash
# Canonical tier-1 verification entrypoint (CI/tooling).
#
# The workspace has zero external dependencies, so everything here runs
# with --offline against an empty registry cache. Steps:
#   1. release build of every default-member crate
#   2. full test suite (unit + integration + doc-tests, warning-free)
#   3. all remaining targets: examples, benches, experiment binaries
#   4. one smoke iteration of each bench target via the in-repo harness
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

echo "==> cargo build --all-targets --offline (examples, benches, bins)"
cargo build --all-targets --offline

echo "==> bench smoke (1 sample per benchmark)"
for b in submod_algos bestcost opt_time; do
    MQO_BENCH_SAMPLES=1 MQO_BENCH_WARMUP=1 cargo bench --offline -q -p mqo-bench --bench "$b"
done

echo "==> tier-1 verification passed"
