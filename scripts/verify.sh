#!/usr/bin/env bash
# Canonical tier-1 verification entrypoint (CI/tooling).
#
# The workspace has zero external dependencies, so everything here runs
# with --offline against an empty registry cache. Steps:
#   1. release build of every default-member crate
#   2. full test suite (unit + integration + doc-tests, warning-free),
#      run twice: MQO_THREADS=1 (serial oracle) and MQO_THREADS=4
#      (sharded bc_many) — results must be identical by construction
#   3. all remaining targets: examples, benches, experiment binaries
#   4. clippy (all targets, warnings are errors) and rustfmt --check
#   5. one smoke iteration of each bench target via the in-repo harness
#
# `scripts/verify.sh --bench-smoke` skips 1-4 and runs only the bench
# smoke, additionally recording the bc_oracle and memo_expand throughput
# baselines (both carrying per-series `threads` fields) to
# BENCH_bc_oracle.json / BENCH_memo_expand.json at the repo root. Any
# BENCH_*.json baseline missing a `threads` field fails the run.
set -euo pipefail
cd "$(dirname "$0")/.."

check_bench_baselines() {
    # Every recorded baseline must carry the `threads` field, so the
    # serial-vs-parallel provenance of a number is never ambiguous.
    local f
    for f in BENCH_*.json; do
        [[ -e "$f" ]] || continue
        if ! grep -q '"threads"' "$f"; then
            echo "ERROR: $f is missing the \"threads\" field" >&2
            exit 1
        fi
    done
}

bench_smoke() {
    local record="${1:-}"
    echo "==> bench smoke (1 sample per benchmark)"
    for b in submod_algos bestcost opt_time; do
        MQO_BENCH_SAMPLES=1 MQO_BENCH_WARMUP=1 cargo bench --offline -q -p mqo-bench --bench "$b"
    done
    if [[ "$record" == "record" ]]; then
        echo "==> bc_oracle (3 samples, recording BENCH_bc_oracle.json)"
        MQO_BENCH_SAMPLES=3 MQO_BENCH_JSON="$PWD/BENCH_bc_oracle.json" \
            cargo bench --offline -q -p mqo-bench --bench bc_oracle
        echo "==> memo_expand (3 samples, recording BENCH_memo_expand.json)"
        MQO_BENCH_SAMPLES=3 MQO_BENCH_JSON="$PWD/BENCH_memo_expand.json" \
            cargo bench --offline -q -p mqo-bench --bench memo_expand
    else
        MQO_BENCH_SAMPLES=1 cargo bench --offline -q -p mqo-bench --bench bc_oracle
        MQO_BENCH_SAMPLES=1 cargo bench --offline -q -p mqo-bench --bench memo_expand
    fi
    check_bench_baselines
}

if [[ "${1:-}" == "--bench-smoke" ]]; then
    bench_smoke record
    exit 0
fi

echo "==> cargo build --release --offline"
cargo build --release --offline

# The two full-suite runs below are what executes the differential
# suites (engine_differential, memo_differential) under both thread
# settings — parallel ≡ serial bit-identity is pinned on every run.
echo "==> cargo test -q --offline (MQO_THREADS=1: serial oracle + expansion, incl. differential suites)"
MQO_THREADS=1 cargo test -q --offline

echo "==> cargo test -q --offline (MQO_THREADS=4: sharded bc_many + parallel expansion, incl. differential suites)"
MQO_THREADS=4 cargo test -q --offline

echo "==> cargo build --all-targets --offline (examples, benches, bins)"
cargo build --all-targets --offline

echo "==> cargo clippy --offline --all-targets -- -D warnings"
cargo clippy --offline --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

bench_smoke

echo "==> tier-1 verification passed"
