#!/usr/bin/env bash
# Canonical tier-1 verification entrypoint (CI/tooling).
#
# The workspace has zero external dependencies, so everything here runs
# with --offline against an empty registry cache. Steps:
#   1. release build of every default-member crate
#   2. full test suite (unit + integration + doc-tests, warning-free),
#      run twice: MQO_THREADS=1 (serial oracle + expansion) and
#      MQO_THREADS=4 (sharded bc_many + parallel expansion) — results
#      must be identical by construction
#   3. all remaining targets: examples, benches, experiment binaries
#   4. clippy (all targets, warnings are errors), rustfmt --check, and
#      rustdoc with -D warnings (broken intra-doc links on the Session
#      API fail the gate)
#   5. invariant lints: `mqo-lint` (crates/lint) walks the tree with its
#      six token-level rules (float-total-order, lock-poison, wall-clock,
#      hashmap-iter-determinism, banned-api, forbid-unsafe-attr) and any
#      finding fails the gate — this subsumes the old grep checks for
#      poisoning lock sites and removed free functions
#   6. fault-tolerance gate: the seeded fault-injection suite runs by
#      name under both thread settings (in debug builds the serve-layer
#      lock-order detector is live inside it)
#   7. one smoke iteration of each bench target via the in-repo harness
#
# `scripts/verify.sh --bench-smoke` skips 1-5 and runs only the bench
# smoke, additionally recording the bc_oracle, memo_expand, opt_time
# (extract series), scale (universe × batch × threads, incl. the
# 10k-candidate tier), and serve (admission vs rebuild on the concurrent
# serving layer) throughput baselines (all carrying per-series `threads`
# fields) to BENCH_*.json at the repo root. Any BENCH_*.json baseline
# missing a `threads` field fails the run, as does a missing
# BENCH_scale.json, one without the scale-10k tier, a missing
# BENCH_serve.json, or a BENCH_serve.json without the degraded_round
# series and its certified_gap field.
set -euo pipefail
cd "$(dirname "$0")/.."

check_bench_baselines() {
    # Every recorded baseline must carry the `threads` field, so the
    # serial-vs-parallel provenance of a number is never ambiguous.
    local f
    for f in BENCH_*.json; do
        [[ -e "$f" ]] || continue
        if ! grep -q '"threads"' "$f"; then
            echo "ERROR: $f is missing the \"threads\" field" >&2
            exit 1
        fi
    done
    # The opt_time baseline must include the session_evolve series
    # (add/retire vs rebuild on the evolvable-session API) — a recording
    # run that silently dropped it would leave the incremental-admission
    # speedup claim unbacked.
    if [[ -e BENCH_opt_time.json ]] && ! grep -q '"session_evolve"' BENCH_opt_time.json; then
        echo "ERROR: BENCH_opt_time.json is missing the session_evolve series" >&2
        exit 1
    fi
    # The scale baseline is the flagship series (universe × batch size ×
    # threads on the seeded generator); it must exist and must cover the
    # 10k-candidate tier, or the scaling claims in the README go unbacked.
    if [[ ! -e BENCH_scale.json ]]; then
        echo "ERROR: BENCH_scale.json is missing; record it with scripts/verify.sh --bench-smoke" >&2
        exit 1
    fi
    if ! grep -q '"scale-10k"' BENCH_scale.json; then
        echo "ERROR: BENCH_scale.json is missing the scale-10k tier" >&2
        exit 1
    fi
    # The serve baseline backs the serving layer's admission-vs-rebuild
    # claim; it must exist, and (like every baseline, re-checked here for
    # an actionable message) its entries must carry `threads`.
    if [[ ! -e BENCH_serve.json ]]; then
        echo "ERROR: BENCH_serve.json is missing; record it with scripts/verify.sh --bench-smoke" >&2
        exit 1
    fi
    if ! grep -q '"threads"' BENCH_serve.json; then
        echo "ERROR: BENCH_serve.json entries are missing the \"threads\" field" >&2
        exit 1
    fi
    # The fault-tolerance claim needs its number: the degraded_round
    # series (deadline-hit admission latency) with its machine-independent
    # certified gap must be recorded, or "degrades to a certified partial
    # answer" is an unbacked sentence in the README.
    if ! grep -q '"degraded_round"' BENCH_serve.json; then
        echo "ERROR: BENCH_serve.json is missing the degraded_round series" >&2
        exit 1
    fi
    if ! grep -q '"certified_gap"' BENCH_serve.json; then
        echo "ERROR: BENCH_serve.json degraded_round entries are missing certified_gap" >&2
        exit 1
    fi
}

bench_smoke() {
    local record="${1:-}"
    echo "==> bench smoke (1 sample per benchmark)"
    for b in submod_algos bestcost; do
        MQO_BENCH_SAMPLES=1 MQO_BENCH_WARMUP=1 cargo bench --offline -q -p mqo-bench --bench "$b"
    done
    if [[ "$record" == "record" ]]; then
        echo "==> bc_oracle (3 samples, recording BENCH_bc_oracle.json)"
        MQO_BENCH_SAMPLES=3 MQO_BENCH_JSON="$PWD/BENCH_bc_oracle.json" \
            cargo bench --offline -q -p mqo-bench --bench bc_oracle
        echo "==> memo_expand (3 samples, recording BENCH_memo_expand.json)"
        MQO_BENCH_SAMPLES=3 MQO_BENCH_JSON="$PWD/BENCH_memo_expand.json" \
            cargo bench --offline -q -p mqo-bench --bench memo_expand
        echo "==> opt_time (3 samples, recording BENCH_opt_time.json extract series)"
        MQO_BENCH_SAMPLES=3 MQO_BENCH_JSON="$PWD/BENCH_opt_time.json" \
            cargo bench --offline -q -p mqo-bench --bench opt_time
        echo "==> scale (3 samples, recording BENCH_scale.json incl. the scale-10k tier)"
        MQO_BENCH_SAMPLES=3 MQO_BENCH_JSON="$PWD/BENCH_scale.json" \
            cargo bench --offline -q -p mqo-bench --bench scale
        echo "==> serve (15 samples, recording BENCH_serve.json)"
        MQO_BENCH_SAMPLES=15 MQO_BENCH_JSON="$PWD/BENCH_serve.json" \
            cargo bench --offline -q -p mqo-bench --bench serve
    else
        MQO_BENCH_SAMPLES=1 cargo bench --offline -q -p mqo-bench --bench bc_oracle
        MQO_BENCH_SAMPLES=1 cargo bench --offline -q -p mqo-bench --bench memo_expand
        MQO_BENCH_SAMPLES=1 MQO_BENCH_WARMUP=1 cargo bench --offline -q -p mqo-bench --bench opt_time
        # Non-recording path: smoke + mid tiers only (the 10k tier takes
        # minutes and is covered by recording runs).
        MQO_BENCH_SAMPLES=1 cargo bench --offline -q -p mqo-bench --bench scale
        MQO_BENCH_SAMPLES=1 cargo bench --offline -q -p mqo-bench --bench serve
    fi
    check_bench_baselines
}

if [[ "${1:-}" == "--bench-smoke" ]]; then
    bench_smoke record
    exit 0
fi

echo "==> cargo build --release --offline"
cargo build --release --offline

# The two full-suite runs below are what executes the differential
# suites (engine_differential, memo_differential,
# plan_extraction_differential) under both thread settings — parallel ≡
# serial bit-identity and arena ≡ PlanTable plan-extraction equivalence
# are pinned on every run.
echo "==> cargo test -q --offline (MQO_THREADS=1: serial oracle + expansion, incl. differential suites)"
MQO_THREADS=1 cargo test -q --offline

echo "==> cargo test -q --offline (MQO_THREADS=4: sharded bc_many + parallel expansion, incl. differential suites)"
MQO_THREADS=4 cargo test -q --offline

# The serving-layer stress suite runs inside the full suites above, but
# the concurrency gate is re-run here by name so a filtered or partial
# test invocation can never silently skip it: concurrent
# submit/retire/read interleavings must stay bit-identical to fresh
# single-threaded builds of the surviving queries, under both engine
# thread settings.
echo "==> serve stress (concurrent service differential, MQO_THREADS=1)"
MQO_THREADS=1 cargo test -q --offline -p mqo-core --test serve_stress
echo "==> serve stress (concurrent service differential, MQO_THREADS=4)"
MQO_THREADS=4 cargo test -q --offline -p mqo-core --test serve_stress

# Likewise the fault-injection suite (seeded failpoints: oracle panics,
# admission-precommit panics, writer-lock poisoning, deadline budgets) is
# re-run by name under both engine thread settings: a service that
# survives chaos at MQO_THREADS=1 but wedges at 4 must fail the gate.
echo "==> fault injection (seeded failpoints, MQO_THREADS=1)"
MQO_THREADS=1 cargo test -q --offline -p mqo-core --test fault_injection
echo "==> fault injection (seeded failpoints, MQO_THREADS=4)"
MQO_THREADS=4 cargo test -q --offline -p mqo-core --test fault_injection

echo "==> cargo build --all-targets --offline (examples, benches, bins)"
cargo build --all-targets --offline

echo "==> cargo clippy --offline --all-targets -- -D warnings"
cargo clippy --offline --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo doc --no-deps --offline (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline -q

echo "==> mqo-lint (six invariant rules; any finding fails the gate)"
cargo run --offline --release -q -p mqo-lint -- --json

bench_smoke

echo "==> tier-1 verification passed"
