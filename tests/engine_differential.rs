//! Differential sweeps for the refactored `bestCost` evaluation stack:
//! the CSR-arena incremental/batched paths must agree with the
//! full-recomputation ablation bit-for-bit (well under `1e-9` relative) on
//! random subsets of a real TPCD 4-query batch, and the batched oracle API
//! must agree with a plain `eval` loop.

use std::cell::RefCell;

use mqo_core::batch::BatchDag;
use mqo_core::benefit::MbFunction;
use mqo_core::engine::{BestCostEngine, MqoConfig};
use mqo_submod::bitset::BitSet;
use mqo_submod::function::SetFunction;
use mqo_submod::prng::{seeded_sweep, Prng};
use mqo_volcano::cost::DiskCostModel;
use mqo_volcano::rules::RuleSet;

const SWEEP_SEED: u64 = 0x5EED_0010;

fn bq4() -> BatchDag {
    let w = mqo_tpcd::batched(4, 1.0);
    BatchDag::build(w.ctx, &w.queries, &RuleSet::default())
}

fn engine(batch: &BatchDag, config: MqoConfig) -> BestCostEngine {
    let cm = DiskCostModel::paper();
    BestCostEngine::with_config(batch.memo(), &cm, batch.root(), batch.shareable(), config)
}

fn random_subset(rng: &mut Prng, n: usize) -> BitSet {
    let density = rng.gen_range(0.05..0.6);
    BitSet::from_iter(n, (0..n).filter(|_| rng.gen_bool(density)))
}

/// Incremental evaluation (overlay + rebase heuristic) matches `force_full`
/// on random subsets of the TPCD 4-query batch.
#[test]
fn incremental_matches_force_full_on_bq4() {
    let batch = bq4();
    let n = batch.universe_size();
    assert!(n > 0);
    let inc = RefCell::new(engine(&batch, MqoConfig::default()));
    let full = RefCell::new(engine(
        &batch,
        MqoConfig {
            force_full: true,
            ..Default::default()
        },
    ));
    seeded_sweep("incremental_vs_force_full", SWEEP_SEED, 32, |rng| {
        let set = random_subset(rng, n);
        let a = inc.borrow_mut().bc(&set);
        let b = full.borrow_mut().bc(&set);
        assert!(
            (a - b).abs() < 1e-9 * (1.0 + b.abs()),
            "incremental {a} vs full {b} on {set:?}"
        );
    });
}

/// `bc_many` (shared-base batched evaluation) matches `force_full` on
/// random candidate batches, across rebase thresholds.
#[test]
fn batched_matches_force_full_on_bq4() {
    let batch = bq4();
    let n = batch.universe_size();
    let full = RefCell::new(engine(
        &batch,
        MqoConfig {
            force_full: true,
            ..Default::default()
        },
    ));
    for threshold in [0usize, 4, usize::MAX] {
        let batched = RefCell::new(engine(
            &batch,
            MqoConfig {
                rebase_threshold: threshold,
                ..Default::default()
            },
        ));
        seeded_sweep(
            "batched_vs_force_full",
            SWEEP_SEED + 1 + threshold as u64 % 97,
            12,
            |rng| {
                // A greedy-round-shaped batch: shared base + one extra
                // element per candidate, plus a couple of arbitrary sets.
                let base = random_subset(rng, n);
                let mut sets: Vec<BitSet> = (0..n)
                    .filter(|&e| !base.contains(e) && e % 3 == 0)
                    .map(|e| base.with(e))
                    .collect();
                sets.push(random_subset(rng, n));
                sets.push(base.clone());
                let many = batched.borrow_mut().bc_many(&sets);
                for (s, &v) in sets.iter().zip(&many) {
                    let expect = full.borrow_mut().bc(s);
                    assert!(
                        (v - expect).abs() < 1e-9 * (1.0 + expect.abs()),
                        "threshold {threshold}: batched {v} vs full {expect}"
                    );
                }
            },
        );
    }
}

/// `marginal_many` on the real materialization-benefit function is
/// bit-identical to a `marginal` loop (the arithmetic mirrors the default
/// implementation exactly; only the oracle work differs).
#[test]
fn marginal_many_equals_marginal_loop_on_mb() {
    let batch = bq4();
    let cm = DiskCostModel::paper();
    let mb_batched = MbFunction::new(BestCostEngine::new(
        batch.memo(),
        &cm,
        batch.root(),
        batch.shareable(),
    ));
    let mb_loop = MbFunction::new(BestCostEngine::new(
        batch.memo(),
        &cm,
        batch.root(),
        batch.shareable(),
    ));
    let n = mb_batched.universe();
    seeded_sweep(
        "marginal_many_vs_marginal_loop",
        SWEEP_SEED + 3,
        12,
        |rng| {
            let base = random_subset(rng, n);
            let elems: Vec<usize> = (0..n)
                .filter(|&e| !base.contains(e) && e % 5 == 0)
                .collect();
            if elems.is_empty() {
                return;
            }
            let many = mb_batched.marginal_many(&elems, &base);
            for (&e, &m) in elems.iter().zip(&many) {
                let expect = mb_loop.marginal(e, &base);
                assert!(
                    (m - expect).abs() < 1e-9 * (1.0 + expect.abs()),
                    "element {e}: marginal_many {m} vs marginal {expect}"
                );
            }
        },
    );
}

/// `eval_many` on the real materialization-benefit function is equivalent
/// to an `eval` loop, and both count one oracle call per set.
#[test]
fn eval_many_equals_eval_loop_on_mb() {
    let batch = bq4();
    let cm = DiskCostModel::paper();
    let mb_batched = MbFunction::new(BestCostEngine::new(
        batch.memo(),
        &cm,
        batch.root(),
        batch.shareable(),
    ));
    let mb_loop = MbFunction::new(BestCostEngine::new(
        batch.memo(),
        &cm,
        batch.root(),
        batch.shareable(),
    ));
    let n = mb_batched.universe();
    seeded_sweep("eval_many_vs_eval_loop", SWEEP_SEED + 2, 16, |rng| {
        let base = random_subset(rng, n);
        let mut sets: Vec<BitSet> = (0..n)
            .filter(|&e| !base.contains(e) && e % 4 == 0)
            .map(|e| base.with(e))
            .collect();
        sets.push(random_subset(rng, n));
        let before = mb_batched.bc_calls();
        let many = mb_batched.eval_many(&sets);
        assert_eq!(
            mb_batched.bc_calls(),
            before + sets.len() as u64,
            "eval_many must count one bc call per set"
        );
        for (s, &v) in sets.iter().zip(&many) {
            let expect = mb_loop.eval(s);
            assert!(
                (v - expect).abs() < 1e-9 * (1.0 + expect.abs()),
                "eval_many {v} vs eval {expect}"
            );
        }
    });
}
