//! Cross-crate property tests: the paper's structural claims checked on the
//! real materialization-benefit function (not just abstract instances).

use mqo_core::batch::BatchDag;
use mqo_core::benefit::MbFunction;
use mqo_core::engine::BestCostEngine;
use mqo_submod::bitset::{all_subsets, BitSet};
use mqo_submod::function::SetFunction;
use mqo_volcano::cost::DiskCostModel;
use mqo_volcano::optimizer::{MatOverlay, Optimizer, PlanTable};
use mqo_volcano::rules::RuleSet;

fn mb_for(workload: &str, sf: f64) -> (BatchDag, MbFunction) {
    let w = if let Some(i) = workload.strip_prefix("BQ") {
        mqo_tpcd::batched(i.parse().unwrap(), sf)
    } else {
        mqo_tpcd::standalone(workload, sf)
    };
    let batch = BatchDag::build(w.ctx, &w.queries, &RuleSet::default());
    let cm = DiskCostModel::paper();
    let engine = BestCostEngine::new(batch.memo(), &cm, batch.root(), batch.shareable());
    let mb = MbFunction::new(engine);
    (batch, mb)
}

#[test]
fn mb_is_normalized_on_real_workloads() {
    for wl in ["BQ2", "Q11", "Q15"] {
        let (_, mb) = mb_for(wl, 1.0);
        assert_eq!(mb.eval(&BitSet::empty(mb.universe())), 0.0, "{wl}");
    }
}

#[test]
fn decomposition_identity_on_real_mb() {
    // Proposition 1: f = f*_M − c* on every subset (exhaustive on Q11's
    // small universe).
    let (_, mb) = mb_for("Q11", 1.0);
    let n = mb.universe();
    assert!(n <= 12, "Q11's universe should be small (got {n})");
    let d = mb.canonical_decomposition();
    for s in all_subsets(n) {
        let direct = mb.eval(&s);
        let recomposed = d.monotone_value(&mb, &s) - d.cost_of(&s);
        assert!(
            (direct - recomposed).abs() < 1e-6 * (1.0 + direct.abs()),
            "set {s:?}"
        );
    }
}

#[test]
fn best_use_cost_is_monotone_nonincreasing_in_s() {
    // buc(S) is monotonically decreasing (Section 2.4): more materialized
    // nodes can only reduce the best-use cost.
    let (batch, mb) = mb_for("BQ2", 1.0);
    let n = mb.universe();
    let cm = DiskCostModel::paper();
    let opt = Optimizer::new(batch.memo(), &cm);

    let mut sets = vec![BitSet::empty(n)];
    // A nested chain ∅ ⊂ S1 ⊂ S2 ⊂ ... over the first few elements.
    for e in 0..n.min(6) {
        let mut next = sets.last().expect("non-empty").clone();
        next.insert(e);
        sets.push(next);
    }
    let mut prev = f64::INFINITY;
    for s in &sets {
        let overlay = MatOverlay::new(batch.memo(), s.iter().map(|e| batch.shareable()[e]));
        let mut table = PlanTable::new();
        let buc = opt.best_use_cost(batch.root(), &overlay, &mut table);
        assert!(
            buc <= prev + 1e-6,
            "buc must not increase as S grows: {buc} after {prev}"
        );
        prev = buc;
    }
}

#[test]
fn engine_and_reference_agree_on_random_subsets() {
    let (batch, mb) = mb_for("BQ2", 1.0);
    let n = mb.universe();
    let cm = DiskCostModel::paper();
    let opt = Optimizer::new(batch.memo(), &cm);

    let mut state = 0xDEADBEEFu64;
    for _ in 0..10 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let set = BitSet::from_iter(n, (0..n).filter(|e| (state >> (e % 61)) & 3 == 0));
        let engine_bc = mb.bc(&set);

        let groups: Vec<_> = set.iter().map(|e| batch.shareable()[e]).collect();
        let overlay = MatOverlay::new(batch.memo(), groups.iter().copied());
        let mut table = PlanTable::new();
        let mut reference = opt.best_use_cost(batch.root(), &overlay, &mut table);
        for &g in &groups {
            reference += opt.produce_cost(g, &overlay) + opt.write_cost(g);
        }
        assert!(
            (engine_bc - reference).abs() < 1e-6 * (1.0 + reference),
            "engine {engine_bc} vs reference {reference}"
        );
    }
}

#[test]
fn incremental_equals_full_on_real_mb() {
    let w = mqo_tpcd::batched(3, 1.0);
    let batch = BatchDag::build(w.ctx, &w.queries, &RuleSet::default());
    let cm = DiskCostModel::paper();
    let inc = MbFunction::new(BestCostEngine::new(
        batch.memo(),
        &cm,
        batch.root(),
        batch.shareable(),
    ));
    let full = MbFunction::new(BestCostEngine::new(
        batch.memo(),
        &cm,
        batch.root(),
        batch.shareable(),
    ));
    full.set_force_full(true);
    let n = inc.universe();
    let mut state = 777u64;
    for _ in 0..25 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let set = BitSet::from_iter(n, (0..n).filter(|e| (state >> (e % 59)) & 7 == 0));
        let a = inc.eval(&set);
        let b = full.eval(&set);
        assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()), "{a} vs {b}");
    }
}

#[test]
fn monotonicity_heuristic_mostly_holds_on_tpcd() {
    // The paper adopts the supermodularity-of-bestCost assumption because
    // Pyro observed it "may be a reasonable one" in practice. Measure the
    // violation rate on a real workload: sampled submodularity checks
    // f'(u, A) >= f'(u, A ∪ {v}) should hold for the vast majority of
    // triples.
    let (_, mb) = mb_for("BQ2", 1.0);
    let n = mb.universe();
    let mut checked = 0u32;
    let mut violated = 0u32;
    let mut state = 42u64;
    for _ in 0..60 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let a = BitSet::from_iter(n, (0..n).filter(|e| (state >> (e % 53)) & 7 == 0));
        let u = (state >> 8) as usize % n;
        let v = (state >> 24) as usize % n;
        if u == v || a.contains(u) || a.contains(v) {
            continue;
        }
        let lhs = mb.marginal(u, &a);
        let rhs = mb.marginal(u, &a.with(v));
        checked += 1;
        if lhs + 1e-6 * (1.0 + lhs.abs()) < rhs {
            violated += 1;
        }
    }
    assert!(checked > 10, "not enough samples");
    let rate = f64::from(violated) / f64::from(checked);
    assert!(
        rate < 0.35,
        "submodularity violated in {violated}/{checked} samples — far beyond \
         the 'reasonable assumption' regime"
    );
}
