//! Integration test: the paper's Example 1 (Figure 1), end to end, with the
//! exact published numbers.

use mqo_catalog::{Catalog, TableBuilder};
use mqo_core::session::{OptimizedBatch, Session};
use mqo_core::strategies::Strategy;
use mqo_volcano::cost::UnitCostModel;
use mqo_volcano::physical::PhysOp;
use mqo_volcano::rules::RuleSet;
use mqo_volcano::{DagContext, PlanNode, Predicate};

fn example1_batch() -> OptimizedBatch {
    let mut cat = Catalog::new();
    for name in ["a", "b", "c", "d"] {
        cat.add_table(
            TableBuilder::new(name, 1000.0)
                .key_column(format!("{name}_key"), 8)
                .column(format!("{name}_fk"), 1000.0, (0, 999), 8)
                .primary_key(&[&format!("{name}_key")])
                .build(),
        );
    }
    let mut ctx = DagContext::new(cat);
    let a = ctx.instance_by_name("a", 0);
    let b = ctx.instance_by_name("b", 0);
    let c = ctx.instance_by_name("c", 0);
    let d = ctx.instance_by_name("d", 0);
    let p_ab = Predicate::join(ctx.col(a, "a_key"), ctx.col(b, "b_fk"));
    let p_bc = Predicate::join(ctx.col(b, "b_key"), ctx.col(c, "c_fk"));
    let p_bd = Predicate::join(ctx.col(b, "b_key"), ctx.col(d, "d_fk"));
    let q1 = PlanNode::scan(a)
        .join(PlanNode::scan(b), p_ab)
        .join(PlanNode::scan(c), p_bc.clone());
    let q2 = PlanNode::scan(b)
        .join(PlanNode::scan(c), p_bc)
        .join(PlanNode::scan(d), p_bd);
    Session::builder()
        .context(ctx)
        .queries([q1, q2])
        .rules(RuleSet::joins_only())
        .cost_model(UnitCostModel)
        .build()
}

#[test]
fn volcano_cost_is_460() {
    // 6 base-relation accesses ×10 + 4 joins ×100 = 460 (Figure 1a).
    let batch = example1_batch();
    let r = batch.run(Strategy::Volcano);
    assert_eq!(r.total_cost, 460.0);
}

#[test]
fn sharing_b_join_c_costs_370() {
    // B⋈C computed once (2 scans + join = 120), materialized (10), read
    // twice (2×10), plus scans of A and D (20) and two joins (200) = 370
    // (Figure 1b).
    let batch = example1_batch();
    for strategy in [
        Strategy::Greedy,
        Strategy::LazyGreedy,
        Strategy::MarginalGreedy,
        Strategy::LazyMarginalGreedy,
    ] {
        let r = batch.run(strategy);
        assert_eq!(r.total_cost, 370.0, "{}", r.strategy);
        assert_eq!(r.benefit, 90.0);
        assert_eq!(r.materialized.len(), 1);
        // The materialized node is the two-leaf group (B⋈C).
        let props = batch.batch().memo().props(r.materialized[0]);
        assert_eq!(props.leaves.len(), 2);
    }
}

#[test]
fn consolidated_plan_reads_materialized_node_twice() {
    let batch = example1_batch();
    let r = batch.run(Strategy::MarginalGreedy);
    let plan = &r.plan;
    assert_eq!(plan.total_cost, 370.0);
    assert_eq!(plan.materializations.len(), 1);
    assert_eq!(plan.query_plans.len(), 2);
    let reads: usize = plan
        .query_plans
        .iter()
        .map(|p| {
            p.nodes()
                .iter()
                .filter(|n| matches!(n.op, PhysOp::MaterializedRead { .. }))
                .count()
        })
        .sum();
    assert_eq!(reads, 2, "each query must read the shared B⋈C once");
}

#[test]
fn roots_unify_so_bc_is_a_single_dag() {
    // The expanded DAG contains exactly one group per connected relation
    // subset; B⋈C is shared between the two queries.
    let batch = example1_batch();
    assert_eq!(batch.batch().query_roots().len(), 2);
    let bc_groups: Vec<_> = batch
        .batch()
        .shareable()
        .iter()
        .filter(|&&g| batch.batch().memo().props(g).leaves.len() == 2)
        .collect();
    // Exactly the B⋈C group is a shareable 2-leaf node reachable from both
    // queries (A⋈B and B⋈D exist but have a single relevant parent each —
    // they may appear, but B⋈C must be present).
    assert!(!bc_groups.is_empty());
}
