//! Optimality-gap measurement: on workloads whose shareable universe is
//! small enough, compare the greedy heuristics against the exhaustive
//! optimum (the ground truth the paper calls untenable at scale — here the
//! `bc` oracle makes 2^n evaluations affordable for small n).

use mqo_core::session::{OptimizedBatch, Session};
use mqo_core::strategies::Strategy;
use mqo_volcano::cost::DiskCostModel;
use mqo_volcano::rules::RuleSet;

fn build(name: &str) -> OptimizedBatch {
    let w = mqo_tpcd::standalone(name, 1.0);
    Session::builder()
        .context(w.ctx)
        .queries(w.queries)
        .rules(RuleSet::default())
        .cost_model(DiskCostModel::paper())
        .build()
}

#[test]
fn greedy_is_optimal_on_q11_and_q15() {
    for name in ["Q11", "Q15"] {
        let batch = build(name);
        assert!(batch.universe_size() <= 20, "{name} universe too large");
        let exhaustive = batch.run(Strategy::Exhaustive);
        let greedy = batch.run(Strategy::Greedy);
        assert!(
            greedy.total_cost <= exhaustive.total_cost + 1e-6 * (1.0 + exhaustive.total_cost),
            "{name}: Greedy {} worse than optimal {}",
            greedy.total_cost,
            exhaustive.total_cost
        );
    }
}

#[test]
fn marginal_greedy_with_cleanup_closes_the_gap_on_q11() {
    // MarginalGreedy alone trails the optimum on Q11 (the mb function
    // violates submodularity there — see EXPERIMENTS.md); the cleanup
    // extension recovers it.
    let batch = build("Q11");
    let exhaustive = batch.run(Strategy::Exhaustive);
    let cleaned = batch.run(Strategy::MarginalGreedyCleanup);
    assert!(
        cleaned.total_cost <= exhaustive.total_cost + 1e-6 * (1.0 + exhaustive.total_cost),
        "cleanup must reach the optimum on Q11: {} vs {}",
        cleaned.total_cost,
        exhaustive.total_cost
    );
}

#[test]
fn exhaustive_never_beats_bc_empty_without_reason() {
    // Sanity: the exhaustive optimum is at most bc(∅) (the empty set is a
    // candidate) and matches Volcano exactly when nothing helps.
    let batch = build("Q2");
    let volcano = batch.run(Strategy::Volcano);
    let exhaustive = batch.run(Strategy::Exhaustive);
    assert!(exhaustive.total_cost <= volcano.total_cost + 1e-6);
}
