//! Optimality-gap measurement: on workloads whose shareable universe is
//! small enough, compare the greedy heuristics against the exhaustive
//! optimum (the ground truth the paper calls untenable at scale — here the
//! `bc` oracle makes 2^n evaluations affordable for small n).

use mqo_core::session::{OptimizedBatch, Session};
use mqo_core::strategies::Strategy;
use mqo_core::MqoConfig;
use mqo_volcano::cost::DiskCostModel;
use mqo_volcano::rules::RuleSet;

fn build(name: &str) -> OptimizedBatch {
    let w = mqo_tpcd::standalone(name, 1.0);
    Session::builder()
        .context(w.ctx)
        .queries(w.queries)
        .rules(RuleSet::default())
        .cost_model(DiskCostModel::paper())
        .build()
}

#[test]
fn greedy_is_optimal_on_q11_and_q15() {
    for name in ["Q11", "Q15"] {
        let batch = build(name);
        assert!(batch.universe_size() <= 20, "{name} universe too large");
        let exhaustive = batch.run(Strategy::Exhaustive);
        let greedy = batch.run(Strategy::Greedy);
        assert!(
            greedy.total_cost <= exhaustive.total_cost + 1e-6 * (1.0 + exhaustive.total_cost),
            "{name}: Greedy {} worse than optimal {}",
            greedy.total_cost,
            exhaustive.total_cost
        );
    }
}

#[test]
fn marginal_greedy_with_cleanup_closes_the_gap_on_q11() {
    // MarginalGreedy alone trails the optimum on Q11 (the mb function
    // violates submodularity there — see EXPERIMENTS.md); the cleanup
    // extension recovers it.
    let batch = build("Q11");
    let exhaustive = batch.run(Strategy::Exhaustive);
    let cleaned = batch.run(Strategy::MarginalGreedyCleanup);
    assert!(
        cleaned.total_cost <= exhaustive.total_cost + 1e-6 * (1.0 + exhaustive.total_cost),
        "cleanup must reach the optimum on Q11: {} vs {}",
        cleaned.total_cost,
        exhaustive.total_cost
    );
}

/// The gap certificate is a *valid* bound wherever the exhaustive ground
/// truth is affordable and the submodularity assumption holds: the
/// certified `cost_lower_bound` must not exceed the exhaustive optimum,
/// and the returned plan must be within `ratio` of it — i.e.
/// `total_cost ≤ ratio × exhaustive cost` whenever the ratio is finite.
///
/// Q11 is the documented counterexample for the marginal decomposition
/// (its `mb` violates submodularity — see
/// `marginal_greedy_with_cleanup_closes_the_gap_on_q11` above), so the
/// marginal strategies are asserted on Q15 only; Greedy/LazyGreedy
/// observe `mb` marginals that are exact on both.
#[test]
fn gap_certificates_are_valid_bounds_against_exhaustive() {
    for name in ["Q11", "Q15"] {
        let batch = build(name);
        let exhaustive = batch.run(Strategy::Exhaustive);
        assert!(
            exhaustive.gap_certificate.is_none(),
            "exhaustive never certifies"
        );
        let mut strategies = vec![Strategy::Greedy, Strategy::LazyGreedy];
        if name != "Q11" {
            strategies.extend([Strategy::MarginalGreedy, Strategy::LazyMarginalGreedy]);
        }
        for strategy in strategies {
            let r = batch.run(strategy);
            let cert = r
                .gap_certificate
                .unwrap_or_else(|| panic!("{name}/{strategy:?}: greedy runs always certify"));
            assert!(
                !cert.truncated,
                "{name}/{strategy:?}: unbudgeted run truncated"
            );
            assert!(
                cert.ratio >= 1.0,
                "{name}/{strategy:?}: certified ratio {} below 1",
                cert.ratio
            );
            let eps = 1e-6 * (1.0 + exhaustive.total_cost);
            assert!(
                cert.cost_lower_bound <= exhaustive.total_cost + eps,
                "{name}/{strategy:?}: lower bound {} exceeds the optimum {}",
                cert.cost_lower_bound,
                exhaustive.total_cost
            );
            if cert.ratio.is_finite() {
                assert!(
                    r.total_cost <= cert.ratio * exhaustive.total_cost + eps,
                    "{name}/{strategy:?}: cost {} outside certified ratio {} of optimum {}",
                    r.total_cost,
                    cert.ratio,
                    exhaustive.total_cost
                );
            }
        }
    }
}

/// The caveat itself, pinned: on Q11 the marginal decomposition's
/// converged certificate is self-consistent (it certifies its own run at
/// ratio 1.0 — no observed marginal promises more) but the submodularity
/// violation makes it blind to the better optimum Greedy finds. The
/// certificate is exactly as trustworthy as the heuristic it certifies.
#[test]
fn q11_marginal_certificate_inherits_the_submodularity_caveat() {
    let batch = build("Q11");
    let exhaustive = batch.run(Strategy::Exhaustive);
    let r = batch.run(Strategy::MarginalGreedy);
    let cert = r.gap_certificate.expect("greedy strategies certify");
    assert!(!cert.truncated);
    assert!(
        cert.ratio >= 1.0 && cert.cost_lower_bound <= r.total_cost + 1e-6,
        "the certificate must at least be consistent with its own run"
    );
    assert!(
        r.total_cost > exhaustive.total_cost + 1.0,
        "if this starts holding, Q11 stopped violating submodularity — \
         fold the marginal strategies back into the validity test above"
    );
}

/// Deadline-budgeted (anytime) runs still return a complete plan and a
/// valid — possibly vacuous (`+∞`) — certificate, and a generous budget
/// converges to the unbudgeted run bit-for-bit.
#[test]
fn budgeted_runs_certify_validly() {
    let batch = build("Q11");
    let exhaustive = batch.run(Strategy::Exhaustive);
    let eps = 1e-6 * (1.0 + exhaustive.total_cost);

    // A zero budget truncates immediately: the no-sharing plan comes back
    // with a vacuous-or-valid certificate, never a wrong one.
    let strangled = MqoConfig {
        time_budget: Some(std::time::Duration::ZERO),
        ..MqoConfig::serial()
    };
    let r = batch.run_with(Strategy::MarginalGreedy, strangled);
    let cert = r.gap_certificate.expect("budgeted greedy certifies");
    assert!(cert.truncated);
    assert!(cert.ratio >= 1.0);
    assert!(cert.cost_lower_bound <= exhaustive.total_cost + eps);
    assert!(r.total_cost.is_finite() && !r.plan.query_plans.is_empty());

    // A generous budget changes nothing: same picks, same costs, and the
    // converged certificate.
    let generous = MqoConfig {
        time_budget: Some(std::time::Duration::from_secs(3600)),
        ..MqoConfig::serial()
    };
    let budgeted = batch.run_with(Strategy::MarginalGreedy, generous);
    let plain = batch.run_with(Strategy::MarginalGreedy, MqoConfig::serial());
    assert_eq!(budgeted.total_cost.to_bits(), plain.total_cost.to_bits());
    assert_eq!(budgeted.materialized, plain.materialized);
    assert!(!budgeted.gap_certificate.unwrap().truncated);

    // The deterministic early-exit knob: an impossibly high marginal floor
    // also degrades to the no-sharing plan, with a certificate.
    let floored = MqoConfig {
        marginal_floor: f64::MAX,
        ..MqoConfig::serial()
    };
    let r = batch.run_with(Strategy::Greedy, floored);
    let cert = r.gap_certificate.expect("floored greedy certifies");
    assert!(
        cert.truncated,
        "an unreachable floor must cut the run short"
    );
    assert!(r.materialized.is_empty());
}

#[test]
fn exhaustive_never_beats_bc_empty_without_reason() {
    // Sanity: the exhaustive optimum is at most bc(∅) (the empty set is a
    // candidate) and matches Volcano exactly when nothing helps.
    let batch = build("Q2");
    let volcano = batch.run(Strategy::Volcano);
    let exhaustive = batch.run(Strategy::Exhaustive);
    assert!(exhaustive.total_cost <= volcano.total_cost + 1e-6);
}
