//! Integration tests: the TPCD workloads end to end, asserting the
//! qualitative shapes the paper reports.

use mqo_core::batch::BatchDag;
use mqo_core::consolidated::ConsolidatedPlan;
use mqo_core::engine::EngineConfig;
use mqo_core::strategies::{optimize, optimize_with, Strategy};
use mqo_volcano::cost::DiskCostModel;
use mqo_volcano::rules::RuleSet;

fn build(name_or_bq: &str, sf: f64) -> BatchDag {
    let w = if let Some(i) = name_or_bq.strip_prefix("BQ") {
        mqo_tpcd::batched(i.parse().unwrap(), sf)
    } else {
        mqo_tpcd::standalone(name_or_bq, sf)
    };
    BatchDag::build(w.ctx, &w.queries, &RuleSet::default())
}

#[test]
fn mqo_never_worse_than_volcano_on_batches() {
    let cm = DiskCostModel::paper();
    for i in 1..=6 {
        let batch = build(&format!("BQ{i}"), 1.0);
        let volcano = optimize(&batch, &cm, Strategy::Volcano);
        for s in [Strategy::Greedy, Strategy::MarginalGreedy] {
            let r = optimize(&batch, &cm, s);
            assert!(
                r.total_cost <= volcano.total_cost + 1e-6,
                "BQ{i} {}: {} > {}",
                r.strategy,
                r.total_cost,
                volcano.total_cost
            );
        }
    }
}

#[test]
fn sharing_kicks_in_from_bq2() {
    // BQ2 onward mixes queries with overlapping subexpressions; the greedy
    // strategies must find strictly positive benefit (the paper reports
    // 12%..57% improvements).
    let cm = DiskCostModel::paper();
    for i in 2..=6 {
        let batch = build(&format!("BQ{i}"), 1.0);
        let r = optimize(&batch, &cm, Strategy::Greedy);
        assert!(
            r.improvement_pct() > 5.0,
            "BQ{i}: expected materially positive improvement, got {:.1}%",
            r.improvement_pct()
        );
        assert!(!r.materialized.is_empty());
    }
}

#[test]
fn lazy_variants_agree_with_eager_on_tpcd() {
    // The paper's experiments ran with the monotonicity-heuristic (lazy)
    // acceleration and observed identical plans; assert it on our DAGs.
    let cm = DiskCostModel::paper();
    for wl in ["BQ3", "Q11", "Q15"] {
        let batch = build(wl, 1.0);
        let eager = optimize(&batch, &cm, Strategy::Greedy);
        let lazy = optimize(&batch, &cm, Strategy::LazyGreedy);
        assert_eq!(eager.materialized, lazy.materialized, "{wl} greedy");
        let eager_m = optimize(&batch, &cm, Strategy::MarginalGreedy);
        let lazy_m = optimize(&batch, &cm, Strategy::LazyMarginalGreedy);
        assert_eq!(eager_m.materialized, lazy_m.materialized, "{wl} marginal");
    }
}

#[test]
fn sharded_strategies_choose_identical_plans_on_tpcd() {
    // The sharded bc_many is bit-identical to the serial path, so every
    // strategy must pick the same materializations and report the same
    // costs at any thread count — here the whole stack (strategy → mb →
    // engine) is exercised end to end, not just the oracle.
    let cm = DiskCostModel::paper();
    for wl in ["BQ3", "BQ4"] {
        let batch = build(wl, 1.0);
        for strategy in [Strategy::Greedy, Strategy::MarginalGreedy] {
            let serial = optimize_with(
                &batch,
                &cm,
                strategy,
                EngineConfig {
                    threads: 1,
                    ..Default::default()
                },
            );
            for threads in [2usize, 4] {
                let sharded = optimize_with(
                    &batch,
                    &cm,
                    strategy,
                    EngineConfig {
                        threads,
                        ..Default::default()
                    },
                );
                assert_eq!(
                    serial.materialized, sharded.materialized,
                    "{wl} {} with {threads} threads",
                    serial.strategy
                );
                assert_eq!(
                    serial.total_cost, sharded.total_cost,
                    "{wl} {}: costs must be bit-identical",
                    serial.strategy
                );
                assert_eq!(serial.bc_calls, sharded.bc_calls);
            }
        }
    }
}

#[test]
fn q15_halves_and_q11_nearly_halves() {
    // Section 6.2: "For Q11, both the greedy algorithms lead to a plan of
    // approximately half the cost as that returned by Volcano. The
    // improvements for Q15 are similar."
    let cm = DiskCostModel::paper();
    let q15 = build("Q15", 1.0);
    let v = optimize(&q15, &cm, Strategy::Volcano);
    let g = optimize(&q15, &cm, Strategy::Greedy);
    assert!(
        g.total_cost < 0.6 * v.total_cost,
        "Q15: {} vs {}",
        g.total_cost,
        v.total_cost
    );

    let q11 = build("Q11", 1.0);
    let v = optimize(&q11, &cm, Strategy::Volcano);
    let g = optimize(&q11, &cm, Strategy::Greedy);
    assert!(
        g.total_cost < 0.7 * v.total_cost,
        "Q11: {} vs {}",
        g.total_cost,
        v.total_cost
    );
}

#[test]
fn q2_decorrelated_batch_benefits_from_shared_view() {
    let cm = DiskCostModel::paper();
    let batch = build("Q2-D", 1.0);
    let v = optimize(&batch, &cm, Strategy::Volcano);
    let g = optimize(&batch, &cm, Strategy::Greedy);
    assert!(
        g.total_cost < 0.8 * v.total_cost,
        "Q2-D: {} vs {}",
        g.total_cost,
        v.total_cost
    );
    assert_eq!(
        g.materialized.len(),
        1,
        "one beneficial node (the paper's finding)"
    );
}

#[test]
fn costs_scale_with_the_database() {
    // Figure 4a vs 4b: 100 GB costs dwarf 1 GB costs; relative ordering is
    // preserved.
    let cm = DiskCostModel::paper();
    let small = optimize(&build("BQ3", 1.0), &cm, Strategy::Greedy);
    let large = optimize(&build("BQ3", 100.0), &cm, Strategy::Greedy);
    assert!(large.total_cost > 50.0 * small.total_cost);
}

#[test]
fn consolidated_plan_cost_matches_report_on_tpcd() {
    // The compiled engine and the reference optimizer agree end to end.
    let cm = DiskCostModel::paper();
    for wl in ["BQ2", "Q15"] {
        let batch = build(wl, 1.0);
        let r = optimize(&batch, &cm, Strategy::Greedy);
        let plan = ConsolidatedPlan::extract(&batch, &cm, &r.materialized);
        assert!(
            (plan.total_cost - r.total_cost).abs() <= 1e-6 * (1.0 + r.total_cost),
            "{wl}: consolidated {} vs engine {}",
            plan.total_cost,
            r.total_cost
        );
    }
}

#[test]
fn materialize_all_is_horribly_inefficient() {
    // Section 2.4: "the algorithm of [26], which chooses to materialize
    // every node[,] can be horribly inefficient."
    let cm = DiskCostModel::paper();
    let batch = build("BQ4", 1.0);
    let all = optimize(&batch, &cm, Strategy::MaterializeAll);
    let greedy = optimize(&batch, &cm, Strategy::Greedy);
    assert!(all.total_cost > 2.0 * greedy.total_cost);
}

#[test]
fn optimization_time_is_independent_of_scale() {
    // "While the execution cost of a query depends on the size of the
    // underlying data, the cost of optimization does not."  Same universe,
    // same number of bc calls at both scales.
    let cm = DiskCostModel::paper();
    let b1 = build("BQ3", 1.0);
    let b100 = build("BQ3", 100.0);
    assert_eq!(b1.universe_size(), b100.universe_size());
    let r1 = optimize(&b1, &cm, Strategy::Greedy);
    let r100 = optimize(&b100, &cm, Strategy::Greedy);
    // bc-call counts may differ slightly (different plans chosen), but stay
    // in the same ballpark.
    let ratio = r1.bc_calls as f64 / r100.bc_calls as f64;
    assert!(
        (0.5..2.0).contains(&ratio),
        "{} vs {}",
        r1.bc_calls,
        r100.bc_calls
    );
}
