//! Integration tests: the TPCD workloads end to end through the `Session`
//! API, asserting the qualitative shapes the paper reports.

use mqo_core::config::MqoConfig;
use mqo_core::session::{OptimizedBatch, Session};
use mqo_core::strategies::Strategy;
use mqo_volcano::cost::DiskCostModel;
use mqo_volcano::rules::RuleSet;

fn build(name_or_bq: &str, sf: f64) -> OptimizedBatch {
    let w = if let Some(i) = name_or_bq.strip_prefix("BQ") {
        mqo_tpcd::batched(i.parse().unwrap(), sf)
    } else {
        mqo_tpcd::standalone(name_or_bq, sf)
    };
    Session::builder()
        .context(w.ctx)
        .queries(w.queries)
        .rules(RuleSet::default())
        .cost_model(DiskCostModel::paper())
        .build()
}

#[test]
fn mqo_never_worse_than_volcano_on_batches() {
    for i in 1..=6 {
        let batch = build(&format!("BQ{i}"), 1.0);
        let volcano = batch.run(Strategy::Volcano);
        for s in [Strategy::Greedy, Strategy::MarginalGreedy] {
            let r = batch.run(s);
            assert!(
                r.total_cost <= volcano.total_cost + 1e-6,
                "BQ{i} {}: {} > {}",
                r.strategy,
                r.total_cost,
                volcano.total_cost
            );
        }
    }
}

#[test]
fn sharing_kicks_in_from_bq2() {
    // BQ2 onward mixes queries with overlapping subexpressions; the greedy
    // strategies must find strictly positive benefit (the paper reports
    // 12%..57% improvements).
    for i in 2..=6 {
        let batch = build(&format!("BQ{i}"), 1.0);
        let r = batch.run(Strategy::Greedy);
        assert!(
            r.improvement_pct() > 5.0,
            "BQ{i}: expected materially positive improvement, got {:.1}%",
            r.improvement_pct()
        );
        assert!(!r.materialized.is_empty());
    }
}

#[test]
fn lazy_variants_agree_with_eager_on_tpcd() {
    // The paper's experiments ran with the monotonicity-heuristic (lazy)
    // acceleration and observed identical plans; assert it on our DAGs.
    for wl in ["BQ3", "Q11", "Q15"] {
        let batch = build(wl, 1.0);
        let eager = batch.run(Strategy::Greedy);
        let lazy = batch.run(Strategy::LazyGreedy);
        assert_eq!(eager.materialized, lazy.materialized, "{wl} greedy");
        let eager_m = batch.run(Strategy::MarginalGreedy);
        let lazy_m = batch.run(Strategy::LazyMarginalGreedy);
        assert_eq!(eager_m.materialized, lazy_m.materialized, "{wl} marginal");
    }
}

#[test]
fn sharded_strategies_choose_identical_plans_on_tpcd() {
    // The sharded bc_many is bit-identical to the serial path, so every
    // strategy must pick the same materializations and report the same
    // costs at any thread count — here the whole stack (strategy → mb →
    // engine) is exercised end to end, not just the oracle.
    for wl in ["BQ3", "BQ4"] {
        let batch = build(wl, 1.0);
        for strategy in [Strategy::Greedy, Strategy::MarginalGreedy] {
            let serial = batch.run_with(
                strategy,
                MqoConfig {
                    threads: 1,
                    ..Default::default()
                },
            );
            for threads in [2usize, 4] {
                let sharded = batch.run_with(
                    strategy,
                    MqoConfig {
                        threads,
                        ..Default::default()
                    },
                );
                assert_eq!(
                    serial.materialized, sharded.materialized,
                    "{wl} {} with {threads} threads",
                    serial.strategy
                );
                assert_eq!(
                    serial.total_cost, sharded.total_cost,
                    "{wl} {}: costs must be bit-identical",
                    serial.strategy
                );
                assert_eq!(serial.bc_calls, sharded.bc_calls);
            }
        }
    }
}

#[test]
fn q15_halves_and_q11_nearly_halves() {
    // Section 6.2: "For Q11, both the greedy algorithms lead to a plan of
    // approximately half the cost as that returned by Volcano. The
    // improvements for Q15 are similar."
    let q15 = build("Q15", 1.0);
    let v = q15.run(Strategy::Volcano);
    let g = q15.run(Strategy::Greedy);
    assert!(
        g.total_cost < 0.6 * v.total_cost,
        "Q15: {} vs {}",
        g.total_cost,
        v.total_cost
    );

    let q11 = build("Q11", 1.0);
    let v = q11.run(Strategy::Volcano);
    let g = q11.run(Strategy::Greedy);
    assert!(
        g.total_cost < 0.7 * v.total_cost,
        "Q11: {} vs {}",
        g.total_cost,
        v.total_cost
    );
}

#[test]
fn q2_decorrelated_batch_benefits_from_shared_view() {
    let batch = build("Q2-D", 1.0);
    let v = batch.run(Strategy::Volcano);
    let g = batch.run(Strategy::Greedy);
    assert!(
        g.total_cost < 0.8 * v.total_cost,
        "Q2-D: {} vs {}",
        g.total_cost,
        v.total_cost
    );
    assert_eq!(
        g.materialized.len(),
        1,
        "one beneficial node (the paper's finding)"
    );
}

#[test]
fn costs_scale_with_the_database() {
    // Figure 4a vs 4b: 100 GB costs dwarf 1 GB costs; relative ordering is
    // preserved.
    let small = build("BQ3", 1.0).run(Strategy::Greedy);
    let large = build("BQ3", 100.0).run(Strategy::Greedy);
    assert!(large.total_cost > 50.0 * small.total_cost);
}

#[test]
fn report_plan_cost_matches_report_on_tpcd() {
    // The arena extractor totals the same solved arenas as bc(S): the
    // consolidated plan carried by every report matches the reported cost.
    for wl in ["BQ2", "Q15"] {
        let batch = build(wl, 1.0);
        let r = batch.run(Strategy::Greedy);
        assert!(
            (r.plan.total_cost - r.total_cost).abs() <= 1e-6 * (1.0 + r.total_cost),
            "{wl}: consolidated {} vs engine {}",
            r.plan.total_cost,
            r.total_cost
        );
        assert_eq!(r.plan.materializations.len(), r.materialized.len());
        assert_eq!(r.plan.query_plans.len(), batch.batch().query_roots().len());
    }
}

#[test]
fn materialize_all_is_horribly_inefficient() {
    // Section 2.4: "the algorithm of [26], which chooses to materialize
    // every node[,] can be horribly inefficient."
    let batch = build("BQ4", 1.0);
    let all = batch.run(Strategy::MaterializeAll);
    let greedy = batch.run(Strategy::Greedy);
    assert!(all.total_cost > 2.0 * greedy.total_cost);
}

#[test]
fn optimization_time_is_independent_of_scale() {
    // "While the execution cost of a query depends on the size of the
    // underlying data, the cost of optimization does not."  Same universe,
    // same number of bc calls at both scales.
    let b1 = build("BQ3", 1.0);
    let b100 = build("BQ3", 100.0);
    assert_eq!(b1.universe_size(), b100.universe_size());
    let r1 = b1.run(Strategy::Greedy);
    let r100 = b100.run(Strategy::Greedy);
    // bc-call counts may differ slightly (different plans chosen), but stay
    // in the same ballpark.
    let ratio = r1.bc_calls as f64 / r100.bc_calls as f64;
    assert!(
        (0.5..2.0).contains(&ratio),
        "{} vs {}",
        r1.bc_calls,
        r100.bc_calls
    );
}
