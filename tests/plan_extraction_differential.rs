//! Differential test for consolidated-plan extraction: the arena-based
//! extractor (`RunReport::plan`, reading winners off the compiled
//! `BestCostEngine` arenas) against the pre-`Session` path — the reference
//! `mqo_volcano::optimizer::Optimizer` with its `HashMap`-keyed
//! `PlanTable`, replayed here exactly as the old
//! `ConsolidatedPlan::extract` drove it.
//!
//! Pinned: identical plan trees (operators, groups, output orders, row
//! estimates, child shapes) and matching costs on BQ3/BQ4 across every
//! strategy and `threads ∈ {1, 4}`. This is the contract that allowed the
//! old extraction path to be deleted from `mqo-core`.

use mqo_core::config::MqoConfig;
use mqo_core::session::{OptimizedBatch, Session};
use mqo_core::strategies::Strategy;
use mqo_volcano::cost::{CostModel, DiskCostModel};
use mqo_volcano::memo::GroupId;
use mqo_volcano::optimizer::{MatOverlay, Optimizer, PlanTable};
use mqo_volcano::physical::{PhysPlan, SortOrder};
use mqo_volcano::rules::RuleSet;

fn build(i: usize) -> OptimizedBatch {
    let w = mqo_tpcd::batched(i, 1.0);
    Session::builder()
        .context(w.ctx)
        .queries(w.queries)
        .rules(RuleSet::default())
        .cost_model(DiskCostModel::paper())
        .build()
}

/// The old extraction path, verbatim: reference optimizer + `PlanTable`
/// per materialization (with the node's own read excluded) and per query.
fn reference_extract(
    batch: &mqo_core::batch::BatchDag,
    cm: &dyn CostModel,
    materialized: &[GroupId],
) -> (Vec<(GroupId, PhysPlan)>, Vec<PhysPlan>, f64) {
    let opt = Optimizer::new(batch.memo(), cm);
    let overlay = MatOverlay::new(batch.memo(), materialized.iter().copied());
    let mut total = 0.0;

    let mut materializations = Vec::with_capacity(materialized.len());
    for &g in materialized {
        let g = batch.memo().find(g);
        let produce_overlay = overlay.excluding(g);
        let mut table = PlanTable::new();
        let cost = opt.best_use_cost(g, &produce_overlay, &mut table);
        let plan = opt.extract_plan(g, &SortOrder::none(), &produce_overlay, &mut table);
        total += cost + opt.write_cost(g);
        materializations.push((g, plan));
    }

    let mut query_plans = Vec::with_capacity(batch.query_roots().len());
    for &q in batch.query_roots() {
        let mut table = PlanTable::new();
        let cost = opt.best_use_cost(q, &overlay, &mut table);
        let plan = opt.extract_plan(q, &SortOrder::none(), &overlay, &mut table);
        total += cost;
        query_plans.push(plan);
    }

    (materializations, query_plans, total)
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * (1.0 + a.abs().max(b.abs()))
}

/// Structural plan equality: identical operators, groups, and output
/// orders at every node, with costs matching up to floating-point
/// reassociation (the two paths sum identical terms in different orders).
fn assert_plans_equal(arena: &PhysPlan, reference: &PhysPlan, path: &str) {
    assert_eq!(
        arena.op, reference.op,
        "{path}: operator mismatch\narena: {arena:#?}\nreference: {reference:#?}"
    );
    assert_eq!(arena.group, reference.group, "{path}: group mismatch");
    assert_eq!(arena.order, reference.order, "{path}: order mismatch");
    assert_eq!(arena.rows, reference.rows, "{path}: row estimate mismatch");
    assert!(
        close(arena.op_cost, reference.op_cost),
        "{path}: op_cost {} vs {}",
        arena.op_cost,
        reference.op_cost
    );
    assert!(
        close(arena.total_cost, reference.total_cost),
        "{path}: total_cost {} vs {}",
        arena.total_cost,
        reference.total_cost
    );
    assert_eq!(
        arena.children.len(),
        reference.children.len(),
        "{path}: child count mismatch"
    );
    for (i, (a, r)) in arena
        .children
        .iter()
        .zip(reference.children.iter())
        .enumerate()
    {
        assert_plans_equal(a, r, &format!("{path}/{i}"));
    }
}

fn all_strategies() -> Vec<Strategy> {
    vec![
        Strategy::Volcano,
        Strategy::Greedy,
        Strategy::LazyGreedy,
        Strategy::MarginalGreedy,
        Strategy::LazyMarginalGreedy,
        Strategy::MaterializeAll,
        Strategy::MarginalGreedyCleanup,
        Strategy::CardinalityMarginalGreedy {
            k: 2,
            reduce_universe: true,
        },
        // Exhaustive is omitted: the BQ3/BQ4 universes exceed its 20-node
        // limit; its extraction path is identical to the others'.
    ]
}

fn check_workload(i: usize) {
    let cm = DiskCostModel::paper();
    let session = build(i);
    for strategy in all_strategies() {
        for threads in [1usize, 4] {
            let report = session.run_with(
                strategy,
                MqoConfig {
                    threads,
                    ..Default::default()
                },
            );
            let (ref_mats, ref_queries, ref_total) =
                reference_extract(session.batch(), &cm, &report.materialized);

            assert!(
                close(report.plan.total_cost, ref_total),
                "BQ{i} {} @{threads}: arena total {} vs reference {}",
                report.strategy,
                report.plan.total_cost,
                ref_total
            );
            assert_eq!(report.plan.materializations.len(), ref_mats.len());
            for ((ag, ap), (rg, rp)) in report.plan.materializations.iter().zip(&ref_mats) {
                assert_eq!(ag, rg, "BQ{i} {}: materialization order", report.strategy);
                assert_plans_equal(
                    ap,
                    rp,
                    &format!("BQ{i}/{}@{threads}/mat{}", report.strategy, ag.0),
                );
            }
            assert_eq!(report.plan.query_plans.len(), ref_queries.len());
            for (qi, (ap, rp)) in report.plan.query_plans.iter().zip(&ref_queries).enumerate() {
                assert_plans_equal(
                    ap,
                    rp,
                    &format!("BQ{i}/{}@{threads}/q{qi}", report.strategy),
                );
            }
        }
    }
}

#[test]
fn arena_extractor_matches_plantable_path_on_bq3() {
    check_workload(3);
}

#[test]
fn arena_extractor_matches_plantable_path_on_bq4() {
    check_workload(4);
}
