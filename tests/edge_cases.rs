//! Edge cases and failure injection: degenerate batches, unsatisfiable
//! predicates, and alternative cost-model configurations.

use mqo_catalog::{Catalog, TableBuilder};
use mqo_core::session::{OptimizedBatch, Session};
use mqo_core::strategies::Strategy;
use mqo_volcano::cost::{CostModel, DiskCostModel};
use mqo_volcano::rules::RuleSet;
use mqo_volcano::{Constraint, DagContext, PlanNode, Predicate};

fn session(
    ctx: DagContext,
    queries: Vec<PlanNode>,
    cm: impl CostModel + 'static,
) -> OptimizedBatch {
    Session::builder()
        .context(ctx)
        .queries(queries)
        .rules(RuleSet::default())
        .cost_model(cm)
        .build()
}

fn tiny_catalog() -> Catalog {
    let mut cat = Catalog::new();
    for (name, rows) in [("r", 10_000.0), ("s", 5_000.0)] {
        cat.add_table(
            TableBuilder::new(name, rows)
                .key_column(format!("{name}_key"), 4)
                .column(
                    format!("{name}_fk"),
                    rows / 10.0,
                    (0, (rows as i64) / 10 - 1),
                    4,
                )
                .column(format!("{name}_x"), 20.0, (0, 19), 4)
                .primary_key(&[&format!("{name}_key")])
                .build(),
        );
    }
    cat
}

#[test]
fn single_query_with_no_sharing_yields_empty_universe_effect() {
    // A lone scan-select query: nothing shareable, every strategy returns
    // the Volcano plan.
    let mut ctx = DagContext::new(tiny_catalog());
    let r = ctx.instance_by_name("r", 0);
    let q = PlanNode::scan(r).select(Predicate::on(ctx.col(r, "r_x"), Constraint::eq(3)));
    let batch = session(ctx, vec![q], DiskCostModel::paper());
    let volcano = batch.run(Strategy::Volcano);
    for s in [
        Strategy::Greedy,
        Strategy::MarginalGreedy,
        Strategy::MaterializeAll,
    ] {
        let r = batch.run(s);
        if s == Strategy::MaterializeAll {
            // Materializing unshared nodes can only hurt or tie.
            assert!(r.total_cost >= volcano.total_cost - 1e-9);
        } else {
            assert_eq!(r.total_cost, volcano.total_cost, "{}", r.strategy);
            assert!(r.materialized.is_empty());
        }
    }
}

#[test]
fn identical_duplicate_queries_share_their_whole_root() {
    // The same query submitted twice: the root group unifies; materializing
    // it computes the query once.
    let mut ctx = DagContext::new(tiny_catalog());
    let r = ctx.instance_by_name("r", 0);
    let s = ctx.instance_by_name("s", 0);
    let pred = Predicate::join(ctx.col(r, "r_key"), ctx.col(s, "s_fk"));
    let sel = Predicate::on(ctx.col(r, "r_x"), Constraint::eq(3));
    let q = PlanNode::scan(r).select(sel).join(PlanNode::scan(s), pred);
    let batch = session(ctx, vec![q.clone(), q], DiskCostModel::paper());
    assert_eq!(
        batch.batch().memo().find(batch.batch().query_roots()[0]),
        batch.batch().memo().find(batch.batch().query_roots()[1]),
        "identical queries must land on the same root group"
    );
    let volcano = batch.run(Strategy::Volcano);
    let greedy = batch.run(Strategy::Greedy);
    assert!(
        greedy.total_cost < volcano.total_cost,
        "sharing a duplicated query must pay off ({} vs {})",
        greedy.total_cost,
        volcano.total_cost
    );
}

#[test]
fn unsatisfiable_predicate_yields_zero_row_groups_but_valid_plans() {
    let mut ctx = DagContext::new(tiny_catalog());
    let r = ctx.instance_by_name("r", 0);
    let x = ctx.col(r, "r_x");
    // x = 3 AND x = 5: unsatisfiable after normalization.
    let q = PlanNode::scan(r)
        .select(Predicate::on(x, Constraint::eq(3)).and(&Predicate::on(x, Constraint::eq(5))));
    let batch = session(ctx, vec![q], DiskCostModel::paper());
    let root = batch.batch().query_roots()[0];
    assert_eq!(batch.batch().memo().props(root).rows, 0.0);
    let rep = batch.run(Strategy::Volcano);
    assert!(rep.total_cost.is_finite() && rep.total_cost > 0.0);
}

#[test]
fn out_of_domain_constant_estimates_zero_rows() {
    let mut ctx = DagContext::new(tiny_catalog());
    let r = ctx.instance_by_name("r", 0);
    let q = PlanNode::scan(r).select(Predicate::on(ctx.col(r, "r_x"), Constraint::eq(999)));
    let batch = session(ctx, vec![q], DiskCostModel::paper());
    assert_eq!(
        batch
            .batch()
            .memo()
            .props(batch.batch().query_roots()[0])
            .rows,
        0.0
    );
}

#[test]
fn paper_128mb_memory_configuration_runs() {
    // Section 6: "we also conducted experiments with memory sizes of
    // 128MB". More memory never makes plans more expensive (fewer external
    // sort passes, fewer NL-join respools).
    let cm_6mb = DiskCostModel::paper();
    let cm_128mb = DiskCostModel::paper_128mb();
    assert!(cm_128mb.memory_blocks > cm_6mb.memory_blocks);
    for i in [2usize, 3] {
        let w6 = mqo_tpcd::batched(i, 1.0);
        let b6 = session(w6.ctx, w6.queries, cm_6mb);
        let w128 = mqo_tpcd::batched(i, 1.0);
        let b128 = session(w128.ctx, w128.queries, cm_128mb);
        for s in [Strategy::Volcano, Strategy::Greedy] {
            let r6 = b6.run(s);
            let r128 = b128.run(s);
            assert!(
                r128.total_cost <= r6.total_cost + 1e-6,
                "BQ{i} {}: 128MB {} should not exceed 6MB {}",
                r6.strategy,
                r128.total_cost,
                r6.total_cost
            );
        }
    }
}

#[test]
fn sort_cost_reflects_memory_budget() {
    let cm_6mb = DiskCostModel::paper();
    let cm_128mb = DiskCostModel::paper_128mb();
    // 10k blocks: external under 6MB (1536 blocks), in-memory under 128MB.
    let b = 10_000.0;
    assert!(cm_6mb.sort(b) > cm_128mb.sort(b));
    assert_eq!(cm_128mb.sort(b), b * 0.2);
}

#[test]
fn empty_candidate_strategies_are_stable_under_rule_subsets() {
    // Running with only the join rules (no subsumption) must still produce
    // valid, consistent results — just possibly fewer sharing options.
    let w_full = mqo_tpcd::batched(2, 1.0);
    let full = session(w_full.ctx, w_full.queries, DiskCostModel::paper());
    let w_joins = mqo_tpcd::batched(2, 1.0);
    let joins = Session::builder()
        .context(w_joins.ctx)
        .queries(w_joins.queries)
        .rules(RuleSet::joins_only())
        .cost_model(DiskCostModel::paper())
        .build();
    let r_full = full.run(Strategy::Greedy);
    let r_joins = joins.run(Strategy::Greedy);
    // The richer rule set can only expose more sharing.
    assert!(
        r_full.total_cost <= r_joins.total_cost + 1e-6,
        "subsumption rules must not hurt: {} vs {}",
        r_full.total_cost,
        r_joins.total_cost
    );
    assert!(full.universe_size() >= joins.universe_size());
}
