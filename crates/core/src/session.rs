//! The one-stop `Session` API: own the batch lifecycle end to end.
//!
//! The paper's pipeline is one conceptual object — insert a batch of
//! queries, expand the AND-OR DAG, pick a materialization set, emit the
//! consolidated plan (Kathuria & Sudarshan §2; Roy et al.'s Volcano-MQO
//! framing) — and this module exposes it as one: a [`Session`] builder
//! collects the [`DagContext`], the queries, the [`RuleSet`], the cost
//! model, and one unified [`MqoConfig`], and [`SessionBuilder::build`]
//! yields an [`OptimizedBatch`] whose [`OptimizedBatch::run`] /
//! [`OptimizedBatch::run_all`] return [`RunReport`]s carrying the
//! extracted consolidated physical plan. The batch is also *evolvable*:
//! [`OptimizedBatch::add_query`] / [`OptimizedBatch::retire_query`] mutate
//! the live batch incrementally, and [`OptimizedBatch::savepoint`] /
//! [`OptimizedBatch::rollback`] bracket speculative sequences.
//!
//! ```no_run
//! use mqo_core::session::Session;
//! use mqo_core::strategies::Strategy;
//! use mqo_volcano::cost::DiskCostModel;
//!
//! # fn queries() -> (mqo_volcano::DagContext, Vec<mqo_volcano::PlanNode>) { unimplemented!() }
//! let (ctx, qs) = queries();
//! let batch = Session::builder()
//!     .context(ctx)
//!     .queries(qs)
//!     .cost_model(DiskCostModel::paper())
//!     .build();
//! let report = batch.run(Strategy::MarginalGreedy);
//! println!("cost {} vs volcano {}", report.total_cost, report.volcano_cost);
//! println!("{}", report.plan.render(batch.batch()));
//! ```

use std::sync::{Arc, Mutex};

use mqo_volcano::cost::{CostModel, DiskCostModel};
use mqo_volcano::rules::RuleSet;
use mqo_volcano::{DagContext, PlanNode};

use crate::batch::{BatchDag, BatchSavepoint, QueryTicket};
use crate::config::MqoConfig;
use crate::engine::EngineState;
use crate::error::{MqoError, PlanValidator};
use crate::serve::{MqoService, ServeConfig};
use crate::strategies::{run_strategy, RunReport, Strategy};

/// Entry point of the MQO pipeline; see the module docs.
pub struct Session;

impl Session {
    /// Starts building a session. At minimum a [`DagContext`] and one
    /// query must be supplied before [`SessionBuilder::build`].
    pub fn builder() -> SessionBuilder {
        SessionBuilder {
            ctx: None,
            queries: Vec::new(),
            rules: RuleSet::default(),
            cost_model: Box::new(DiskCostModel::paper()),
            config: MqoConfig::default(),
        }
    }
}

/// Collects everything an [`OptimizedBatch`] needs; see [`Session`].
pub struct SessionBuilder {
    ctx: Option<DagContext>,
    queries: Vec<PlanNode>,
    rules: RuleSet,
    cost_model: Box<dyn CostModel>,
    config: MqoConfig,
}

impl SessionBuilder {
    /// The shared context (catalog, table instances, synthetic columns)
    /// the queries were built against. Required.
    pub fn context(mut self, ctx: DagContext) -> Self {
        self.ctx = Some(ctx);
        self
    }

    /// Adds one query to the batch.
    pub fn query(mut self, q: PlanNode) -> Self {
        self.queries.push(q);
        self
    }

    /// Adds a batch of queries (appending to any added earlier).
    pub fn queries(mut self, qs: impl IntoIterator<Item = PlanNode>) -> Self {
        self.queries.extend(qs);
        self
    }

    /// The transformation rule set for DAG expansion. Defaults to
    /// [`RuleSet::default`] (joins + select push-down/merge + subsumption).
    pub fn rules(mut self, rules: RuleSet) -> Self {
        self.rules = rules;
        self
    }

    /// The cost model every strategy is evaluated under. Defaults to the
    /// paper's disk cost model ([`DiskCostModel::paper`]).
    pub fn cost_model(mut self, cm: impl CostModel + 'static) -> Self {
        self.cost_model = Box::new(cm);
        self
    }

    /// The unified pipeline configuration (rebase threshold, ablation
    /// switch, worker threads for expansion *and* the sharded oracle).
    /// Defaults to [`MqoConfig::default`], which honors `MQO_THREADS`.
    pub fn config(mut self, config: MqoConfig) -> Self {
        self.config = config;
        self
    }

    /// Shorthand for overriding only [`MqoConfig::threads`].
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Inserts the queries into one memo, expands the combined DAG to
    /// fixpoint (candidate generation fanned out over
    /// [`MqoConfig::threads`] workers), computes the shareable universe,
    /// and returns the ready-to-run batch.
    ///
    /// # Panics
    ///
    /// When no [`DagContext`] was supplied, the query list is empty, or a
    /// query fails plan validation. The fallible variant is
    /// [`SessionBuilder::try_build`].
    pub fn build(self) -> OptimizedBatch {
        self.try_build()
            .unwrap_or_else(|e| panic!("Session::builder(): {e}"))
    }

    /// Fallible [`SessionBuilder::build`]: reports a missing context, an
    /// empty query list, or a malformed query as a typed [`MqoError`]
    /// instead of panicking. Every plan is validated against the context
    /// (known table instances, resolvable column references, unambiguous
    /// aggregate outputs) *before* any memo work starts, so a rejected
    /// build has no side effects.
    ///
    /// ```
    /// use mqo_core::{MqoError, Session};
    ///
    /// // Nothing supplied: the builder reports instead of panicking.
    /// assert!(matches!(
    ///     Session::builder().try_build(),
    ///     Err(MqoError::MissingContext)
    /// ));
    /// ```
    pub fn try_build(self) -> Result<OptimizedBatch, MqoError> {
        let ctx = self.ctx.ok_or(MqoError::MissingContext)?;
        if self.queries.is_empty() {
            return Err(MqoError::EmptyBatch);
        }
        let validator = PlanValidator::new(&ctx);
        for (query, plan) in self.queries.iter().enumerate() {
            validator
                .validate(plan)
                .map_err(|fault| MqoError::InvalidPlan { query, fault })?;
        }
        let batch =
            BatchDag::build_with_threads(ctx, &self.queries, &self.rules, self.config.threads);
        Ok(OptimizedBatch {
            batch,
            cost_model: self.cost_model,
            config: self.config,
            state: Mutex::new(None),
        })
    }
}

/// A fully expanded batch bound to a cost model and a configuration: the
/// object the paper's experiments revolve around. Every
/// [`OptimizedBatch::run`] compiles the `bestCost` engine through the
/// batch's shared compile cache (the topological view and compile scratch
/// are reused across strategies), runs the strategy's node selection, and
/// extracts the consolidated physical plan from the compiled arenas.
///
/// The batch is *evolvable*: [`OptimizedBatch::add_query`] admits a new
/// query into the live memo (seeded incremental expansion, no rebuild) and
/// returns a [`QueryTicket`]; [`OptimizedBatch::retire_query`] removes one;
/// [`OptimizedBatch::savepoint`] / [`OptimizedBatch::rollback`] bracket
/// speculative what-if admissions. Every evolution step leaves the batch
/// exactly equivalent to a fresh [`SessionBuilder::build`] over the
/// surviving queries — same live DAG, same shareable universe (modulo
/// tombstoned slots), identical plans and `bestCost` values. Evolution
/// takes `&mut self`; `run*` calls observe a consistent compiled snapshot
/// because they run off an immutable [`EngineState`] published by
/// [`OptimizedBatch::snapshot`] and revalidated against the memo's
/// version counter.
///
/// Ownership is split three ways (the serving layer is built on exactly
/// this split): the **batch** is the thin mutable editor, the
/// [`EngineState`] is the shared-immutable compiled artifact readers hold
/// `Arc`s to, and each reader's [`crate::engine::BestCostEngine`] handle
/// owns the only per-caller mutable state (DP overlays and scratch).
pub struct OptimizedBatch {
    batch: BatchDag,
    cost_model: Box<dyn CostModel>,
    config: MqoConfig,
    /// Cached [`EngineState`] snapshot of the current commit, revalidated
    /// by memo version (monotone, so a stale snapshot is never reused).
    state: Mutex<Option<Arc<EngineState>>>,
}

impl OptimizedBatch {
    /// The immutable compiled snapshot of the current commit: shared
    /// engine arenas, universe, and query roots behind one `Arc`. Cached
    /// until the next evolution commit (the memo's version counter is the
    /// validity stamp); cloning the `Arc` is the only cost on the hot
    /// path. Readers holding an old snapshot keep a fully consistent
    /// frozen view while the batch evolves underneath — snapshot
    /// isolation by immutability.
    pub fn snapshot(&self) -> Arc<EngineState> {
        // Recover from poison by dropping the cached snapshot: a panic in
        // a previous holder may have died between compile and store, and
        // `None` just means "recompile" — always correct, never wedged.
        let mut cached = self.state.lock().unwrap_or_else(|poison| {
            let mut guard = poison.into_inner();
            *guard = None;
            guard
        });
        match cached.as_ref() {
            Some(s) if s.version() == self.batch.memo().version() => Arc::clone(s),
            _ => {
                let s = Arc::new(self.batch.compile_state(self.cost_model.as_ref()));
                *cached = Some(Arc::clone(&s));
                s
            }
        }
    }

    /// Optimizes the batch with one strategy under the session's
    /// configuration.
    pub fn run(&self, strategy: Strategy) -> RunReport {
        run_strategy(&self.snapshot(), strategy, self.config)
    }

    /// Optimizes the batch with several strategies, recompiling the engine
    /// per strategy so timings are comparable. The session's configuration
    /// is threaded through **every** strategy — the pre-`Session` free
    /// function `compare` silently dropped a custom `EngineConfig` and ran
    /// each strategy under the defaults.
    pub fn run_all(&self, strategies: &[Strategy]) -> Vec<RunReport> {
        strategies.iter().map(|&s| self.run(s)).collect()
    }

    /// [`OptimizedBatch::run`] under a one-off configuration override
    /// (ablations sweeping rebase thresholds or thread counts). The
    /// session's own configuration is untouched.
    pub fn run_with(&self, strategy: Strategy, config: MqoConfig) -> RunReport {
        run_strategy(&self.snapshot(), strategy, config)
    }

    /// The expanded combined DAG (memo, roots, shareable universe,
    /// expansion statistics).
    pub fn batch(&self) -> &BatchDag {
        &self.batch
    }

    /// The session's cost model.
    pub fn cost_model(&self) -> &dyn CostModel {
        self.cost_model.as_ref()
    }

    /// The session's configuration.
    pub fn config(&self) -> MqoConfig {
        self.config
    }

    /// Number of shareable nodes (delegates to [`BatchDag`]).
    pub fn universe_size(&self) -> usize {
        self.batch.universe_size()
    }

    // -----------------------------------------------------------------------
    // Evolution: the batch is a live session, not a frozen artifact.
    // -----------------------------------------------------------------------

    /// Admits `query` into the live batch without a full rebuild and
    /// returns its ticket. The expansion fixpoint re-runs seeded with only
    /// the freshly interned expressions, under the session's configured
    /// thread count.
    ///
    /// # Panics
    ///
    /// If the plan fails validation; the fallible variant is
    /// [`OptimizedBatch::try_add_query`].
    pub fn add_query(&mut self, query: PlanNode) -> QueryTicket {
        self.try_add_query(query).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`OptimizedBatch::add_query`]: validates the plan against
    /// the session's context first and rejects a malformed one as
    /// [`MqoError::InvalidPlan`] with the batch untouched.
    ///
    /// ```
    /// # use mqo_catalog::{Catalog, TableBuilder};
    /// # use mqo_volcano::{DagContext, InstanceId, PlanNode};
    /// use mqo_core::{MqoError, Session};
    /// # let mut cat = Catalog::new();
    /// # cat.add_table(TableBuilder::new("t", 100.0).key_column("t_key", 4).primary_key(&["t_key"]).build());
    /// # let mut ctx = DagContext::new(cat);
    /// # let t = ctx.instance_by_name("t", 0);
    /// let mut batch = Session::builder()
    ///     .context(ctx)
    ///     .query(PlanNode::scan(t))
    ///     .threads(1)
    ///     .build();
    /// // Scanning an instance the context never registered is rejected at
    /// // the door; the live batch is unchanged.
    /// let bad = PlanNode::scan(InstanceId(99));
    /// assert!(matches!(
    ///     batch.try_add_query(bad),
    ///     Err(MqoError::InvalidPlan { .. })
    /// ));
    /// assert_eq!(batch.tickets().len(), 1);
    /// ```
    pub fn try_add_query(&mut self, query: PlanNode) -> Result<QueryTicket, MqoError> {
        PlanValidator::new(self.batch.memo().ctx())
            .validate(&query)
            .map_err(|fault| MqoError::InvalidPlan { query: 0, fault })?;
        Ok(self
            .batch
            .add_query_with_threads(&query, self.config.threads))
    }

    /// Retires the query behind `ticket` from the live batch, reclaiming
    /// its private expressions (savepoint rewind + incremental replay of
    /// later survivors).
    ///
    /// # Panics
    ///
    /// If the ticket was already retired, or if it names the last live
    /// query — a batch is never empty, mirroring [`SessionBuilder::build`].
    /// The fallible variant is [`OptimizedBatch::try_retire_query`].
    pub fn retire_query(&mut self, ticket: QueryTicket) {
        self.batch
            .retire_query_with_threads(ticket, self.config.threads)
    }

    /// Fallible [`OptimizedBatch::retire_query`]: an unknown or
    /// already-retired ticket and a retire that would empty the batch come
    /// back as typed errors with the batch untouched.
    ///
    /// ```
    /// # use mqo_catalog::{Catalog, TableBuilder};
    /// # use mqo_volcano::{DagContext, PlanNode};
    /// use mqo_core::{MqoError, Session};
    /// # let mut cat = Catalog::new();
    /// # cat.add_table(TableBuilder::new("t", 100.0).key_column("t_key", 4).primary_key(&["t_key"]).build());
    /// # let mut ctx = DagContext::new(cat);
    /// # let t = ctx.instance_by_name("t", 0);
    /// let mut batch = Session::builder()
    ///     .context(ctx)
    ///     .query(PlanNode::scan(t))
    ///     .threads(1)
    ///     .build();
    /// let ticket = batch.tickets()[0];
    /// // A batch always keeps one live query.
    /// assert!(matches!(
    ///     batch.try_retire_query(ticket),
    ///     Err(MqoError::LastLiveQuery(_))
    /// ));
    /// assert!(batch.batch().is_live(ticket));
    /// ```
    pub fn try_retire_query(&mut self, ticket: QueryTicket) -> Result<(), MqoError> {
        self.batch
            .try_retire_query_with_threads(ticket, self.config.threads)
    }

    /// Snapshots the batch for a later [`OptimizedBatch::rollback`] —
    /// bracket speculative `add_query`/`retire_query` sequences (what-if
    /// admission probes) without paying for a rebuild on abandonment.
    pub fn savepoint(&mut self) -> BatchSavepoint {
        self.batch.savepoint()
    }

    /// Rewinds the batch to `sp`, undoing every evolution step since the
    /// matching [`OptimizedBatch::savepoint`]. Tickets issued after the
    /// savepoint are dead afterwards; tickets issued before it stay valid.
    ///
    /// # Panics
    ///
    /// If `sp` is stale (from another batch, or already rolled back past);
    /// the fallible variant is [`OptimizedBatch::try_rollback`].
    pub fn rollback(&mut self, sp: BatchSavepoint) {
        self.batch.rollback_with_threads(sp, self.config.threads)
    }

    /// Fallible [`OptimizedBatch::rollback`]: a savepoint from another
    /// batch, or one the batch was already rolled back past, is rejected
    /// as [`MqoError::StaleSavepoint`] with the batch untouched.
    ///
    /// ```
    /// # use mqo_catalog::{Catalog, TableBuilder};
    /// # use mqo_volcano::{DagContext, PlanNode};
    /// use mqo_core::{MqoError, Session};
    /// # let mut cat = Catalog::new();
    /// # cat.add_table(TableBuilder::new("t", 100.0).key_column("t_key", 4).primary_key(&["t_key"]).build());
    /// # let mut ctx = DagContext::new(cat);
    /// # let t = ctx.instance_by_name("t", 0);
    /// let mut batch = Session::builder()
    ///     .context(ctx)
    ///     .query(PlanNode::scan(t))
    ///     .threads(1)
    ///     .build();
    /// let outer = batch.savepoint();
    /// let _extra = batch.add_query(PlanNode::scan(t));
    /// let inner = batch.savepoint();
    /// batch.rollback(outer); // rewinds past `inner`
    /// assert!(matches!(
    ///     batch.try_rollback(inner),
    ///     Err(MqoError::StaleSavepoint)
    /// ));
    /// ```
    pub fn try_rollback(&mut self, sp: BatchSavepoint) -> Result<(), MqoError> {
        self.batch
            .try_rollback_with_threads(sp, self.config.threads)
    }

    /// Tickets of the currently live queries, in admission order.
    pub fn tickets(&self) -> Vec<QueryTicket> {
        self.batch.tickets()
    }

    /// Size of the evolution history (provenance entries plus the memo's
    /// savepoint undo log) — the state that grows with every add/retire
    /// cycle until [`OptimizedBatch::compact_history`] re-baselines it.
    pub fn history_len(&self) -> usize {
        self.batch.history_len()
    }

    /// Re-baselines the batch: drops retired provenance, rebuilds the memo
    /// from the survivors, and clears the savepoint undo log, so
    /// [`OptimizedBatch::history_len`] afterwards depends only on the live
    /// query count. Outstanding tickets stay valid.
    pub fn compact_history(&mut self) {
        self.batch.compact_history(self.config.threads);
    }

    // -----------------------------------------------------------------------
    // Serving: hand the batch to the concurrent serving layer.
    // -----------------------------------------------------------------------

    /// Wraps the batch in an [`MqoService`] under
    /// [`ServeConfig::default`]; see [`OptimizedBatch::serve_with`].
    pub fn serve(self) -> MqoService {
        self.serve_with(ServeConfig::default())
    }

    /// Wraps the batch in an [`MqoService`]: a shareable (`&self`-driven,
    /// `Sync`) serving layer where concurrent `submit_query` calls are
    /// coalesced into optimization rounds by a single writer and readers
    /// answer off published [`EngineState`] snapshots without ever
    /// blocking it. [`MqoService::finish`] hands the batch back.
    pub fn serve_with(self, config: ServeConfig) -> MqoService {
        MqoService::new(self, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqo_catalog::{Catalog, TableBuilder};
    use mqo_volcano::Predicate;

    fn ctx() -> DagContext {
        let mut cat = Catalog::new();
        for name in ["a", "b", "c"] {
            cat.add_table(
                TableBuilder::new(name, 10_000.0)
                    .key_column(format!("{name}_key"), 4)
                    .column(format!("{name}_fk"), 1_000.0, (0, 999), 4)
                    .primary_key(&[&format!("{name}_key")])
                    .build(),
            );
        }
        DagContext::new(cat)
    }

    fn two_queries(ctx: &mut DagContext) -> Vec<PlanNode> {
        let a = ctx.instance_by_name("a", 0);
        let b = ctx.instance_by_name("b", 0);
        let c = ctx.instance_by_name("c", 0);
        let p_ab = Predicate::join(ctx.col(a, "a_key"), ctx.col(b, "b_fk"));
        let p_bc = Predicate::join(ctx.col(b, "b_key"), ctx.col(c, "c_fk"));
        vec![
            PlanNode::scan(a).join(PlanNode::scan(b), p_ab),
            PlanNode::scan(b).join(PlanNode::scan(c), p_bc),
        ]
    }

    #[test]
    fn builder_assembles_and_runs() {
        let mut ctx = ctx();
        let qs = two_queries(&mut ctx);
        let batch = Session::builder()
            .context(ctx)
            .queries(qs)
            .threads(1)
            .build();
        let reports = batch.run_all(&[Strategy::Volcano, Strategy::Greedy]);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].strategy, "Volcano");
        assert!(reports[1].total_cost <= reports[0].total_cost + 1e-6);
        for r in &reports {
            assert_eq!(r.plan.query_plans.len(), 2);
        }
    }

    #[test]
    fn run_all_threads_the_session_config_through_every_strategy() {
        let mut ctx = ctx();
        let qs = two_queries(&mut ctx);
        let config = MqoConfig {
            rebase_threshold: 0,
            force_full: true,
            threads: 1,
            ..Default::default()
        };
        let batch = Session::builder()
            .context(ctx)
            .queries(qs)
            .config(config)
            .build();
        assert_eq!(batch.config(), config);
        // force_full makes every oracle call a full solve; if run_all
        // dropped the config (the old `compare` bug), the incremental
        // default would answer base-aligned queries without full evals and
        // the cost arithmetic below would still match — so pin the config
        // plumbing by comparing against an explicit run_with.
        for &s in &[Strategy::Volcano, Strategy::Greedy] {
            let via_all = &batch.run_all(&[s])[0];
            let via_with = batch.run_with(s, config);
            assert_eq!(via_all.total_cost, via_with.total_cost);
            assert_eq!(via_all.materialized, via_with.materialized);
            assert_eq!(via_all.bc_calls, via_with.bc_calls);
        }
    }

    #[test]
    fn single_query_session_runs() {
        let mut ctx = ctx();
        let q = two_queries(&mut ctx).remove(0);
        let batch = Session::builder().context(ctx).query(q).build();
        let r = batch.run(Strategy::MarginalGreedy);
        assert!(r.total_cost.is_finite() && r.total_cost > 0.0);
        assert_eq!(r.plan.query_plans.len(), 1);
    }

    #[test]
    fn session_evolves_and_rolls_back() {
        let mut ctx1 = ctx();
        let qs = two_queries(&mut ctx1);
        let extra = {
            let a = ctx1.instance_by_name("a", 0);
            let c = ctx1.instance_by_name("c", 0);
            let p = Predicate::join(ctx1.col(a, "a_key"), ctx1.col(c, "c_fk"));
            PlanNode::scan(a).join(PlanNode::scan(c), p)
        };
        let mut batch = Session::builder()
            .context(ctx1)
            .queries(qs)
            .threads(1)
            .build();
        let baseline = batch.run(Strategy::Greedy);
        assert_eq!(baseline.plan.query_plans.len(), 2);

        let sp = batch.savepoint();
        let t3 = batch.add_query(extra);
        assert_eq!(batch.tickets().len(), 3);
        let grown = batch.run(Strategy::Greedy);
        assert_eq!(grown.plan.query_plans.len(), 3);

        batch.retire_query(t3);
        assert_eq!(batch.tickets().len(), 2);
        let shrunk = batch.run(Strategy::Greedy);
        assert_eq!(shrunk.plan.query_plans.len(), 2);
        assert_eq!(shrunk.total_cost, baseline.total_cost);

        batch.rollback(sp);
        let back = batch.run(Strategy::Greedy);
        assert_eq!(back.plan.query_plans.len(), 2);
        assert_eq!(back.total_cost, baseline.total_cost);
    }

    #[test]
    #[should_panic(expected = "last live query")]
    fn retiring_the_last_query_is_rejected() {
        let mut ctx = ctx();
        let qs = two_queries(&mut ctx);
        let mut batch = Session::builder()
            .context(ctx)
            .queries(qs)
            .threads(1)
            .build();
        let tickets = batch.tickets();
        batch.retire_query(tickets[0]);
        batch.retire_query(tickets[1]); // would empty the batch
    }

    #[test]
    #[should_panic(expected = "at least one query")]
    fn empty_query_list_is_rejected() {
        let _ = Session::builder().context(ctx()).build();
    }

    #[test]
    #[should_panic(expected = "DagContext is required")]
    fn missing_context_is_rejected() {
        let mut ctx = ctx();
        let q = two_queries(&mut ctx).remove(0);
        let _ = Session::builder().query(q).build();
    }
}
