//! The materialization-benefit function `mb(S) = bc(∅) − bc(S)` as a
//! [`SetFunction`] over the shareable universe (Section 2.4).
//!
//! `mb` is normalized by construction (`mb(∅) = 0`) and — under the
//! "monotonicity heuristic" (supermodularity of `bestCost`) — submodular,
//! which is exactly the UNSM setting the paper's algorithms assume. The
//! wrapper also exposes the canonical decomposition of Proposition 1,
//! computed with the `n + 1` `bc` invocations the paper prescribes.

use std::cell::{Cell, RefCell};

use mqo_submod::bitset::BitSet;
use mqo_submod::decompose::Decomposition;
use mqo_submod::function::SetFunction;

use crate::engine::{BestCostEngine, MqoConfig};

/// `mb(S) = bc(∅) − bc(S)` with oracle-call counting.
pub struct MbFunction {
    engine: RefCell<BestCostEngine>,
    universe: usize,
    bc_empty: f64,
    calls: Cell<u64>,
    /// Pooled candidate-set buffers for [`SetFunction::marginal_many`],
    /// reused across greedy rounds (`S ∪ {e}` per candidate is rebuilt in
    /// place via `copy_from`, never reallocated at steady state).
    round_sets: RefCell<Vec<BitSet>>,
}

impl MbFunction {
    /// Wraps a compiled engine. `bc(∅)` is evaluated once here.
    pub fn new(engine: BestCostEngine) -> Self {
        let universe = engine.universe_size();
        let engine = RefCell::new(engine);
        let bc_empty = engine.borrow_mut().bc(&BitSet::empty(universe));
        MbFunction {
            engine,
            universe,
            bc_empty,
            calls: Cell::new(0),
            round_sets: RefCell::new(Vec::new()),
        }
    }

    /// Standalone materialization cost of each universe element (compute
    /// from scratch + write), read off the compiled engine — the additive
    /// cost vector of [`crate::config::DecompositionKind::MaterializationCost`].
    pub fn materialization_costs(&self) -> Vec<f64> {
        self.engine.borrow().materialization_costs().to_vec()
    }

    /// The no-sharing (Volcano) cost `bc(∅)`.
    pub fn bc_empty(&self) -> f64 {
        self.bc_empty
    }

    /// `bc(S)` itself.
    pub fn bc(&self, set: &BitSet) -> f64 {
        self.calls.set(self.calls.get() + 1);
        self.engine.borrow_mut().bc(set)
    }

    /// Batched `bc` over a greedy round's candidates (one shared base, one
    /// overlay per candidate; sharded across threads when the engine's
    /// config asks for it); see [`BestCostEngine::bc_many`].
    pub fn bc_many(&self, sets: &[BitSet]) -> Vec<f64> {
        self.calls.set(self.calls.get() + sets.len() as u64);
        self.engine.borrow_mut().bc_many(sets)
    }

    /// Number of `bc` invocations so far.
    pub fn bc_calls(&self) -> u64 {
        self.calls.get()
    }

    /// Commits `set` as the engine's incremental base (strategies call this
    /// after each accepted pick so candidate evaluations stay one step away
    /// from base).
    pub fn rebase(&self, set: &BitSet) {
        self.engine.borrow_mut().rebase(set);
    }

    /// Toggles the full-recomputation ablation switch.
    pub fn set_force_full(&self, force: bool) {
        self.engine.borrow_mut().config.force_full = force;
    }

    /// Sets the worker-thread count for sharded batched evaluation
    /// ([`crate::engine::MqoConfig::threads`]): `1` serial, `0` auto.
    /// Values are bit-identical at every setting.
    pub fn set_threads(&self, threads: usize) {
        self.engine.borrow_mut().config.threads = threads;
    }

    /// Replaces the engine's evaluation configuration.
    pub fn set_config(&self, config: MqoConfig) {
        self.engine.borrow_mut().config = config;
    }

    /// The canonical decomposition of Proposition 1 for this function
    /// (`n + 1` oracle calls).
    pub fn canonical_decomposition(&self) -> Decomposition {
        Decomposition::canonical(self)
    }

    /// Consumes the wrapper, returning the engine.
    pub fn into_engine(self) -> BestCostEngine {
        self.engine.into_inner()
    }
}

impl SetFunction for MbFunction {
    fn universe(&self) -> usize {
        self.universe
    }

    fn eval(&self, set: &BitSet) -> f64 {
        self.bc_empty - self.bc(set)
    }

    fn eval_many(&self, sets: &[BitSet]) -> Vec<f64> {
        self.bc_many(sets)
            .into_iter()
            .map(|v| self.bc_empty - v)
            .collect()
    }

    fn marginal(&self, e: usize, set: &BitSet) -> f64 {
        // Route single marginals through the batched machinery: the default
        // eval-difference would drift the engine base between its two `bc`
        // calls and regroup the element sums, so a marginal loop and a
        // `marginal_many` round would disagree by ulps of the (huge) totals.
        self.marginal_many(std::slice::from_ref(&e), set)[0]
    }

    fn marginal_many(&self, elems: &[usize], set: &BitSet) -> Vec<f64> {
        // Commit `set` as the engine base first: every candidate `S ∪ {e}`
        // is then a distance-1 overlay off the same committed arenas, and
        // the per-element arithmetic — (bc∅ − bc(S∪e)) − (bc∅ − bc(S)) —
        // reads identical bits whether the elements arrive as one batch or
        // as a loop of singletons, making the two forms bit-identical.
        self.rebase(set);
        let mut sets = self.round_sets.take();
        if sets.len() < elems.len() {
            sets.resize_with(elems.len(), || BitSet::empty(self.universe));
        }
        for (buf, &e) in sets.iter_mut().zip(elems) {
            buf.copy_from(set);
            buf.insert(e);
        }
        let vals = self.bc_many(&sets[..elems.len()]);
        let f_set = self.bc_empty - self.bc(set);
        self.round_sets.replace(sets);
        vals.into_iter()
            .map(|v| (self.bc_empty - v) - f_set)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchDag;
    use mqo_catalog::{Catalog, TableBuilder};
    use mqo_volcano::cost::DiskCostModel;
    use mqo_volcano::rules::RuleSet;
    use mqo_volcano::{Constraint, DagContext, PlanNode, Predicate};

    fn batch() -> BatchDag {
        let mut cat = Catalog::new();
        for (name, rows) in [("a", 30_000.0), ("b", 60_000.0), ("c", 15_000.0)] {
            cat.add_table(
                TableBuilder::new(name, rows)
                    .key_column(format!("{name}_key"), 4)
                    .column(
                        format!("{name}_fk"),
                        rows / 30.0,
                        (0, (rows as i64) / 30 - 1),
                        4,
                    )
                    .column(format!("{name}_x"), 40.0, (0, 39), 8)
                    .primary_key(&[&format!("{name}_key")])
                    .build(),
            );
        }
        let mut ctx = DagContext::new(cat);
        let a = ctx.instance_by_name("a", 0);
        let b = ctx.instance_by_name("b", 0);
        let c = ctx.instance_by_name("c", 0);
        let p_ab = Predicate::join(ctx.col(a, "a_key"), ctx.col(b, "b_fk"));
        let p_bc = Predicate::join(ctx.col(b, "b_key"), ctx.col(c, "c_fk"));
        let sel = Predicate::on(ctx.col(b, "b_x"), Constraint::eq(3));
        let q1 = PlanNode::scan(a).join(PlanNode::scan(b).select(sel.clone()), p_ab);
        let q2 = PlanNode::scan(b).select(sel).join(PlanNode::scan(c), p_bc);
        BatchDag::build(ctx, &[q1, q2], &RuleSet::default())
    }

    fn mb_of(batch: &BatchDag) -> MbFunction {
        let cm = DiskCostModel::paper();
        let engine = BestCostEngine::new(batch.memo(), &cm, batch.root(), batch.shareable());
        MbFunction::new(engine)
    }

    #[test]
    fn mb_is_normalized() {
        let b = batch();
        let mb = mb_of(&b);
        assert_eq!(mb.eval(&BitSet::empty(mb.universe())), 0.0);
    }

    #[test]
    fn mb_positive_for_shared_selection() {
        let b = batch();
        let mb = mb_of(&b);
        let n = mb.universe();
        let best: f64 = (0..n)
            .map(|e| mb.eval(&BitSet::from_iter(n, [e])))
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            best > 0.0,
            "materializing the shared σ(b) must have positive benefit, got {best}"
        );
    }

    #[test]
    fn decomposition_identity_holds_for_mb() {
        let b = batch();
        let mb = mb_of(&b);
        let n = mb.universe();
        let d = mb.canonical_decomposition();
        // Check f = f_M − c on a few sets.
        for bits in [0usize, 1, 2, 5] {
            let set = BitSet::from_iter(n, (0..n).filter(|e| (bits >> (e % 8)) & 1 == 1));
            let v = mb.eval(&set);
            let recomposed = d.monotone_value(&mb, &set) - d.cost_of(&set);
            assert!((v - recomposed).abs() < 1e-6);
        }
    }

    #[test]
    fn bc_calls_are_counted() {
        let b = batch();
        let mb = mb_of(&b);
        let n = mb.universe();
        let before = mb.bc_calls();
        let _ = mb.eval(&BitSet::empty(n));
        let _ = mb.eval(&BitSet::full(n));
        assert_eq!(mb.bc_calls(), before + 2);
    }
}
