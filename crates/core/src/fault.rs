//! Deterministic fault injection for the chaos/robustness test suite.
//!
//! A *failpoint* is a named site in the pipeline that panics on its Nth
//! crossing once armed. The registry is thread-local, so concurrent tests
//! (and the stress harness's writer threads) arm faults independently
//! without cross-talk; a disarmed site costs one TLS load and a branch,
//! negligible against the microsecond-scale operations the sites sit in.
//!
//! Seeding comes from the in-tree PRNG
//! ([`mqo_submod::prng`]): tests derive the N of "panic on the
//! Nth crossing" from a seed, so every chaos schedule is reproducible.
//!
//! Sites:
//! - [`FaultSite::OracleEval`] — entry of
//!   [`crate::engine::BestCostEngine::bc`] / `bc_many` (an oracle
//!   evaluation blowing up mid-round);
//! - [`FaultSite::AdmissionPrecommit`] — inside
//!   [`crate::batch::BatchDag::add_query_with_threads`], after the memo
//!   savepoint and the seeded expansion but *before* the evolution commit
//!   (the window the serving layer's round rollback must cover);
//! - [`FaultSite::ServeRound`] — entry of the serving layer's queue
//!   drain, while the writer lock is held but before any mutation (the
//!   poison-on-lock scenario: the panic escapes `submit_query` and
//!   poisons the writer mutex itself).

use std::cell::Cell;

/// Named failpoints; see the module docs for where each one sits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSite {
    /// `BestCostEngine::bc` / `bc_many` entry.
    OracleEval,
    /// `BatchDag::add_query_with_threads`, between savepoint and commit.
    AdmissionPrecommit,
    /// `MqoService` drain entry, under the writer lock, pre-mutation.
    ServeRound,
}

const N_SITES: usize = 3;

thread_local! {
    /// Remaining crossings per site; 0 = disarmed, n = panic on the nth
    /// crossing from now.
    static ARMED: [Cell<u64>; N_SITES] = const { [const { Cell::new(0) }; N_SITES] };
}

/// Arms `site` on the current thread: the `nth` crossing of the site (1 =
/// the very next one) panics with an `"injected fault"` message, after
/// which the site is disarmed again. `nth = 0` disarms.
pub fn arm(site: FaultSite, nth: u64) {
    ARMED.with(|a| a[site as usize].set(nth));
}

/// Disarms every site on the current thread. Call from test teardown (and
/// defensively at test entry — a previously panicked test on a reused
/// test-runner thread may have left a site armed).
pub fn disarm_all() {
    ARMED.with(|a| {
        for cell in a {
            cell.set(0);
        }
    });
}

/// Crossing counter: decrements the armed countdown of `site` and panics
/// when it reaches zero. No-op (one TLS load) when disarmed. Called by the
/// instrumented sites; not intended for test code.
#[inline]
pub fn hit(site: FaultSite) {
    ARMED.with(|a| {
        let cell = &a[site as usize];
        let n = cell.get();
        if n == 0 {
            return;
        }
        cell.set(n - 1);
        if n == 1 {
            panic!("injected fault: {site:?}");
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_sites_are_free() {
        disarm_all();
        for _ in 0..1000 {
            hit(FaultSite::OracleEval);
        }
    }

    #[test]
    fn armed_site_fires_on_the_nth_crossing_then_disarms() {
        disarm_all();
        arm(FaultSite::AdmissionPrecommit, 3);
        hit(FaultSite::AdmissionPrecommit);
        hit(FaultSite::AdmissionPrecommit);
        hit(FaultSite::OracleEval); // other sites unaffected
        let r = std::panic::catch_unwind(|| hit(FaultSite::AdmissionPrecommit));
        assert!(r.is_err(), "third crossing must panic");
        hit(FaultSite::AdmissionPrecommit); // disarmed again
    }

    #[test]
    fn arming_is_thread_local() {
        disarm_all();
        arm(FaultSite::OracleEval, 1);
        std::thread::scope(|s| {
            s.spawn(|| {
                // Fresh thread: its TLS registry starts disarmed.
                hit(FaultSite::OracleEval);
            });
        });
        let r = std::panic::catch_unwind(|| hit(FaultSite::OracleEval));
        assert!(r.is_err(), "arming thread still fires");
        disarm_all();
    }
}
