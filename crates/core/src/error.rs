//! The typed error taxonomy of the fault-tolerant serving surface.
//!
//! Every operation in the `Session`/`MqoService` stack that can fail on
//! *user input* has a fallible `try_*` variant returning [`MqoError`]; the
//! historical panicking entry points remain as thin shims that format the
//! same error. Internal invariant violations still panic — the serving
//! layer contains those with `catch_unwind` and surfaces them to the
//! affected submitters as [`MqoError::RoundFailed`] (see
//! [`crate::serve::MqoService`]).
//!
//! Plan validation ([`PlanValidator`]) is the admission door: a malformed
//! plan (unknown table instance, out-of-range column, duplicate aggregate
//! output) is rejected *before* it reaches the single-writer admission
//! round, so one bad client cannot take down a round shared with healthy
//! submitters.

use std::fmt;

use mqo_volcano::logical::PlanNode;
use mqo_volcano::{ColId, DagContext, InstanceId};

use crate::batch::QueryTicket;

/// Why a submitted plan failed pre-admission validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanFault {
    /// The plan scans or references a table instance never registered in
    /// the session's [`DagContext`].
    UnknownInstance {
        /// The out-of-range instance id.
        inst: InstanceId,
        /// How many instances the context has registered.
        n_instances: usize,
    },
    /// A predicate or aggregate references a column that does not exist:
    /// a base column index past its table's schema, or a synthetic column
    /// id never registered.
    UnknownColumn {
        /// The dangling column reference.
        col: ColId,
    },
    /// An aggregate specification binds two calls to the same output
    /// column, making the downstream reference ambiguous.
    DuplicateAggOutput {
        /// The doubly-bound output column.
        col: ColId,
    },
}

impl fmt::Display for PlanFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanFault::UnknownInstance { inst, n_instances } => write!(
                f,
                "unknown table instance {inst:?} (the context registers {n_instances})"
            ),
            PlanFault::UnknownColumn { col } => {
                write!(f, "reference to nonexistent column {col:?}")
            }
            PlanFault::DuplicateAggOutput { col } => {
                write!(f, "duplicate aggregate output column {col:?}")
            }
        }
    }
}

/// Typed errors of the fallible (`try_*`) session and serving surface.
///
/// The panicking wrappers (`Session::build`, `OptimizedBatch::add_query`,
/// `MqoService::submit_query`, …) are shims over the `try_*` variants and
/// panic with these errors' `Display` text, so the taxonomy is the single
/// source of truth for both surfaces.
#[derive(Clone, Debug, PartialEq)]
pub enum MqoError {
    /// `Session::try_build` without a [`DagContext`].
    MissingContext,
    /// `Session::try_build` with an empty query list — a batch is never
    /// empty (and retiring the last live query is rejected for the same
    /// reason, as [`MqoError::LastLiveQuery`]).
    EmptyBatch,
    /// A plan failed pre-admission validation; `query` is its position in
    /// the build's query list (0 for single-plan admissions).
    InvalidPlan {
        /// Index of the offending plan in the submitted list.
        query: usize,
        /// What is wrong with it.
        fault: PlanFault,
    },
    /// The ticket was never issued by this batch, or its provenance entry
    /// was dropped by history compaction.
    UnknownTicket(QueryTicket),
    /// The ticket's query was already retired.
    TicketRetired(QueryTicket),
    /// Retiring this ticket would empty the batch; a batch always keeps at
    /// least one live query.
    LastLiveQuery(QueryTicket),
    /// The savepoint does not belong to this batch's lineage, or the batch
    /// was already rolled back past it (e.g. by a concurrent caller
    /// through the serving layer).
    StaleSavepoint,
    /// The coalesced admission round this submission was queued into
    /// panicked; the batch was rolled back to the round's entry savepoint
    /// and the previously published snapshot stays live. Resubmitting is
    /// safe — the failure affected only that round.
    RoundFailed,
}

impl fmt::Display for MqoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MqoError::MissingContext => {
                write!(f, "a DagContext is required (call .context(ctx))")
            }
            MqoError::EmptyBatch => write!(
                f,
                "at least one query is required (call .query(..) or .queries(..))"
            ),
            MqoError::InvalidPlan { query, fault } => {
                write!(f, "invalid plan for query {query}: {fault}")
            }
            MqoError::UnknownTicket(t) => write!(
                f,
                "ticket {t:?} is unknown: never issued by this batch (or compacted away)"
            ),
            MqoError::TicketRetired(t) => {
                write!(f, "ticket {t:?} was already retired (or never issued)")
            }
            MqoError::LastLiveQuery(_) => write!(
                f,
                "cannot retire the last live query: a batch must stay non-empty"
            ),
            MqoError::StaleSavepoint => write!(
                f,
                "stale savepoint: not from this batch's lineage, or already rolled back past"
            ),
            MqoError::RoundFailed => write!(
                f,
                "admission round failed and was rolled back; the batch and published \
                 snapshot are unchanged — resubmit if desired"
            ),
        }
    }
}

impl std::error::Error for MqoError {}

/// A lock-free snapshot of everything plan validation needs: per-instance
/// column counts and the synthetic-column count of one [`DagContext`].
/// Built once (e.g. at service creation) and consulted on every
/// submission without touching the context — or any lock — again.
#[derive(Clone, Debug)]
pub struct PlanValidator {
    /// Column count of each registered instance, indexed by `InstanceId`.
    cols_per_instance: Vec<u32>,
    /// Number of registered synthetic columns.
    n_synths: u32,
}

impl PlanValidator {
    /// Snapshots the validation schema of `ctx`.
    pub fn new(ctx: &DagContext) -> Self {
        let cols_per_instance = (0..ctx.n_instances())
            .map(|i| {
                let rel = ctx.rel(InstanceId(i as u32));
                ctx.catalog().table(rel.table).columns.len() as u32
            })
            .collect();
        PlanValidator {
            cols_per_instance,
            n_synths: ctx.n_synths() as u32,
        }
    }

    /// Validates one plan tree: every scanned instance is registered, every
    /// column reference resolves, and no aggregate binds an output column
    /// twice. Returns the first fault found (deterministic: a pre-order
    /// walk, predicates before children).
    pub fn validate(&self, plan: &PlanNode) -> Result<(), PlanFault> {
        match plan {
            PlanNode::Scan { inst } => self.check_instance(*inst),
            PlanNode::Select { pred, input } => {
                for col in pred.columns() {
                    self.check_column(col)?;
                }
                self.validate(input)
            }
            PlanNode::Join { pred, left, right } => {
                for col in pred.columns() {
                    self.check_column(col)?;
                }
                self.validate(left)?;
                self.validate(right)
            }
            PlanNode::Aggregate { spec, input } => {
                for &col in &spec.group_by {
                    self.check_column(col)?;
                }
                for (i, call) in spec.aggs.iter().enumerate() {
                    self.check_column(call.input)?;
                    self.check_column(call.output)?;
                    // AggSpec::new sorts calls by output, so a duplicate
                    // binding is adjacent; still scan defensively in case
                    // the spec was constructed by hand.
                    if spec.aggs[..i].iter().any(|c| c.output == call.output) {
                        return Err(PlanFault::DuplicateAggOutput { col: call.output });
                    }
                }
                self.validate(input)
            }
        }
    }

    fn check_instance(&self, inst: InstanceId) -> Result<(), PlanFault> {
        if (inst.0 as usize) < self.cols_per_instance.len() {
            Ok(())
        } else {
            Err(PlanFault::UnknownInstance {
                inst,
                n_instances: self.cols_per_instance.len(),
            })
        }
    }

    fn check_column(&self, col: ColId) -> Result<(), PlanFault> {
        let known = match col {
            ColId::Base { inst, col: c } => {
                self.check_instance(inst)?;
                c < self.cols_per_instance[inst.0 as usize]
            }
            ColId::Synth(i) => i < self.n_synths,
        };
        if known {
            Ok(())
        } else {
            Err(PlanFault::UnknownColumn { col })
        }
    }
}
