//! Multi-query optimization as unconstrained normalized submodular
//! maximization — the primary contribution of *"Efficient and Provable
//! Multi-Query Optimization"* (Kathuria & Sudarshan, PODS 2017).
//!
//! Pipeline:
//!
//! 1. [`batch::BatchDag`] — insert a batch of queries into one memo,
//!    expand under the transformation rules, add the dummy root, and
//!    compute the shareable-node universe (Section 2.2).
//! 2. [`engine::BestCostEngine`] — the compiled `bestCost(Q, S)` oracle
//!    with incremental recomputation (Section 5.1's optimizations).
//! 3. [`benefit::MbFunction`] — the materialization benefit
//!    `mb(S) = bc(∅) − bc(S)` as a set function (Section 2.4), with the
//!    canonical decomposition of Proposition 1.
//! 4. [`strategies`] — stand-alone Volcano, Greedy (Algorithm 1),
//!    MarginalGreedy (Algorithm 2), their lazy accelerations, the
//!    materialize-everything baseline, and the Section 5.3
//!    cardinality-constrained variant.
//! 5. [`consolidated::ConsolidatedPlan`] — the extracted physical artifact
//!    (materialization productions + per-query plans).
//! 6. [`serve::MqoService`] — the concurrent serving layer: a single
//!    writer coalesces concurrent admissions into optimization rounds and
//!    publishes immutable [`engine::EngineState`] snapshots that any
//!    number of readers optimize against without blocking it.
//!
//! # Example
//!
//! ```no_run
//! use mqo_core::session::Session;
//! use mqo_core::strategies::Strategy;
//! use mqo_volcano::cost::DiskCostModel;
//!
//! # fn queries() -> (mqo_volcano::DagContext, Vec<mqo_volcano::PlanNode>) { unimplemented!() }
//! let (ctx, qs) = queries();
//! let batch = Session::builder()
//!     .context(ctx)
//!     .queries(qs)
//!     .cost_model(DiskCostModel::paper())
//!     .build();
//! let report = batch.run(Strategy::MarginalGreedy);
//! println!("cost {} vs volcano {}", report.total_cost, report.volcano_cost);
//! println!("{}", report.plan.render(batch.batch()));
//! ```

#![forbid(unsafe_code)]

pub mod batch;
pub mod benefit;
pub mod config;
pub mod consolidated;
pub mod engine;
pub mod error;
pub mod fault;
pub mod serve;
pub mod session;
pub mod strategies;

pub use batch::{BatchDag, BatchSavepoint, QueryTicket};
pub use benefit::MbFunction;
pub use config::{DecompositionKind, MqoConfig};
pub use consolidated::ConsolidatedPlan;
pub use engine::{BestCostEngine, EngineState};
pub use error::{MqoError, PlanFault, PlanValidator};
pub use serve::{MqoService, PriorityClass, ServeConfig, ServeStats};
pub use session::{OptimizedBatch, Session, SessionBuilder};
pub use strategies::{GapCertificate, RunReport, Strategy};
