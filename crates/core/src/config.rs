//! The unified MQO configuration.
//!
//! One [`MqoConfig`] drives the whole pipeline a [`crate::Session`] owns:
//! the expansion fixpoint's candidate-generation fan-out, the compiled
//! `bestCost` oracle's evaluation strategy (rebase threshold, ablation
//! switch), and the sharded batched evaluation. It absorbs what used to be
//! `EngineConfig` plus the expansion thread count, so the `MQO_THREADS`
//! environment variable is read in exactly one place:
//! [`MqoConfig::default`].

use mqo_volcano::rules::{effective_threads, expand_threads_from_env};

/// Which decomposition `f = f_M − c` the marginal-greedy family and the
/// universe-reduction pre-pass use.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DecompositionKind {
    /// Proposition 1's canonical decomposition: `c({e}) = −f({e})` per
    /// element. Carries the Theorem 1 guarantee, but its top-of-lattice
    /// ratios make the Theorem 4 reduction vacuous (it never prunes).
    #[default]
    Canonical,
    /// Cost the elements by their standalone materialization cost
    /// (compute-from-scratch + write, read off the compiled engine). Same
    /// greedy machinery, and the Theorem 4 reduction actually prunes —
    /// this is the decomposition the scale pre-pass runs under.
    MaterializationCost,
}

/// Tuning knobs of the MQO pipeline. Every setting is
/// behavior-preserving: the chosen materializations, costs, and plans are
/// identical under any configuration (only wall-clock and bookkeeping
/// change), except that `force_full` is an explicit ablation switch with
/// the same results at higher cost, and `decomposition` /
/// `universe_reduction` / `max_materializations` select *which* provable
/// algorithm runs (Theorem 4 guarantees reduction-on ≡ reduction-off for
/// the ratio-ranked greedy under a fixed decomposition — pinned by the
/// differential suite — but changing the decomposition or adding a
/// cardinality cap legitimately changes the chosen set).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MqoConfig {
    /// Rebase (commit a full `bestCost` solve) when a candidate differs
    /// from the committed base in more than this many universe elements;
    /// smaller diffs take the allocation-free overlay path. `0` rebases on
    /// every non-base evaluation.
    pub rebase_threshold: usize,
    /// When true, every oracle evaluation runs the full DP (ablation
    /// switch).
    pub force_full: bool,
    /// Worker threads, used by both parallel phases of the pipeline: the
    /// expansion fixpoint's candidate generation and the sharded
    /// [`crate::engine::BestCostEngine::bc_many`]. `1` keeps everything
    /// serial, `0` resolves to the machine's available parallelism. The
    /// default reads the `MQO_THREADS` environment variable (falling back
    /// to `1`) — this is the single place in the workspace that consults
    /// it. Results are bit-identical at every setting.
    pub threads: usize,
    /// Decomposition used by the marginal-greedy strategy family and the
    /// universe-reduction pre-pass.
    pub decomposition: DecompositionKind,
    /// Run the Theorem 4 universe-reduction pre-pass before ratio-ranked
    /// greedy strategies: elements whose singleton benefit/cost ratio is
    /// provably dominated are dropped from the candidate universe before
    /// the greedy rounds ever see them. Output-identical to running on
    /// the full universe (Theorem 4); off by default.
    pub universe_reduction: bool,
    /// Optional cardinality cap `k` on the number of materializations
    /// (Section 5.3). Also the `k` the universe-reduction threshold is
    /// computed against; `None` means unbounded (reduction then uses the
    /// universe size, which only prunes ratio-zero elements).
    pub max_materializations: Option<usize>,
    /// Wall-clock budget for a greedy run (anytime mode). When the budget
    /// expires mid-run the greedy loop stops where it is, the partial
    /// selection is extracted as usual, and the
    /// [`crate::strategies::RunReport`] carries a
    /// [`crate::strategies::GapCertificate`] bounding how much the
    /// truncation may have cost. `None` (the default) never truncates.
    /// Note this is the one knob that is *not* behavior-preserving across
    /// machines: a slower machine truncates earlier. Determinism across
    /// `MQO_THREADS` settings still holds for whatever prefix ran.
    pub time_budget: Option<std::time::Duration>,
    /// Benefit floor for the greedy stopping rules: a pick whose marginal
    /// benefit does not *exceed* this value stops the run (early-exit on
    /// diminishing returns). `0.0`, the default, is the paper's exact
    /// stopping rule for Greedy and — combined with the `ratio > 1` rule —
    /// for MarginalGreedy. A positive floor trades optimization time for a
    /// certified gap, like `time_budget` but deterministic.
    pub marginal_floor: f64,
}

impl Default for MqoConfig {
    fn default() -> Self {
        MqoConfig {
            rebase_threshold: 4,
            force_full: false,
            threads: expand_threads_from_env(),
            decomposition: DecompositionKind::Canonical,
            universe_reduction: false,
            max_materializations: None,
            time_budget: None,
            marginal_floor: 0.0,
        }
    }
}

impl MqoConfig {
    /// The default configuration pinned to serial execution, ignoring
    /// `MQO_THREADS` (useful for ablations that must not be confounded by
    /// an exported thread count).
    pub fn serial() -> Self {
        MqoConfig {
            threads: 1,
            ..Default::default()
        }
    }

    /// The default configuration with an explicit worker-thread count.
    pub fn with_threads(threads: usize) -> Self {
        MqoConfig {
            threads,
            ..Default::default()
        }
    }

    /// Resolves [`Self::threads`] to a concrete worker count for a batch
    /// of `batch_len` work items (auto-detection, capped by the batch
    /// size).
    pub(crate) fn effective_threads(&self, batch_len: usize) -> usize {
        effective_threads(self.threads, batch_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_with_threads_pin_the_thread_count() {
        assert_eq!(MqoConfig::serial().threads, 1);
        assert_eq!(MqoConfig::with_threads(7).threads, 7);
        let d = MqoConfig::default();
        assert_eq!(MqoConfig::serial().rebase_threshold, d.rebase_threshold);
        assert!(!MqoConfig::serial().force_full);
    }

    #[test]
    fn effective_threads_caps_by_batch() {
        assert_eq!(MqoConfig::with_threads(8).effective_threads(3), 3);
        assert_eq!(MqoConfig::with_threads(2).effective_threads(100), 2);
        assert_eq!(MqoConfig::serial().effective_threads(100), 1);
    }
}
