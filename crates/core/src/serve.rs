//! The concurrent serving layer: one writer, many snapshot readers.
//!
//! [`MqoService`] turns an [`OptimizedBatch`] into a long-lived shared
//! service built directly on the session stack's ownership split:
//!
//! - the **batch** (behind the single writer lock) is the only mutable
//!   state — the thin editor that admits, retires, and compacts;
//! - every commit publishes an immutable [`EngineState`] snapshot
//!   (shared compiled arenas + universe + query roots behind one `Arc`);
//! - readers clone the published `Arc` and optimize through their own
//!   per-caller engine handles — they never block the writer, and a
//!   reader holding an old snapshot keeps a fully consistent frozen view
//!   while the batch evolves underneath (snapshot isolation by
//!   immutability).
//!
//! Admission uses *flat combining*: [`MqoService::submit_query`] enqueues
//! the plan and then takes the writer lock. Whichever submitter gets the
//! lock first becomes the writer for everyone — it drains the queue in
//! optimization **rounds** (each round admits every plan queued so far and
//! re-queues arrivals for the next), publishes the new snapshot, and only
//! then releases the lock; the coalesced submitters wake up to find their
//! ticket already filled in. A caller therefore never observes a published
//! snapshot older than its own admission.
//!
//! Two maintenance duties ride on the writer:
//!
//! - **re-baselining** — when the evolution history (provenance entries
//!   plus the memo's savepoint undo log) exceeds
//!   [`ServeConfig::history_watermark`], the batch is compacted so history
//!   size depends only on the live query count, not on how many
//!   add/retire cycles the service has absorbed;
//! - the **materialization cache** — when
//!   [`ServeConfig::cache_capacity`] is non-zero, the service retains the
//!   materializations the configured strategy keeps choosing, keyed by
//!   structural fingerprint so entries survive evolution commits, and
//!   evicts by the `bestCost` oracle's marginals: an entry whose
//!   leave-one-out benefit `bc(C∖{e}) − bc(C)` is non-positive (or
//!   smallest, once over capacity) goes first.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mqo_submod::bitset::BitSet;
use mqo_volcano::PlanNode;

use crate::batch::{BatchSavepoint, QueryTicket};
use crate::config::MqoConfig;
use crate::engine::EngineState;
use crate::session::OptimizedBatch;
use crate::strategies::{RunReport, Strategy};

/// Configuration of an [`MqoService`].
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Strategy used by [`MqoService::run`] and by the materialization
    /// cache to seed candidates. Defaults to [`Strategy::MarginalGreedy`].
    pub strategy: Strategy,
    /// Re-baseline the batch after any round that leaves
    /// [`OptimizedBatch::history_len`] above this. Defaults to
    /// `usize::MAX` (never compact).
    pub history_watermark: usize,
    /// Capacity of the materialization cache. Defaults to 0 (disabled):
    /// plain admission then skips the strategy run and oracle scoring the
    /// cache refresh costs.
    pub cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            strategy: Strategy::MarginalGreedy,
            history_watermark: usize::MAX,
            cache_capacity: 0,
        }
    }
}

/// Point-in-time counters of a service; see [`MqoService::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Optimization rounds the writer ran (one per queue drain, however
    /// many submissions it coalesced).
    pub rounds: u64,
    /// Queries admitted.
    pub admitted: u64,
    /// Admissions that rode along in a round another submitter drove
    /// (i.e. `admitted − coalesced` submitters became the writer).
    pub coalesced: u64,
    /// Queries retired.
    pub retired: u64,
    /// Re-baselining compactions triggered by the history watermark.
    pub compactions: u64,
    /// Materialization-cache entries evicted (benefit-driven or
    /// universe-departure).
    pub evictions: u64,
}

struct Counters {
    rounds: AtomicU64,
    admitted: AtomicU64,
    coalesced: AtomicU64,
    retired: AtomicU64,
    compactions: AtomicU64,
    evictions: AtomicU64,
}

/// A queued admission: the plan plus the slot the draining writer fills
/// with the issued ticket.
struct PendingSubmit {
    plan: PlanNode,
    slot: Arc<Mutex<Option<QueryTicket>>>,
}

/// One retained materialization: the structural fingerprint of its
/// shareable group (stable across evolution commits) and its last
/// leave-one-out benefit under the `bestCost` oracle.
struct MatEntry {
    fingerprint: u64,
    score: f64,
}

/// A shared, concurrent MQO service over one evolvable batch; see the
/// module docs for the protocol. `&self`-driven throughout — share it by
/// reference across scoped threads (it is `Sync`), no internal `Arc`
/// required.
pub struct MqoService {
    /// The single writer: the batch editor plus its cost model and config.
    core: Mutex<OptimizedBatch>,
    /// The admission queue; drained in rounds by whichever submitter holds
    /// the writer lock.
    pending: Mutex<Vec<PendingSubmit>>,
    /// The latest published snapshot; replaced (never mutated) on every
    /// commit, before the writer lock is released.
    published: Mutex<Arc<EngineState>>,
    /// The materialization cache (empty when disabled).
    cache: Mutex<Vec<MatEntry>>,
    config: ServeConfig,
    /// Copy of the session's [`MqoConfig`], so readers spin up engine
    /// handles without touching the writer lock.
    mqo_config: MqoConfig,
    counters: Counters,
}

impl MqoService {
    /// Wraps `batch`; called by [`OptimizedBatch::serve_with`]. Publishes
    /// the initial snapshot eagerly so readers never wait on a first
    /// compile.
    pub(crate) fn new(batch: OptimizedBatch, config: ServeConfig) -> Self {
        let mqo_config = batch.config();
        let published = batch.snapshot();
        MqoService {
            core: Mutex::new(batch),
            pending: Mutex::new(Vec::new()),
            published: Mutex::new(published),
            cache: Mutex::new(Vec::new()),
            config,
            mqo_config,
            counters: Counters {
                rounds: AtomicU64::new(0),
                admitted: AtomicU64::new(0),
                coalesced: AtomicU64::new(0),
                retired: AtomicU64::new(0),
                compactions: AtomicU64::new(0),
                evictions: AtomicU64::new(0),
            },
        }
    }

    // -------------------------------------------------------------------
    // Readers: never block the writer.
    // -------------------------------------------------------------------

    /// The latest published snapshot — one `Arc` clone, regardless of what
    /// the writer is doing. Everything reachable from it is immutable;
    /// optimize against it with [`EngineState::run`] or spin up a
    /// per-caller engine handle with [`EngineState::engine`].
    pub fn snapshot(&self) -> Arc<EngineState> {
        Arc::clone(&self.published.lock().expect("published snapshot poisoned"))
    }

    /// Optimizes the latest snapshot with the configured strategy.
    pub fn run(&self) -> RunReport {
        self.snapshot().run(self.config.strategy, self.mqo_config)
    }

    /// Optimizes the latest snapshot with an explicit strategy.
    pub fn run_with(&self, strategy: Strategy) -> RunReport {
        self.snapshot().run(strategy, self.mqo_config)
    }

    /// The service configuration.
    pub fn config(&self) -> ServeConfig {
        self.config
    }

    /// Point-in-time counters (relaxed loads; exact once the writer is
    /// quiescent).
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            rounds: self.counters.rounds.load(Ordering::Relaxed),
            admitted: self.counters.admitted.load(Ordering::Relaxed),
            coalesced: self.counters.coalesced.load(Ordering::Relaxed),
            retired: self.counters.retired.load(Ordering::Relaxed),
            compactions: self.counters.compactions.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
        }
    }

    /// Structural fingerprints of the currently cached materializations,
    /// in descending benefit order.
    pub fn cached_materializations(&self) -> Vec<u64> {
        self.cache
            .lock()
            .expect("materialization cache poisoned")
            .iter()
            .map(|e| e.fingerprint)
            .collect()
    }

    // -------------------------------------------------------------------
    // Writer-side: admission, retirement, maintenance.
    // -------------------------------------------------------------------

    /// Admits `plan` into the live batch and returns its ticket. Safe to
    /// call from any number of threads: submissions arriving while a
    /// round is in flight are coalesced into the next round (the
    /// in-flight writer admits them; this call just waits and picks its
    /// ticket up). On return, the published snapshot includes the query.
    pub fn submit_query(&self, plan: PlanNode) -> QueryTicket {
        let slot = Arc::new(Mutex::new(None));
        self.pending
            .lock()
            .expect("admission queue poisoned")
            .push(PendingSubmit {
                plan,
                slot: Arc::clone(&slot),
            });
        let mut core = self.core.lock().expect("service writer poisoned");
        // A writer that beat us to the lock may have admitted us already.
        if let Some(t) = *slot.lock().expect("admission slot poisoned") {
            return t;
        }
        self.drain(&mut core);
        let t = slot
            .lock()
            .expect("admission slot poisoned")
            .expect("draining writer fills every queued slot");
        t
    }

    /// Retires the query behind `ticket` and publishes the shrunk
    /// snapshot (also draining any queued admissions).
    ///
    /// # Panics
    /// As [`OptimizedBatch::retire_query`]: retired/unknown tickets and
    /// the last live query are rejected.
    pub fn retire_query(&self, ticket: QueryTicket) {
        let mut core = self.core.lock().expect("service writer poisoned");
        core.retire_query(ticket);
        self.counters.retired.fetch_add(1, Ordering::Relaxed);
        self.drain(&mut core);
    }

    /// Snapshots the batch's evolution state for a later
    /// [`MqoService::rollback`] (what-if admission probes).
    pub fn savepoint(&self) -> BatchSavepoint {
        self.core
            .lock()
            .expect("service writer poisoned")
            .savepoint()
    }

    /// Rewinds to `sp` and publishes the restored snapshot. Tickets issued
    /// since the savepoint are dead afterwards.
    pub fn rollback(&self, sp: BatchSavepoint) {
        let mut core = self.core.lock().expect("service writer poisoned");
        core.rollback(sp);
        self.drain(&mut core);
    }

    /// Tickets of the currently live queries, in admission order.
    pub fn tickets(&self) -> Vec<QueryTicket> {
        self.core.lock().expect("service writer poisoned").tickets()
    }

    /// Current evolution-history size; see [`OptimizedBatch::history_len`].
    pub fn history_len(&self) -> usize {
        self.core
            .lock()
            .expect("service writer poisoned")
            .history_len()
    }

    /// Shuts the service down and hands the batch back, admitting any
    /// still-queued plans first. (With scoped reader/writer threads joined
    /// the queue is empty and this is free.)
    pub fn finish(self) -> OptimizedBatch {
        let mut core = self.core.into_inner().expect("service writer poisoned");
        for p in self.pending.into_inner().expect("admission queue poisoned") {
            let t = core.add_query(p.plan);
            *p.slot.lock().expect("admission slot poisoned") = Some(t);
        }
        core
    }

    /// Drains the admission queue in rounds, then runs maintenance and
    /// publishes. Caller holds the writer lock.
    fn drain(&self, core: &mut OptimizedBatch) {
        loop {
            let round =
                std::mem::take(&mut *self.pending.lock().expect("admission queue poisoned"));
            if round.is_empty() {
                break;
            }
            self.counters.rounds.fetch_add(1, Ordering::Relaxed);
            self.counters
                .coalesced
                .fetch_add(round.len() as u64 - 1, Ordering::Relaxed);
            for p in round {
                let t = core.add_query(p.plan);
                self.counters.admitted.fetch_add(1, Ordering::Relaxed);
                *p.slot.lock().expect("admission slot poisoned") = Some(t);
            }
        }
        if core.history_len() > self.config.history_watermark {
            core.compact_history();
            self.counters.compactions.fetch_add(1, Ordering::Relaxed);
        }
        let state = core.snapshot();
        if self.config.cache_capacity > 0 {
            self.refresh_cache(core, &state);
        }
        // Publish before releasing the writer lock: a submitter whose slot
        // was filled above cannot wake up before this store.
        *self.published.lock().expect("published snapshot poisoned") = state;
    }

    /// Refreshes the materialization cache against the new commit: drops
    /// entries whose group left the universe, folds in the configured
    /// strategy's chosen set, re-scores every entry by its leave-one-out
    /// benefit `bc(C∖{e}) − bc(C)`, and evicts non-positive scores plus
    /// the smallest scores past capacity.
    fn refresh_cache(&self, core: &OptimizedBatch, state: &Arc<EngineState>) {
        let fps = core.batch().shareable_fingerprints();
        let elem_of_fp: HashMap<u64, usize> =
            fps.iter().enumerate().map(|(i, &f)| (f, i)).collect();
        let report = state.run(self.config.strategy, self.mqo_config);

        let mut cache = self.cache.lock().expect("materialization cache poisoned");
        cache.retain(|e| elem_of_fp.contains_key(&e.fingerprint));
        for &g in &report.materialized {
            let e = core
                .batch()
                .shareable_index(g)
                .expect("chosen materialization is a universe element");
            let fp = fps[e];
            if !cache.iter().any(|c| c.fingerprint == fp) {
                cache.push(MatEntry {
                    fingerprint: fp,
                    score: 0.0,
                });
            }
        }
        let candidates = cache.len();
        if candidates == 0 {
            return;
        }

        let elems: Vec<usize> = cache.iter().map(|c| elem_of_fp[&c.fingerprint]).collect();
        let mut set = BitSet::empty(state.universe_size());
        for &e in &elems {
            set.insert(e);
        }
        let mut engine = state.engine(self.mqo_config);
        let full = engine.bc(&set);
        let leave_one_out: Vec<BitSet> = elems
            .iter()
            .map(|&e| {
                let mut s = set.clone();
                s.remove(e);
                s
            })
            .collect();
        let without = engine.bc_many(&leave_one_out);
        for (entry, w) in cache.iter_mut().zip(&without) {
            entry.score = w - full;
        }
        cache.retain(|e| e.score > 0.0);
        cache.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then(a.fingerprint.cmp(&b.fingerprint))
        });
        cache.truncate(self.config.cache_capacity);
        self.counters
            .evictions
            .fetch_add((candidates - cache.len()) as u64, Ordering::Relaxed);
    }
}
