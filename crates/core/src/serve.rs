//! The concurrent serving layer: one writer, many snapshot readers.
//!
//! [`MqoService`] turns an [`OptimizedBatch`] into a long-lived shared
//! service built directly on the session stack's ownership split:
//!
//! - the **batch** (behind the single writer lock) is the only mutable
//!   state — the thin editor that admits, retires, and compacts;
//! - every commit publishes an immutable [`EngineState`] snapshot
//!   (shared compiled arenas + universe + query roots behind one `Arc`);
//! - readers clone the published `Arc` and optimize through their own
//!   per-caller engine handles — they never block the writer, and a
//!   reader holding an old snapshot keeps a fully consistent frozen view
//!   while the batch evolves underneath (snapshot isolation by
//!   immutability).
//!
//! Admission uses *flat combining*: [`MqoService::submit_query`] enqueues
//! the plan and then takes the writer lock. Whichever submitter gets the
//! lock first becomes the writer for everyone — it drains the queue in
//! optimization **rounds** (each round admits every plan queued so far and
//! re-queues arrivals for the next), publishes the new snapshot, and only
//! then releases the lock; the coalesced submitters wake up to find their
//! ticket already filled in. A caller therefore never observes a published
//! snapshot older than its own admission.
//!
//! Two maintenance duties ride on the writer:
//!
//! - **re-baselining** — when the evolution history (provenance entries
//!   plus the memo's savepoint undo log) exceeds
//!   [`ServeConfig::history_watermark`], the batch is compacted so history
//!   size depends only on the live query count, not on how many
//!   add/retire cycles the service has absorbed;
//! - the **materialization cache** — when
//!   [`ServeConfig::cache_capacity`] is non-zero, the service retains the
//!   materializations the configured strategy keeps choosing, keyed by
//!   structural fingerprint so entries survive evolution commits, and
//!   evicts by the `bestCost` oracle's marginals: an entry whose
//!   leave-one-out benefit `bc(C∖{e}) − bc(C)` is non-positive (or
//!   smallest, once over capacity) goes first.
//!
//! # Fault tolerance
//!
//! The service is built to stay serveable through the failure of any one
//! admission round (see the README's "Fault tolerance" section for the
//! full state machine):
//!
//! - **Admission is the only door.** Every submitted plan is validated
//!   against a lock-free [`PlanValidator`] snapshot of the session's
//!   context *before* it is queued; a malformed plan comes back as
//!   [`MqoError::InvalidPlan`] without ever reaching the writer, so one
//!   bad client cannot fail a round shared with healthy submitters.
//! - **Rounds are transactions.** The draining writer takes a
//!   [`crate::batch::BatchSavepoint`] before each round and wraps the
//!   round's admissions in [`std::panic::catch_unwind`]. A panic anywhere
//!   inside (an oracle blowing up mid-evaluation, an admission dying
//!   between savepoint and commit) rolls the batch back to the round's
//!   entry savepoint; only that round's submitters observe it, each as
//!   [`MqoError::RoundFailed`] in its slot. The previously published
//!   snapshot stays live, and subsequent rounds proceed as if the failed
//!   round had never been queued.
//! - **Locks recover from poison.** Every internal lock site recovers the
//!   guard from a [`std::sync::PoisonError`] instead of propagating it:
//!   the writer's per-round rollback is what restores invariants, so a
//!   panic that poisons a lock (even the writer lock itself, via a panic
//!   escaping a submitter) never wedges the service for later callers.
//! - **Deadline budgets degrade gracefully.** [`ServeConfig`] carries an
//!   optional per-[`PriorityClass`] optimization budget;
//!   [`MqoService::run_class`] caps the strategy's wall-clock with it and
//!   the resulting [`RunReport`] carries a
//!   [`crate::strategies::GapCertificate`] bounding what the truncation
//!   may have cost.

use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use mqo_submod::bitset::BitSet;
use mqo_volcano::PlanNode;

use crate::batch::{BatchSavepoint, QueryTicket};
use crate::config::MqoConfig;
use crate::engine::EngineState;
use crate::error::{MqoError, PlanValidator};
use crate::fault::{self, FaultSite};
use crate::session::OptimizedBatch;
use crate::strategies::{RunReport, Strategy};

/// The serving layer's global lock-acquisition order. Every internal lock
/// site names its rank, and debug builds maintain a thread-local
/// acquisition stack that panics the moment two locks are taken in an
/// order inverting this enum's derived `Ord` — a lock-order race detector
/// in the spirit of lockdep, exercised (and required to stay silent) by
/// the serve-stress and fault-injection suites. Release builds compile
/// the detector out (the rank degenerates to an unread byte on the
/// guard).
///
/// The order is the one the drain protocol already obeys: the writer lock
/// is always outermost, the queue/published/cache locks are only ever
/// taken under it (or alone), and per-submission slots are leaves.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum LockRank {
    /// [`MqoService::core`], the single-writer lock — always outermost.
    Writer,
    /// [`MqoService::pending`], the admission queue.
    Queue,
    /// [`MqoService::published`], the snapshot slot.
    Published,
    /// [`MqoService::cache`], the materialization cache.
    Cache,
    /// A [`PendingSubmit::slot`] result cell — a leaf; never hold one
    /// while taking any other serve lock.
    Slot,
}

/// Debug-build half of the detector: the thread-local stack of ranks this
/// thread currently holds, checked *before* blocking on the mutex (so an
/// inversion panics instead of deadlocking) and pushed after acquisition.
#[cfg(debug_assertions)]
mod lock_order {
    use super::LockRank;
    use std::cell::RefCell;

    thread_local! {
        static HELD: RefCell<Vec<LockRank>> = const { RefCell::new(Vec::new()) };
    }

    /// Panics if taking `rank` now would invert the global order.
    pub(super) fn check(rank: LockRank) {
        HELD.with(|held| {
            if let Some(&top) = held.borrow().last() {
                assert!(
                    rank > top,
                    "serve lock-order inversion: acquiring {rank:?} while holding {top:?} \
                     (global order: Writer < Queue < Published < Cache < Slot)"
                );
            }
        });
    }

    pub(super) fn push(rank: LockRank) {
        HELD.with(|held| held.borrow_mut().push(rank));
    }

    /// Guards can drop out of stack order; remove the *last* matching
    /// entry.
    pub(super) fn pop(rank: LockRank) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&r| r == rank) {
                held.remove(pos);
            }
        });
    }
}

/// Release-build half: all no-ops, inlined to nothing.
#[cfg(not(debug_assertions))]
mod lock_order {
    use super::LockRank;
    #[inline(always)]
    pub(super) fn check(_: LockRank) {}
    #[inline(always)]
    pub(super) fn push(_: LockRank) {}
    #[inline(always)]
    pub(super) fn pop(_: LockRank) {}
}

/// A [`MutexGuard`] that pops its rank off the thread's acquisition stack
/// on drop (debug builds; free in release).
struct RankedGuard<'a, T> {
    guard: MutexGuard<'a, T>,
    rank: LockRank,
}

impl<T> Deref for RankedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for RankedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> Drop for RankedGuard<'_, T> {
    fn drop(&mut self) {
        lock_order::pop(self.rank);
    }
}

/// Locks `m` at `rank`, recovering the guard if a previous holder
/// panicked. The serving layer's invariants are restored by the writer's
/// per-round savepoint rollback, not by lock poisoning — a poisoned lock
/// here means "a round failed", which the drain already handled (or is
/// about to), so propagating the poison would only wedge innocent later
/// callers. In debug builds the rank feeds the lock-order detector
/// ([`LockRank`]); an out-of-order acquisition panics before it can
/// block.
fn relock<'a, T>(m: &'a Mutex<T>, rank: LockRank) -> RankedGuard<'a, T> {
    lock_order::check(rank);
    let guard = m.lock().unwrap_or_else(PoisonError::into_inner);
    lock_order::push(rank);
    RankedGuard { guard, rank }
}

/// Priority class of a serving-side optimization request; indexes
/// [`ServeConfig::class_budgets`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PriorityClass {
    /// Latency-critical: tightest budget, first to degrade to a certified
    /// partial optimization.
    Interactive = 0,
    /// The default class.
    Standard = 1,
    /// Throughput-oriented: typically unbudgeted (run to convergence).
    Batch = 2,
}

/// Configuration of an [`MqoService`].
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Strategy used by [`MqoService::run`] and by the materialization
    /// cache to seed candidates. Defaults to [`Strategy::MarginalGreedy`].
    pub strategy: Strategy,
    /// Re-baseline the batch after any round that leaves
    /// [`OptimizedBatch::history_len`] above this. Defaults to
    /// `usize::MAX` (never compact).
    pub history_watermark: usize,
    /// Capacity of the materialization cache. Defaults to 0 (disabled):
    /// plain admission then skips the strategy run and oracle scoring the
    /// cache refresh costs.
    pub cache_capacity: usize,
    /// Optional per-[`PriorityClass`] optimization budget, indexed by the
    /// class discriminant. [`MqoService::run_class`] caps
    /// [`MqoConfig::time_budget`] with the class's entry (taking the
    /// minimum when the session already sets one); `None` leaves the
    /// session's budget untouched. Defaults to all-`None`.
    pub class_budgets: [Option<Duration>; 3],
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            strategy: Strategy::MarginalGreedy,
            history_watermark: usize::MAX,
            cache_capacity: 0,
            class_budgets: [None; 3],
        }
    }
}

/// Point-in-time counters of a service; see [`MqoService::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Optimization rounds the writer ran (one per queue drain, however
    /// many submissions it coalesced).
    pub rounds: u64,
    /// Queries admitted.
    pub admitted: u64,
    /// Admissions that rode along in a round another submitter drove
    /// (i.e. `admitted − coalesced` submitters became the writer).
    pub coalesced: u64,
    /// Queries retired.
    pub retired: u64,
    /// Re-baselining compactions triggered by the history watermark.
    pub compactions: u64,
    /// Materialization-cache entries evicted (benefit-driven or
    /// universe-departure).
    pub evictions: u64,
    /// Admission rounds (or publish phases) that panicked, were rolled
    /// back to their entry savepoint, and failed their submitters with
    /// [`MqoError::RoundFailed`].
    pub failed_rounds: u64,
    /// Plans rejected by pre-admission validation
    /// ([`MqoError::InvalidPlan`]); never queued, never part of a round.
    pub rejected: u64,
}

struct Counters {
    rounds: AtomicU64,
    admitted: AtomicU64,
    coalesced: AtomicU64,
    retired: AtomicU64,
    compactions: AtomicU64,
    evictions: AtomicU64,
    failed_rounds: AtomicU64,
    rejected: AtomicU64,
}

/// A queued admission: the plan plus the slot the draining writer fills
/// with the issued ticket — or with the typed error of the round that
/// failed it.
struct PendingSubmit {
    plan: PlanNode,
    slot: Arc<Mutex<Option<Result<QueryTicket, MqoError>>>>,
}

/// One retained materialization: the structural fingerprint of its
/// shareable group (stable across evolution commits) and its last
/// leave-one-out benefit under the `bestCost` oracle.
struct MatEntry {
    fingerprint: u64,
    score: f64,
}

/// A shared, concurrent MQO service over one evolvable batch; see the
/// module docs for the protocol and the fault-tolerance contract.
/// `&self`-driven throughout — share it by reference across scoped
/// threads (it is `Sync`), no internal `Arc` required.
pub struct MqoService {
    /// The single writer: the batch editor plus its cost model and config.
    core: Mutex<OptimizedBatch>,
    /// The admission queue; drained in rounds by whichever submitter holds
    /// the writer lock.
    pending: Mutex<Vec<PendingSubmit>>,
    /// The latest published snapshot; replaced (never mutated) on every
    /// commit, before the writer lock is released.
    published: Mutex<Arc<EngineState>>,
    /// The materialization cache (empty when disabled).
    cache: Mutex<Vec<MatEntry>>,
    /// Lock-free validation snapshot of the session's context; consulted
    /// by every submission before it may enter the queue.
    validator: PlanValidator,
    config: ServeConfig,
    /// Copy of the session's [`MqoConfig`], so readers spin up engine
    /// handles without touching the writer lock.
    mqo_config: MqoConfig,
    counters: Counters,
}

impl MqoService {
    /// Wraps `batch`; called by [`OptimizedBatch::serve_with`]. Publishes
    /// the initial snapshot eagerly so readers never wait on a first
    /// compile.
    pub(crate) fn new(batch: OptimizedBatch, config: ServeConfig) -> Self {
        let mqo_config = batch.config();
        let validator = PlanValidator::new(batch.batch().memo().ctx());
        let published = batch.snapshot();
        MqoService {
            core: Mutex::new(batch),
            pending: Mutex::new(Vec::new()),
            published: Mutex::new(published),
            cache: Mutex::new(Vec::new()),
            validator,
            config,
            mqo_config,
            counters: Counters {
                rounds: AtomicU64::new(0),
                admitted: AtomicU64::new(0),
                coalesced: AtomicU64::new(0),
                retired: AtomicU64::new(0),
                compactions: AtomicU64::new(0),
                evictions: AtomicU64::new(0),
                failed_rounds: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
            },
        }
    }

    // -------------------------------------------------------------------
    // Readers: never block the writer.
    // -------------------------------------------------------------------

    /// The latest published snapshot — one `Arc` clone, regardless of what
    /// the writer is doing. Everything reachable from it is immutable;
    /// optimize against it with [`EngineState::run`] or spin up a
    /// per-caller engine handle with [`EngineState::engine`].
    pub fn snapshot(&self) -> Arc<EngineState> {
        Arc::clone(&relock(&self.published, LockRank::Published))
    }

    /// Optimizes the latest snapshot with the configured strategy.
    pub fn run(&self) -> RunReport {
        self.snapshot().run(self.config.strategy, self.mqo_config)
    }

    /// Optimizes the latest snapshot with an explicit strategy.
    pub fn run_with(&self, strategy: Strategy) -> RunReport {
        self.snapshot().run(strategy, self.mqo_config)
    }

    /// Optimizes the latest snapshot with the configured strategy under
    /// `class`'s deadline budget ([`ServeConfig::class_budgets`]). With a
    /// budget set, the greedy run stops at the deadline and the report's
    /// [`RunReport::gap_certificate`] bounds what the truncation may have
    /// cost; without one this is [`MqoService::run`].
    pub fn run_class(&self, class: PriorityClass) -> RunReport {
        let mut config = self.mqo_config;
        if let Some(budget) = self.config.class_budgets[class as usize] {
            config.time_budget = Some(match config.time_budget {
                Some(session) => session.min(budget),
                None => budget,
            });
        }
        self.snapshot().run(self.config.strategy, config)
    }

    /// The service configuration.
    pub fn config(&self) -> ServeConfig {
        self.config
    }

    /// Point-in-time counters (relaxed loads; exact once the writer is
    /// quiescent).
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            rounds: self.counters.rounds.load(Ordering::Relaxed),
            admitted: self.counters.admitted.load(Ordering::Relaxed),
            coalesced: self.counters.coalesced.load(Ordering::Relaxed),
            retired: self.counters.retired.load(Ordering::Relaxed),
            compactions: self.counters.compactions.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            failed_rounds: self.counters.failed_rounds.load(Ordering::Relaxed),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
        }
    }

    /// Structural fingerprints of the currently cached materializations,
    /// in descending benefit order.
    pub fn cached_materializations(&self) -> Vec<u64> {
        relock(&self.cache, LockRank::Cache)
            .iter()
            .map(|e| e.fingerprint)
            .collect()
    }

    // -------------------------------------------------------------------
    // Writer-side: admission, retirement, maintenance.
    // -------------------------------------------------------------------

    /// Admits `plan` into the live batch and returns its ticket. Safe to
    /// call from any number of threads: submissions arriving while a
    /// round is in flight are coalesced into the next round (the
    /// in-flight writer admits them; this call just waits and picks its
    /// ticket up). On return, the published snapshot includes the query.
    ///
    /// # Panics
    /// If the plan fails pre-admission validation or its round failed;
    /// the fallible variant is [`MqoService::try_submit_query`].
    pub fn submit_query(&self, plan: PlanNode) -> QueryTicket {
        self.try_submit_query(plan)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`MqoService::submit_query`]: a malformed plan is rejected
    /// at the door as [`MqoError::InvalidPlan`] (before it can enter a
    /// round shared with healthy submitters), and a submission whose
    /// coalesced admission round panicked comes back as
    /// [`MqoError::RoundFailed`] — the batch was rolled back to the
    /// round's entry savepoint, the published snapshot is unchanged, and
    /// resubmitting is safe.
    ///
    /// ```
    /// # use mqo_catalog::{Catalog, TableBuilder};
    /// # use mqo_volcano::{DagContext, InstanceId, PlanNode};
    /// use mqo_core::{MqoError, Session};
    /// # let mut cat = Catalog::new();
    /// # cat.add_table(TableBuilder::new("t", 100.0).key_column("t_key", 4).primary_key(&["t_key"]).build());
    /// # let mut ctx = DagContext::new(cat);
    /// # let t = ctx.instance_by_name("t", 0);
    /// let service = Session::builder()
    ///     .context(ctx)
    ///     .query(PlanNode::scan(t))
    ///     .threads(1)
    ///     .build()
    ///     .serve();
    /// // Unknown table instance: rejected before any admission round.
    /// assert!(matches!(
    ///     service.try_submit_query(PlanNode::scan(InstanceId(99))),
    ///     Err(MqoError::InvalidPlan { .. })
    /// ));
    /// // A well-formed plan is admitted as usual.
    /// let ticket = service.try_submit_query(PlanNode::scan(t)).unwrap();
    /// assert!(service.tickets().contains(&ticket));
    /// ```
    pub fn try_submit_query(&self, plan: PlanNode) -> Result<QueryTicket, MqoError> {
        if let Err(fault) = self.validator.validate(&plan) {
            self.counters.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(MqoError::InvalidPlan { query: 0, fault });
        }
        let slot = Arc::new(Mutex::new(None));
        relock(&self.pending, LockRank::Queue).push(PendingSubmit {
            plan,
            slot: Arc::clone(&slot),
        });
        let mut core = relock(&self.core, LockRank::Writer);
        // A writer that beat us to the lock may have resolved us already.
        if let Some(r) = relock(&slot, LockRank::Slot).clone() {
            return r;
        }
        self.drain(&mut core);
        let r = relock(&slot, LockRank::Slot)
            .clone()
            .expect("draining writer resolves every queued slot");
        r
    }

    /// Retires the query behind `ticket` and publishes the shrunk
    /// snapshot (also draining any queued admissions).
    ///
    /// # Panics
    /// As [`OptimizedBatch::retire_query`]: retired/unknown tickets and
    /// the last live query are rejected. The fallible variant is
    /// [`MqoService::try_retire_query`].
    pub fn retire_query(&self, ticket: QueryTicket) {
        self.try_retire_query(ticket)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`MqoService::retire_query`]: an unknown or
    /// already-retired ticket, or one whose retirement would empty the
    /// batch, comes back as a typed error with the batch and published
    /// snapshot untouched.
    ///
    /// ```
    /// # use mqo_catalog::{Catalog, TableBuilder};
    /// # use mqo_volcano::{DagContext, PlanNode};
    /// use mqo_core::{MqoError, Session};
    /// # let mut cat = Catalog::new();
    /// # cat.add_table(TableBuilder::new("t", 100.0).key_column("t_key", 4).primary_key(&["t_key"]).build());
    /// # let mut ctx = DagContext::new(cat);
    /// # let t = ctx.instance_by_name("t", 0);
    /// let service = Session::builder()
    ///     .context(ctx)
    ///     .query(PlanNode::scan(t))
    ///     .threads(1)
    ///     .build()
    ///     .serve();
    /// let ticket = service.tickets()[0];
    /// // Retiring twice: the second call reports instead of panicking.
    /// let extra = service.submit_query(PlanNode::scan(t));
    /// service.retire_query(ticket);
    /// assert!(matches!(
    ///     service.try_retire_query(ticket),
    ///     Err(MqoError::TicketRetired(_))
    /// ));
    /// # let _ = extra;
    /// ```
    pub fn try_retire_query(&self, ticket: QueryTicket) -> Result<(), MqoError> {
        let mut core = relock(&self.core, LockRank::Writer);
        core.try_retire_query(ticket)?;
        self.counters.retired.fetch_add(1, Ordering::Relaxed);
        self.drain(&mut core);
        Ok(())
    }

    /// Snapshots the batch's evolution state for a later
    /// [`MqoService::rollback`] (what-if admission probes).
    pub fn savepoint(&self) -> BatchSavepoint {
        relock(&self.core, LockRank::Writer).savepoint()
    }

    /// Rewinds to `sp` and publishes the restored snapshot. Tickets issued
    /// since the savepoint are dead afterwards.
    ///
    /// # Panics
    /// If `sp` is stale; the fallible variant is
    /// [`MqoService::try_rollback`].
    pub fn rollback(&self, sp: BatchSavepoint) {
        self.try_rollback(sp).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`MqoService::rollback`]: a savepoint from another batch,
    /// or one the service already rolled back past (e.g. through a
    /// concurrent caller), is rejected as [`MqoError::StaleSavepoint`]
    /// with the batch and published snapshot untouched.
    ///
    /// ```
    /// # use mqo_catalog::{Catalog, TableBuilder};
    /// # use mqo_volcano::{DagContext, PlanNode};
    /// use mqo_core::{MqoError, Session};
    /// # let mut cat = Catalog::new();
    /// # cat.add_table(TableBuilder::new("t", 100.0).key_column("t_key", 4).primary_key(&["t_key"]).build());
    /// # let mut ctx = DagContext::new(cat);
    /// # let t = ctx.instance_by_name("t", 0);
    /// let service = Session::builder()
    ///     .context(ctx)
    ///     .query(PlanNode::scan(t))
    ///     .threads(1)
    ///     .build()
    ///     .serve();
    /// let outer = service.savepoint();
    /// let _extra = service.submit_query(PlanNode::scan(t));
    /// let inner = service.savepoint();
    /// service.rollback(outer); // rewinds past `inner`
    /// assert!(matches!(
    ///     service.try_rollback(inner),
    ///     Err(MqoError::StaleSavepoint)
    /// ));
    /// ```
    pub fn try_rollback(&self, sp: BatchSavepoint) -> Result<(), MqoError> {
        let mut core = relock(&self.core, LockRank::Writer);
        core.try_rollback(sp)?;
        self.drain(&mut core);
        Ok(())
    }

    /// Tickets of the currently live queries, in admission order.
    pub fn tickets(&self) -> Vec<QueryTicket> {
        relock(&self.core, LockRank::Writer).tickets()
    }

    /// Current evolution-history size; see [`OptimizedBatch::history_len`].
    pub fn history_len(&self) -> usize {
        relock(&self.core, LockRank::Writer).history_len()
    }

    /// Shuts the service down and hands the batch back, admitting any
    /// still-queued plans first. (With scoped reader/writer threads joined
    /// the queue is empty and this is free.)
    pub fn finish(self) -> OptimizedBatch {
        let mut core = self
            .core
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        let pending = self
            .pending
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        for p in pending {
            let t = core.add_query(p.plan);
            *relock(&p.slot, LockRank::Slot) = Some(Ok(t));
        }
        core
    }

    /// Drains the admission queue in rounds, then compacts, snapshots,
    /// refreshes the cache, and publishes. Caller holds the writer lock.
    ///
    /// Containment protocol: each round is bracketed by a batch savepoint
    /// and `catch_unwind` — a panicking round is rolled back and fails
    /// only its own submitters ([`MqoError::RoundFailed`]); later rounds
    /// and the publish continue. The publish phase (compaction, snapshot
    /// compile, cache refresh) is bracketed the same way against the
    /// drain-entry savepoint: if *it* panics, every admission of this
    /// drain is rolled back and failed, the cache is dropped (it may be
    /// mid-update), and the previously published snapshot stays live —
    /// so a published snapshot always reflects a fully committed state.
    fn drain(&self, core: &mut OptimizedBatch) {
        // Chaos-test site: fires while the writer lock is held and before
        // any mutation, so the panic escapes through the caller and
        // poisons the writer lock itself (which `relock` must absorb).
        fault::hit(FaultSite::ServeRound);
        let entry_sp = core.savepoint();
        // Successful admissions, resolved only after a successful publish:
        // a submitter must never see Ok for a query the published snapshot
        // will not contain.
        let mut fills: Vec<(PendingSubmit, QueryTicket)> = Vec::new();
        loop {
            let round = std::mem::take(&mut *relock(&self.pending, LockRank::Queue));
            if round.is_empty() {
                break;
            }
            self.counters.rounds.fetch_add(1, Ordering::Relaxed);
            self.counters
                .coalesced
                .fetch_add(round.len() as u64 - 1, Ordering::Relaxed);
            let sp = core.savepoint();
            let tickets = catch_unwind(AssertUnwindSafe(|| {
                round
                    .iter()
                    .map(|p| core.add_query(p.plan.clone()))
                    .collect::<Vec<_>>()
            }));
            match tickets {
                Ok(tickets) => {
                    self.counters
                        .admitted
                        .fetch_add(tickets.len() as u64, Ordering::Relaxed);
                    fills.extend(round.into_iter().zip(tickets));
                }
                Err(_) => {
                    self.counters.failed_rounds.fetch_add(1, Ordering::Relaxed);
                    core.rollback(sp);
                    for p in &round {
                        *relock(&p.slot, LockRank::Slot) = Some(Err(MqoError::RoundFailed));
                    }
                }
            }
        }
        let published = catch_unwind(AssertUnwindSafe(|| {
            if core.history_len() > self.config.history_watermark {
                core.compact_history();
                self.counters.compactions.fetch_add(1, Ordering::Relaxed);
            }
            let state = core.snapshot();
            if self.config.cache_capacity > 0 {
                self.refresh_cache(core, &state);
            }
            state
        }));
        match published {
            Ok(state) => {
                // Publish before resolving slots (and before releasing the
                // writer lock): a submitter whose slot resolves Ok cannot
                // wake up to a snapshot older than its own admission.
                *relock(&self.published, LockRank::Published) = state;
                for (p, t) in fills {
                    *relock(&p.slot, LockRank::Slot) = Some(Ok(t));
                }
            }
            Err(_) => {
                // The publish phase itself blew up (e.g. the oracle
                // panicked scoring the cache): roll every admission of
                // this drain back and fail its submitters — the batch
                // returns to the drain-entry state and the previously
                // published snapshot stays live. The cache may have been
                // mid-update when the panic hit; it is only a cache, so
                // drop it rather than trust it.
                self.counters.failed_rounds.fetch_add(1, Ordering::Relaxed);
                core.rollback(entry_sp);
                relock(&self.cache, LockRank::Cache).clear();
                for (p, _) in fills {
                    *relock(&p.slot, LockRank::Slot) = Some(Err(MqoError::RoundFailed));
                }
            }
        }
    }

    /// Refreshes the materialization cache against the new commit: drops
    /// entries whose group left the universe, folds in the configured
    /// strategy's chosen set, re-scores every entry by its leave-one-out
    /// benefit `bc(C∖{e}) − bc(C)`, and evicts non-positive scores plus
    /// the smallest scores past capacity.
    fn refresh_cache(&self, core: &OptimizedBatch, state: &Arc<EngineState>) {
        let fps = core.batch().shareable_fingerprints();
        let elem_of_fp: HashMap<u64, usize> =
            fps.iter().enumerate().map(|(i, &f)| (f, i)).collect();
        let report = state.run(self.config.strategy, self.mqo_config);

        let mut cache = relock(&self.cache, LockRank::Cache);
        cache.retain(|e| elem_of_fp.contains_key(&e.fingerprint));
        for &g in &report.materialized {
            let e = core
                .batch()
                .shareable_index(g)
                .expect("chosen materialization is a universe element");
            let fp = fps[e];
            if !cache.iter().any(|c| c.fingerprint == fp) {
                cache.push(MatEntry {
                    fingerprint: fp,
                    score: 0.0,
                });
            }
        }
        let candidates = cache.len();
        if candidates == 0 {
            return;
        }

        let elems: Vec<usize> = cache.iter().map(|c| elem_of_fp[&c.fingerprint]).collect();
        let mut set = BitSet::empty(state.universe_size());
        for &e in &elems {
            set.insert(e);
        }
        let mut engine = state.engine(self.mqo_config);
        let full = engine.bc(&set);
        let leave_one_out: Vec<BitSet> = elems
            .iter()
            .map(|&e| {
                let mut s = set.clone();
                s.remove(e);
                s
            })
            .collect();
        let without = engine.bc_many(&leave_one_out);
        for (entry, w) in cache.iter_mut().zip(&without) {
            entry.score = w - full;
        }
        cache.retain(|e| e.score > 0.0);
        cache.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then(a.fingerprint.cmp(&b.fingerprint))
        });
        cache.truncate(self.config.cache_capacity);
        self.counters
            .evictions
            .fetch_add((candidates - cache.len()) as u64, Ordering::Relaxed);
    }
}

/// The lock-order detector's own contract tests; the full-service
/// exercises (where the detector must stay *silent* under concurrent
/// chaos) are the serve-stress and fault-injection suites.
#[cfg(all(test, debug_assertions))]
mod lock_order_tests {
    use super::*;

    #[test]
    fn ordered_acquisition_is_silent() {
        let writer = Mutex::new(0);
        let queue = Mutex::new(0);
        let cache = Mutex::new(0);
        let _w = relock(&writer, LockRank::Writer);
        let _q = relock(&queue, LockRank::Queue);
        let _c = relock(&cache, LockRank::Cache);
    }

    #[test]
    #[should_panic(expected = "serve lock-order inversion")]
    fn inverted_acquisition_panics() {
        let cache = Mutex::new(0);
        let writer = Mutex::new(0);
        let _c = relock(&cache, LockRank::Cache);
        let _w = relock(&writer, LockRank::Writer);
    }

    #[test]
    #[should_panic(expected = "serve lock-order inversion")]
    fn same_rank_reacquisition_panics() {
        // Two distinct mutexes at the same rank: still an inversion (the
        // order is strict), catching self-deadlock-shaped protocols.
        let a = Mutex::new(0);
        let b = Mutex::new(0);
        let _x = relock(&a, LockRank::Queue);
        let _y = relock(&b, LockRank::Queue);
    }

    #[test]
    fn release_unwinds_the_stack() {
        let cache = Mutex::new(0);
        let writer = Mutex::new(0);
        {
            let _c = relock(&cache, LockRank::Cache);
        }
        // Cache released: taking the writer afterwards is in-order.
        let _w = relock(&writer, LockRank::Writer);
    }

    #[test]
    fn out_of_order_drop_pops_the_right_rank() {
        let writer = Mutex::new(0);
        let queue = Mutex::new(0);
        let published = Mutex::new(0);
        let w = relock(&writer, LockRank::Writer);
        let q = relock(&queue, LockRank::Queue);
        drop(w); // drops a non-top rank: Writer sat below Queue
                 // Queue is still held (now the top): Published is in-order, and
                 // the stack did not mistakenly lose Queue when Writer left.
        let _p = relock(&published, LockRank::Published);
        drop(q);
    }

    #[test]
    fn detector_survives_an_absorbed_panic() {
        // A panic while holding a ranked guard (the poisoning scenario the
        // chaos suites inject) must unwind the stack record too, or every
        // later acquisition on this thread would falsely invert.
        let writer = Mutex::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let _w = relock(&writer, LockRank::Writer);
            panic!("poison the writer lock");
        }));
        assert!(caught.is_err());
        // Stack is clean and the poison is absorbed.
        let _w = relock(&writer, LockRank::Writer);
    }
}
