//! Optimization strategies and run reports: the algorithms the paper's
//! experiments compare (stand-alone Volcano, Greedy of Roy et al.,
//! MarginalGreedy, and their lazy accelerations), plus the
//! materialize-everything baseline of Silva et al. \[26].
//!
//! The entry point is the `Session` API
//! ([`crate::session::OptimizedBatch::run`] /
//! [`crate::session::OptimizedBatch::run_all`]); the free functions
//! `optimize` / `optimize_with` / `compare` of earlier versions are gone
//! (see the README migration guide).

use std::time::{Duration, Instant};

use mqo_submod::algorithms::cardinality::{cardinality_marginal_greedy, universe_reduction};
use mqo_submod::algorithms::greedy::{self as greedy_mod, Config as GreedyConfig};
use mqo_submod::algorithms::lazy::lazy_marginal_greedy;
use mqo_submod::algorithms::marginal_greedy::{marginal_greedy, Config as MarginalConfig};
use mqo_submod::algorithms::Outcome;
use mqo_submod::bitset::BitSet;
use mqo_submod::decompose::Decomposition;
use mqo_submod::function::SetFunction;
use mqo_volcano::memo::GroupId;

use crate::benefit::MbFunction;
use crate::config::{DecompositionKind, MqoConfig};
use crate::consolidated::ConsolidatedPlan;
use crate::engine::EngineState;

/// The optimization strategies of the experimental section.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Stand-alone Volcano: no materialization (`S = ∅`).
    Volcano,
    /// Algorithm 1 (Roy et al.): pick the node minimizing `bc(X ∪ {x})`
    /// while it improves.
    Greedy,
    /// Algorithm 1 with the Minoux-style heap (Pyro's "monotonicity
    /// heuristic" acceleration).
    LazyGreedy,
    /// Algorithm 2 with the canonical decomposition (this paper).
    MarginalGreedy,
    /// Algorithm 2 with the Section 5.2 heap acceleration.
    LazyMarginalGreedy,
    /// Materialize every shareable node (the heuristic of Silva et al.
    /// \[26]; "horribly inefficient" when costs outweigh benefits).
    MaterializeAll,
    /// MarginalGreedy under a cardinality constraint (Section 5.3), with or
    /// without the Theorem 4 universe reduction.
    CardinalityMarginalGreedy { k: usize, reduce_universe: bool },
    /// MarginalGreedy followed by a removal cleanup pass — an *extension*
    /// beyond the paper that quantifies how far the workload's benefit
    /// function deviates from the submodularity assumption (a no-op when
    /// the assumption holds).
    MarginalGreedyCleanup,
    /// Exhaustive search over all 2^n materialization sets — the ground
    /// truth the paper calls untenable in general (O(n^n) with plan
    /// enumeration; 2^n bc calls here thanks to the bc oracle). Only
    /// usable on small universes; `run` panics above 20 shareable nodes.
    Exhaustive,
}

impl Strategy {
    /// Display name used in reports and tables.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Volcano => "Volcano",
            Strategy::Greedy => "Greedy",
            Strategy::LazyGreedy => "LazyGreedy",
            Strategy::MarginalGreedy => "MarginalGreedy",
            Strategy::LazyMarginalGreedy => "LazyMarginalGreedy",
            Strategy::MaterializeAll => "MaterializeAll",
            Strategy::CardinalityMarginalGreedy { .. } => "CardinalityMarginalGreedy",
            Strategy::MarginalGreedyCleanup => "MarginalGreedy+Cleanup",
            Strategy::Exhaustive => "Exhaustive",
        }
    }
}

/// A certified bound on how much an anytime (deadline- or floor-cut)
/// greedy run may have left on the table, derived from the run's observed
/// marginals under the monotonicity heuristic: stale marginals are upper
/// bounds when the benefit function is submodular, so
/// `achieved benefit + Σ max(0, m̂(e))` over unpicked candidates bounds the
/// best achievable benefit, and `bc(∅) − that bound` lower-bounds the best
/// achievable consolidated cost. On workloads that violate the
/// submodularity assumption the bound inherits the heuristic's caveat —
/// like the lazy variants' correctness, it is exact whenever they are.
#[derive(Clone, Copy, Debug)]
pub struct GapCertificate {
    /// Upper bound on the best achievable benefit `mb(S*)` over the ranked
    /// candidate set: achieved value plus certified headroom. `+∞` when
    /// the run stopped before observing every candidate at least once
    /// (the certificate is then vacuous, never wrong).
    pub benefit_bound: f64,
    /// `bc(∅) − benefit_bound`: lower bound on the best achievable
    /// consolidated cost. Can be ≤ 0 when the benefit bound is loose (the
    /// ratio is then reported as `+∞`).
    pub cost_lower_bound: f64,
    /// `total_cost / cost_lower_bound`: the certified approximation ratio
    /// of the returned plan — the plan is within this factor of the best
    /// plan any materialization choice could reach. `1.0` means certified
    /// optimal (over the candidate set, under the heuristic); `+∞` means
    /// the certificate is vacuous.
    pub ratio: f64,
    /// Whether the run actually stopped early (deadline or benefit floor).
    /// When `false` the certificate reflects a converged run: the headroom
    /// is whatever the stopping rule left (non-positive marginals only).
    pub truncated: bool,
}

/// The outcome of optimizing one batch with one strategy.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Strategy display name.
    pub strategy: String,
    /// `bc(S)` of the chosen set: the consolidated plan cost.
    pub total_cost: f64,
    /// `bc(∅)`: the stand-alone Volcano cost.
    pub volcano_cost: f64,
    /// `mb(S) = bc(∅) − bc(S)`.
    pub benefit: f64,
    /// The materialized equivalence nodes.
    pub materialized: Vec<GroupId>,
    /// The extracted consolidated physical plan: every materialization's
    /// production plan plus one plan per query, read straight off the
    /// compiled engine's arenas.
    pub plan: ConsolidatedPlan,
    /// Node-selection wall-clock time (the Figure 4c / 5c metric; plan
    /// extraction is excluded, as in the paper's measurements).
    pub opt_time: Duration,
    /// Plan-extraction wall-clock time (the `extract` bench series).
    pub extract_time: Duration,
    /// Number of `bc` oracle invocations.
    pub bc_calls: u64,
    /// Shareable-universe size.
    pub universe: usize,
    /// Candidate-universe size the strategy actually ranked, after the
    /// optional Theorem 4 universe-reduction pre-pass
    /// ([`MqoConfig::universe_reduction`]); equals `universe` when the
    /// pre-pass is off, pruned nothing, or does not apply to the strategy.
    pub candidates: usize,
    /// Certified optimality gap of the greedy run (the four greedy
    /// strategies only; `None` for Volcano, MaterializeAll, the
    /// cardinality/cleanup variants, and Exhaustive). Always present for
    /// those strategies, not just truncated runs — a converged run simply
    /// certifies a tight (often `1.0`-ish) ratio.
    pub gap_certificate: Option<GapCertificate>,
}

impl RunReport {
    /// Percentage improvement over stand-alone Volcano.
    pub fn improvement_pct(&self) -> f64 {
        if self.volcano_cost <= 0.0 {
            0.0
        } else {
            100.0 * (self.volcano_cost - self.total_cost) / self.volcano_cost
        }
    }
}

/// Resolves the decomposition `f = f_M − c` the ratio-ranked strategy
/// family uses under this configuration.
fn decomposition_for(mb: &MbFunction, config: &MqoConfig) -> Decomposition {
    match config.decomposition {
        DecompositionKind::Canonical => mb.canonical_decomposition(),
        DecompositionKind::MaterializationCost => {
            Decomposition::from_costs(mb.materialization_costs())
        }
    }
}

/// Applies the Theorem 4 universe-reduction pre-pass when the
/// configuration asks for it, returning the candidate set a ratio-ranked
/// greedy should run on. The cardinality bound is
/// [`MqoConfig::max_materializations`]; without one the reduction is
/// provably vacuous (`k = n` short-circuits) and the full universe comes
/// back untouched.
fn reduced_candidates(
    mb: &MbFunction,
    decomp: &Decomposition,
    full: &BitSet,
    config: &MqoConfig,
) -> BitSet {
    if !config.universe_reduction {
        return full.clone();
    }
    let k = config.max_materializations.unwrap_or(full.len());
    universe_reduction(mb, decomp, full, k).kept
}

impl EngineState {
    /// Optimizes the snapshot with one strategy under an explicit
    /// configuration — the reader-side entry point: any number of callers
    /// can `run` concurrently against the same snapshot, each through its
    /// own per-caller engine handle, without blocking a writer evolving
    /// the batch this snapshot came from.
    pub fn run(&self, strategy: Strategy, config: MqoConfig) -> RunReport {
        run_strategy(self, strategy, config)
    }
}

/// Optimizes a committed snapshot with one strategy under an explicit
/// configuration: the node-selection phase (timed as `opt_time`), then
/// consolidated-plan extraction off the same engine handle (timed as
/// `extract_time`). The greedy strategies route each round's candidates
/// through the batched oracle, so `config.threads > 1` shards their
/// evaluation with no change in the chosen set or costs. The per-run
/// engine handle spins up from the snapshot's shared arenas (no
/// recompilation).
pub(crate) fn run_strategy(
    state: &EngineState,
    strategy: Strategy,
    config: MqoConfig,
) -> RunReport {
    // mqo-lint: allow(wall-clock) -- the anytime-budget anchor (`deadline = start + time_budget`) and the paper's opt_time metric
    let start = Instant::now();
    let engine = state.engine(config);
    let mb = MbFunction::new(engine);
    let n = mb.universe();
    let full = BitSet::full(n);

    // The cardinality cap threads into every greedy variant; the
    // universe-reduction pre-pass applies to the ratio-ranked (marginal)
    // family, where Theorem 4 proves it output-preserving.
    // Anytime controls: the deadline is anchored at the start of node
    // selection, so `time_budget` bounds the greedy rounds themselves.
    let deadline = config.time_budget.map(|b| start + b);
    let greedy_cfg = GreedyConfig {
        max_picks: config.max_materializations,
        deadline,
        benefit_floor: config.marginal_floor,
    };
    let marginal_cfg = MarginalConfig {
        max_picks: config.max_materializations,
        deadline,
        benefit_floor: config.marginal_floor,
        ..Default::default()
    };
    let mut candidates = n;
    // The four greedy strategies keep their full `Outcome` so the gap
    // certificate below can read the achieved value and the certified
    // headroom.
    let mut anytime: Option<Outcome> = None;
    let mut keep = |out: Outcome| -> BitSet {
        let set = out.set.clone();
        anytime = Some(out);
        set
    };
    let chosen: BitSet = match strategy {
        Strategy::Volcano => BitSet::empty(n),
        Strategy::Greedy => keep(greedy_mod::greedy(&mb, &full, greedy_cfg)),
        Strategy::LazyGreedy => keep(greedy_mod::lazy_greedy(&mb, &full, greedy_cfg)),
        Strategy::MarginalGreedy => {
            let decomp = decomposition_for(&mb, &config);
            let cands = reduced_candidates(&mb, &decomp, &full, &config);
            candidates = cands.len();
            keep(marginal_greedy(&mb, &decomp, &cands, marginal_cfg))
        }
        Strategy::LazyMarginalGreedy => {
            let decomp = decomposition_for(&mb, &config);
            let cands = reduced_candidates(&mb, &decomp, &full, &config);
            candidates = cands.len();
            keep(lazy_marginal_greedy(&mb, &decomp, &cands, marginal_cfg))
        }
        Strategy::MaterializeAll => full.clone(),
        Strategy::CardinalityMarginalGreedy { k, reduce_universe } => {
            let decomp = decomposition_for(&mb, &config);
            let reduce = reduce_universe || config.universe_reduction;
            cardinality_marginal_greedy(&mb, &decomp, &full, k, reduce).set
        }
        Strategy::MarginalGreedyCleanup => {
            let decomp = decomposition_for(&mb, &config);
            let cands = reduced_candidates(&mb, &decomp, &full, &config);
            candidates = cands.len();
            let out = marginal_greedy(&mb, &decomp, &cands, marginal_cfg);
            mqo_submod::algorithms::cleanup::cleanup(&mb, &out.set).set
        }
        Strategy::Exhaustive => {
            assert!(
                n <= 20,
                "exhaustive MQO is limited to 20 shareable nodes (got {n})"
            );
            mqo_submod::algorithms::exhaustive::exhaustive_max(&mb, &full).0
        }
    };

    let total_cost = mb.bc(&chosen);
    let volcano_cost = mb.bc_empty();
    let bc_calls = mb.bc_calls();
    let opt_time = start.elapsed();

    let gap_certificate = anytime.map(|out| {
        let benefit_bound = out.value + out.remaining_bound;
        let cost_lower_bound = volcano_cost - benefit_bound;
        let ratio = if cost_lower_bound > 0.0 {
            total_cost / cost_lower_bound
        } else {
            f64::INFINITY
        };
        GapCertificate {
            benefit_bound,
            cost_lower_bound,
            ratio,
            truncated: out.truncated,
        }
    });

    // mqo-lint: allow(wall-clock) -- measures the reported extract_time metric; never feeds back into optimization
    let extract_start = Instant::now();
    let engine = mb.into_engine();
    let plan = ConsolidatedPlan::extract_with_engine(state.query_roots_dense(), &engine, &chosen);
    let extract_time = extract_start.elapsed();

    let materialized: Vec<GroupId> = chosen.iter().map(|e| state.shareable()[e]).collect();
    RunReport {
        strategy: strategy.name().to_string(),
        total_cost,
        volcano_cost,
        benefit: volcano_cost - total_cost,
        materialized,
        plan,
        opt_time,
        extract_time,
        bc_calls,
        universe: n,
        candidates,
        gap_certificate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{OptimizedBatch, Session};
    use mqo_catalog::{Catalog, TableBuilder};
    use mqo_volcano::cost::DiskCostModel;
    use mqo_volcano::rules::RuleSet;
    use mqo_volcano::{Constraint, DagContext, PlanNode, Predicate};

    fn session() -> OptimizedBatch {
        let mut cat = Catalog::new();
        for (name, rows) in [
            ("a", 50_000.0),
            ("b", 100_000.0),
            ("c", 25_000.0),
            ("d", 10_000.0),
        ] {
            cat.add_table(
                TableBuilder::new(name, rows)
                    .key_column(format!("{name}_key"), 4)
                    .column(
                        format!("{name}_fk"),
                        rows / 50.0,
                        (0, (rows as i64) / 50 - 1),
                        4,
                    )
                    .column(format!("{name}_x"), 100.0, (0, 99), 8)
                    .primary_key(&[&format!("{name}_key")])
                    .build(),
            );
        }
        let mut ctx = DagContext::new(cat);
        let a = ctx.instance_by_name("a", 0);
        let b = ctx.instance_by_name("b", 0);
        let c = ctx.instance_by_name("c", 0);
        let d = ctx.instance_by_name("d", 0);
        let p_ab = Predicate::join(ctx.col(a, "a_key"), ctx.col(b, "b_fk"));
        let p_bc = Predicate::join(ctx.col(b, "b_key"), ctx.col(c, "c_fk"));
        let p_bd = Predicate::join(ctx.col(b, "b_key"), ctx.col(d, "d_fk"));
        let sel = Predicate::on(ctx.col(b, "b_x"), Constraint::eq(7));
        let q1 = PlanNode::scan(a).join(PlanNode::scan(b).select(sel.clone()), p_ab);
        let q2 = PlanNode::scan(b)
            .select(sel.clone())
            .join(PlanNode::scan(c), p_bc);
        let q3 = PlanNode::scan(b).select(sel).join(PlanNode::scan(d), p_bd);
        Session::builder()
            .context(ctx)
            .queries([q1, q2, q3])
            .cost_model(DiskCostModel::paper())
            .rules(RuleSet::default())
            .build()
    }

    #[test]
    fn all_mqo_strategies_beat_or_match_volcano() {
        let s = session();
        for strat in [
            Strategy::Greedy,
            Strategy::LazyGreedy,
            Strategy::MarginalGreedy,
            Strategy::LazyMarginalGreedy,
        ] {
            let r = s.run(strat);
            assert!(
                r.total_cost <= r.volcano_cost + 1e-6,
                "{}: {} > volcano {}",
                r.strategy,
                r.total_cost,
                r.volcano_cost
            );
            assert!(r.benefit >= -1e-6);
        }
    }

    #[test]
    fn sharing_strictly_helps_on_this_batch() {
        let s = session();
        let greedy = s.run(Strategy::Greedy);
        assert!(
            greedy.benefit > 0.0,
            "three queries share σ(b); materialization must pay off"
        );
        assert!(!greedy.materialized.is_empty());
    }

    #[test]
    fn lazy_variants_match_eager() {
        let s = session();
        let eager_g = s.run(Strategy::Greedy);
        let lazy_g = s.run(Strategy::LazyGreedy);
        assert_eq!(eager_g.materialized, lazy_g.materialized);
        let eager_m = s.run(Strategy::MarginalGreedy);
        let lazy_m = s.run(Strategy::LazyMarginalGreedy);
        assert_eq!(eager_m.materialized, lazy_m.materialized);
    }

    #[test]
    fn volcano_report_is_baseline() {
        let s = session();
        let r = s.run(Strategy::Volcano);
        assert_eq!(r.total_cost, r.volcano_cost);
        assert_eq!(r.benefit, 0.0);
        assert!(r.materialized.is_empty());
        assert!(r.plan.materializations.is_empty());
        assert_eq!(r.plan.query_plans.len(), 3);
        assert_eq!(r.improvement_pct(), 0.0);
    }

    #[test]
    fn reports_carry_the_extracted_plan() {
        let s = session();
        let r = s.run(Strategy::Greedy);
        assert_eq!(r.plan.materializations.len(), r.materialized.len());
        assert_eq!(r.plan.query_plans.len(), 3);
        assert!(
            (r.plan.total_cost - r.total_cost).abs() <= 1e-9 * (1.0 + r.total_cost),
            "plan total {} vs bc(S) {}",
            r.plan.total_cost,
            r.total_cost
        );
    }

    #[test]
    fn materialize_all_is_worse_than_greedy() {
        let s = session();
        let all = s.run(Strategy::MaterializeAll);
        let greedy = s.run(Strategy::Greedy);
        assert!(
            all.total_cost >= greedy.total_cost - 1e-6,
            "cost-blind materialize-everything must not beat greedy"
        );
    }

    #[test]
    fn cardinality_constraint_limits_materializations() {
        let s = session();
        let r = s.run(Strategy::CardinalityMarginalGreedy {
            k: 1,
            reduce_universe: false,
        });
        assert!(r.materialized.len() <= 1);
        let pruned = s.run(Strategy::CardinalityMarginalGreedy {
            k: 1,
            reduce_universe: true,
        });
        assert_eq!(r.materialized, pruned.materialized, "Theorem 4");
    }
}
