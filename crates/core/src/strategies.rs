//! Optimization strategies and run reports: the algorithms the paper's
//! experiments compare (stand-alone Volcano, Greedy of Roy et al.,
//! MarginalGreedy, and their lazy accelerations), plus the
//! materialize-everything baseline of Silva et al. [26].

use std::time::{Duration, Instant};

use mqo_submod::algorithms::cardinality::cardinality_marginal_greedy;
use mqo_submod::algorithms::greedy::{self as greedy_mod, Config as GreedyConfig};
use mqo_submod::algorithms::lazy::lazy_marginal_greedy;
use mqo_submod::algorithms::marginal_greedy::{marginal_greedy, Config as MarginalConfig};
use mqo_submod::bitset::BitSet;
use mqo_submod::function::SetFunction;
use mqo_volcano::cost::CostModel;
use mqo_volcano::memo::GroupId;

use crate::batch::BatchDag;
use crate::benefit::MbFunction;
use crate::engine::EngineConfig;

/// The optimization strategies of the experimental section.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Stand-alone Volcano: no materialization (`S = ∅`).
    Volcano,
    /// Algorithm 1 (Roy et al.): pick the node minimizing `bc(X ∪ {x})`
    /// while it improves.
    Greedy,
    /// Algorithm 1 with the Minoux-style heap (Pyro's "monotonicity
    /// heuristic" acceleration).
    LazyGreedy,
    /// Algorithm 2 with the canonical decomposition (this paper).
    MarginalGreedy,
    /// Algorithm 2 with the Section 5.2 heap acceleration.
    LazyMarginalGreedy,
    /// Materialize every shareable node (the heuristic of Silva et al.
    /// [26]; "horribly inefficient" when costs outweigh benefits).
    MaterializeAll,
    /// MarginalGreedy under a cardinality constraint (Section 5.3), with or
    /// without the Theorem 4 universe reduction.
    CardinalityMarginalGreedy { k: usize, reduce_universe: bool },
    /// MarginalGreedy followed by a removal cleanup pass — an *extension*
    /// beyond the paper that quantifies how far the workload's benefit
    /// function deviates from the submodularity assumption (a no-op when
    /// the assumption holds).
    MarginalGreedyCleanup,
    /// Exhaustive search over all 2^n materialization sets — the ground
    /// truth the paper calls untenable in general (O(n^n) with plan
    /// enumeration; 2^n bc calls here thanks to the bc oracle). Only
    /// usable on small universes; `optimize` panics above 20 shareable
    /// nodes.
    Exhaustive,
}

impl Strategy {
    /// Display name used in reports and tables.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Volcano => "Volcano",
            Strategy::Greedy => "Greedy",
            Strategy::LazyGreedy => "LazyGreedy",
            Strategy::MarginalGreedy => "MarginalGreedy",
            Strategy::LazyMarginalGreedy => "LazyMarginalGreedy",
            Strategy::MaterializeAll => "MaterializeAll",
            Strategy::CardinalityMarginalGreedy { .. } => "CardinalityMarginalGreedy",
            Strategy::MarginalGreedyCleanup => "MarginalGreedy+Cleanup",
            Strategy::Exhaustive => "Exhaustive",
        }
    }
}

/// The outcome of optimizing one batch with one strategy.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Strategy display name.
    pub strategy: String,
    /// `bc(S)` of the chosen set: the consolidated plan cost.
    pub total_cost: f64,
    /// `bc(∅)`: the stand-alone Volcano cost.
    pub volcano_cost: f64,
    /// `mb(S) = bc(∅) − bc(S)`.
    pub benefit: f64,
    /// The materialized equivalence nodes.
    pub materialized: Vec<GroupId>,
    /// Optimization wall-clock time (the Figure 4c / 5c metric).
    pub opt_time: Duration,
    /// Number of `bc` oracle invocations.
    pub bc_calls: u64,
    /// Shareable-universe size.
    pub universe: usize,
}

impl RunReport {
    /// Percentage improvement over stand-alone Volcano.
    pub fn improvement_pct(&self) -> f64 {
        if self.volcano_cost <= 0.0 {
            0.0
        } else {
            100.0 * (self.volcano_cost - self.total_cost) / self.volcano_cost
        }
    }
}

/// Optimizes a batch with the given strategy and cost model under the
/// default [`EngineConfig`] (which honors the `MQO_THREADS` environment
/// variable for sharded candidate evaluation).
pub fn optimize(batch: &BatchDag, cm: &dyn CostModel, strategy: Strategy) -> RunReport {
    optimize_with(batch, cm, strategy, EngineConfig::default())
}

/// Optimizes a batch with an explicit engine configuration (rebase
/// threshold, full-recomputation ablation, worker threads). The greedy
/// strategies route each round's candidates through the batched oracle,
/// so `config.threads > 1` shards their evaluation with no change in the
/// chosen set or costs. Engine compilation goes through the batch's shared
/// [`crate::engine::CompileCache`], so repeated strategies on one batch
/// reuse the topological view and the compile scratch.
pub fn optimize_with(
    batch: &BatchDag,
    cm: &dyn CostModel,
    strategy: Strategy,
    config: EngineConfig,
) -> RunReport {
    let start = Instant::now();
    let engine = batch.compile_engine(cm, config);
    let mb = MbFunction::new(engine);
    let n = mb.universe();
    let full = BitSet::full(n);

    let chosen: BitSet = match strategy {
        Strategy::Volcano => BitSet::empty(n),
        Strategy::Greedy => greedy_mod::greedy(&mb, &full, GreedyConfig::default()).set,
        Strategy::LazyGreedy => greedy_mod::lazy_greedy(&mb, &full, GreedyConfig::default()).set,
        Strategy::MarginalGreedy => {
            let decomp = mb.canonical_decomposition();
            marginal_greedy(&mb, &decomp, &full, MarginalConfig::default()).set
        }
        Strategy::LazyMarginalGreedy => {
            let decomp = mb.canonical_decomposition();
            lazy_marginal_greedy(&mb, &decomp, &full, MarginalConfig::default()).set
        }
        Strategy::MaterializeAll => full.clone(),
        Strategy::CardinalityMarginalGreedy { k, reduce_universe } => {
            let decomp = mb.canonical_decomposition();
            cardinality_marginal_greedy(&mb, &decomp, &full, k, reduce_universe).set
        }
        Strategy::MarginalGreedyCleanup => {
            let decomp = mb.canonical_decomposition();
            let out = marginal_greedy(&mb, &decomp, &full, MarginalConfig::default());
            mqo_submod::algorithms::cleanup::cleanup(&mb, &out.set).set
        }
        Strategy::Exhaustive => {
            assert!(
                n <= 20,
                "exhaustive MQO is limited to 20 shareable nodes (got {n})"
            );
            mqo_submod::algorithms::exhaustive::exhaustive_max(&mb, &full).0
        }
    };

    let total_cost = mb.bc(&chosen);
    let opt_time = start.elapsed();
    let materialized: Vec<GroupId> = chosen.iter().map(|e| batch.shareable[e]).collect();
    RunReport {
        strategy: strategy.name().to_string(),
        total_cost,
        volcano_cost: mb.bc_empty(),
        benefit: mb.bc_empty() - total_cost,
        materialized,
        opt_time,
        bc_calls: mb.bc_calls(),
        universe: n,
    }
}

/// Runs several strategies on the same batch (recompiling the engine per
/// strategy so timings are comparable).
pub fn compare(batch: &BatchDag, cm: &dyn CostModel, strategies: &[Strategy]) -> Vec<RunReport> {
    strategies.iter().map(|&s| optimize(batch, cm, s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqo_catalog::{Catalog, TableBuilder};
    use mqo_volcano::cost::DiskCostModel;
    use mqo_volcano::rules::RuleSet;
    use mqo_volcano::{Constraint, DagContext, PlanNode, Predicate};

    fn batch() -> BatchDag {
        let mut cat = Catalog::new();
        for (name, rows) in [
            ("a", 50_000.0),
            ("b", 100_000.0),
            ("c", 25_000.0),
            ("d", 10_000.0),
        ] {
            cat.add_table(
                TableBuilder::new(name, rows)
                    .key_column(format!("{name}_key"), 4)
                    .column(
                        format!("{name}_fk"),
                        rows / 50.0,
                        (0, (rows as i64) / 50 - 1),
                        4,
                    )
                    .column(format!("{name}_x"), 100.0, (0, 99), 8)
                    .primary_key(&[&format!("{name}_key")])
                    .build(),
            );
        }
        let mut ctx = DagContext::new(cat);
        let a = ctx.instance_by_name("a", 0);
        let b = ctx.instance_by_name("b", 0);
        let c = ctx.instance_by_name("c", 0);
        let d = ctx.instance_by_name("d", 0);
        let p_ab = Predicate::join(ctx.col(a, "a_key"), ctx.col(b, "b_fk"));
        let p_bc = Predicate::join(ctx.col(b, "b_key"), ctx.col(c, "c_fk"));
        let p_bd = Predicate::join(ctx.col(b, "b_key"), ctx.col(d, "d_fk"));
        let sel = Predicate::on(ctx.col(b, "b_x"), Constraint::eq(7));
        let q1 = PlanNode::scan(a).join(PlanNode::scan(b).select(sel.clone()), p_ab);
        let q2 = PlanNode::scan(b)
            .select(sel.clone())
            .join(PlanNode::scan(c), p_bc);
        let q3 = PlanNode::scan(b).select(sel).join(PlanNode::scan(d), p_bd);
        BatchDag::build(ctx, &[q1, q2, q3], &RuleSet::default())
    }

    #[test]
    fn all_mqo_strategies_beat_or_match_volcano() {
        let b = batch();
        let cm = DiskCostModel::paper();
        for s in [
            Strategy::Greedy,
            Strategy::LazyGreedy,
            Strategy::MarginalGreedy,
            Strategy::LazyMarginalGreedy,
        ] {
            let r = optimize(&b, &cm, s);
            assert!(
                r.total_cost <= r.volcano_cost + 1e-6,
                "{}: {} > volcano {}",
                r.strategy,
                r.total_cost,
                r.volcano_cost
            );
            assert!(r.benefit >= -1e-6);
        }
    }

    #[test]
    fn sharing_strictly_helps_on_this_batch() {
        let b = batch();
        let cm = DiskCostModel::paper();
        let greedy = optimize(&b, &cm, Strategy::Greedy);
        assert!(
            greedy.benefit > 0.0,
            "three queries share σ(b); materialization must pay off"
        );
        assert!(!greedy.materialized.is_empty());
    }

    #[test]
    fn lazy_variants_match_eager() {
        let b = batch();
        let cm = DiskCostModel::paper();
        let eager_g = optimize(&b, &cm, Strategy::Greedy);
        let lazy_g = optimize(&b, &cm, Strategy::LazyGreedy);
        assert_eq!(eager_g.materialized, lazy_g.materialized);
        let eager_m = optimize(&b, &cm, Strategy::MarginalGreedy);
        let lazy_m = optimize(&b, &cm, Strategy::LazyMarginalGreedy);
        assert_eq!(eager_m.materialized, lazy_m.materialized);
    }

    #[test]
    fn volcano_report_is_baseline() {
        let b = batch();
        let cm = DiskCostModel::paper();
        let r = optimize(&b, &cm, Strategy::Volcano);
        assert_eq!(r.total_cost, r.volcano_cost);
        assert_eq!(r.benefit, 0.0);
        assert!(r.materialized.is_empty());
        assert_eq!(r.improvement_pct(), 0.0);
    }

    #[test]
    fn materialize_all_is_worse_than_greedy() {
        let b = batch();
        let cm = DiskCostModel::paper();
        let all = optimize(&b, &cm, Strategy::MaterializeAll);
        let greedy = optimize(&b, &cm, Strategy::Greedy);
        assert!(
            all.total_cost >= greedy.total_cost - 1e-6,
            "cost-blind materialize-everything must not beat greedy"
        );
    }

    #[test]
    fn cardinality_constraint_limits_materializations() {
        let b = batch();
        let cm = DiskCostModel::paper();
        let r = optimize(
            &b,
            &cm,
            Strategy::CardinalityMarginalGreedy {
                k: 1,
                reduce_universe: false,
            },
        );
        assert!(r.materialized.len() <= 1);
        let pruned = optimize(
            &b,
            &cm,
            Strategy::CardinalityMarginalGreedy {
                k: 1,
                reduce_universe: true,
            },
        );
        assert_eq!(r.materialized, pruned.materialized, "Theorem 4");
    }
}
