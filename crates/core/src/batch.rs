//! Batch construction: the combined rooted DAG and the shareable-node
//! universe.
//!
//! A batch of queries is inserted into one memo (hash-consing unifies
//! common subexpressions across queries), expanded to fixpoint under the
//! transformation rules, and topped with the dummy root operator
//! (Section 2.2). The *shareable* equivalence nodes — those with more than
//! one parent operator node in the expanded DAG, excluding base-relation
//! scans and the root — form the ground set the MQO algorithms search over
//! ("it is sufficient to search only over the set of shareable equivalence
//! nodes").
//!
//! A `BatchDag` exposes its memo only behind accessors, so the lazily
//! computed [`TopoView`] can never silently go stale (the pre-`Session`
//! API exposed the memo as a public field and had to guard the view with a
//! runtime fingerprint assertion). Since PR 6 the batch is *evolvable*:
//! [`BatchDag::add_query_with_threads`] and
//! [`BatchDag::retire_query_with_threads`] grow and shrink the live batch
//! in place — a commit rewinds/extends the memo via savepoints and the
//! seeded expansion fixpoint, recomputes the shareable universe from the
//! memo's [`MemoDelta`], and swaps in a fresh topological view, while
//! universe *slots* stay stable across evolutions (retired elements are
//! tombstoned, never renumbered).

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use mqo_volcano::cost::CostModel;
use mqo_volcano::logical::LogicalOp;
use mqo_volcano::memo::{GroupId, Memo, MemoDelta, Savepoint, TopoView};
use mqo_volcano::rules::{expand_seeded, expand_with, ExpansionStats, RuleSet};
use mqo_volcano::{DagContext, PlanNode};

use crate::config::MqoConfig;
use crate::engine::{BestCostEngine, CompileCache, EngineArenas, EngineState};
use crate::error::MqoError;
use crate::fault::{self, FaultSite};

/// Process-wide batch identity counter; see [`BatchDag::uid`].
static NEXT_BATCH_UID: AtomicU64 = AtomicU64::new(0);

/// Handle to a query admitted into an evolvable batch; returned by
/// `add_query` and consumed by `retire_query`. Tickets are never reused.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct QueryTicket(pub(crate) u32);

/// Per-query provenance inside an evolvable batch.
#[derive(Clone, Debug)]
struct QueryEntry {
    /// The stable ticket id issued for this query. Decoupled from the
    /// entry's position so [`BatchDag::compact_history`] can drop retired
    /// entries without invalidating outstanding tickets.
    ticket: u32,
    /// The submitted logical plan (kept for replay on retire/rollback).
    plan: PlanNode,
    /// The query's root group in the current memo state.
    root: GroupId,
    /// Savepoint taken immediately before this query was admitted
    /// incrementally; `None` for queries interned by a batch (re)build.
    sp: Option<Savepoint>,
    /// Whether the query is still part of the batch.
    live: bool,
}

/// One slot of the stable universe: a shareable group matched across
/// evolution steps by its structural fingerprint. Slots are append-only;
/// retiring a query tombstones slots instead of renumbering survivors.
#[derive(Clone, Debug)]
struct UniverseSlot {
    fingerprint: u64,
    group: GroupId,
    live: bool,
}

/// A fully expanded combined DAG for a batch of queries. Owned by a
/// [`crate::session::OptimizedBatch`] in the `Session` API; constructed
/// directly only by benchmarks and tests that measure the build itself.
#[derive(Debug)]
pub struct BatchDag {
    /// The expanded memo (mutated only by the evolution commits below).
    memo: Memo,
    /// The rule set the batch was expanded under (evolution commits re-run
    /// the same rules).
    rules: RuleSet,
    /// The dummy batch root.
    root: GroupId,
    /// Root group of each live query, in submission order.
    query_roots: Vec<GroupId>,
    /// Query provenance in admission order. Retired entries linger as
    /// tombstones (their plans seed savepoint replays) until
    /// [`BatchDag::compact_history`] drops them; tickets carry their own
    /// stable ids, so compaction never invalidates one.
    entries: Vec<QueryEntry>,
    /// Next ticket id to issue; never decreases, so tickets are unique for
    /// the lifetime of the batch.
    next_ticket: u32,
    /// The stable universe slots (live and tombstoned).
    universe: Vec<UniverseSlot>,
    /// The live shareable equivalence nodes (the MQO ground set) in stable
    /// slot order; index order is the universe element order of the
    /// set-function layer. On a freshly built batch this is ascending by
    /// group id.
    shareable: Vec<GroupId>,
    /// Canonical group slot → universe element (`u32::MAX` = not in the
    /// universe).
    elem_of_group: Vec<u32>,
    /// Per-group-slot reference counts (with multiplicity) over live
    /// expressions; kept incrementally from evolution deltas.
    refs: Vec<u32>,
    /// Bumped whenever the universe changes shape across an evolution
    /// commit; consumers (memoized oracles) invalidate on it.
    universe_epoch: u64,
    /// Cumulative expansion statistics (initial build plus evolutions).
    expansion: ExpansionStats,
    /// Lazily computed dense topological view of the current memo state;
    /// evolution commits swap in a fresh cell, so engines holding the old
    /// `Arc` keep a consistent snapshot.
    topo: OnceLock<Arc<TopoView>>,
    /// Reusable engine-compilation state shared by every
    /// [`BatchDag::compile_engine`] call on this batch.
    engine_cache: Mutex<CompileCache>,
    /// Process-unique batch identity, stamped into every
    /// [`BatchSavepoint`] so [`BatchDag::try_rollback_with_threads`] can
    /// reject savepoints from a different batch as
    /// [`MqoError::StaleSavepoint`] instead of silently rebuilding.
    uid: u64,
}

impl BatchDag {
    /// Builds, expands, and roots the combined DAG for `queries`. Candidate
    /// generation in the expansion fixpoint uses
    /// [`MqoConfig::default`]'s thread count (the `MQO_THREADS`
    /// environment default); see [`BatchDag::build_with_threads`].
    pub fn build(ctx: DagContext, queries: &[PlanNode], rules: &RuleSet) -> Self {
        Self::build_with_threads(ctx, queries, rules, MqoConfig::default().threads)
    }

    /// [`BatchDag::build`] with an explicit worker-thread count for the
    /// expansion fixpoint's candidate-generation phase. The memo is
    /// bit-identical at every thread count (the commit phase is serial and
    /// deterministic); only the wall-clock changes.
    pub fn build_with_threads(
        ctx: DagContext,
        queries: &[PlanNode],
        rules: &RuleSet,
        threads: usize,
    ) -> Self {
        let mut memo = Memo::new(ctx);
        for q in queries {
            let root = memo.insert_plan(q);
            memo.add_query_root(root);
        }
        let expansion = expand_with(&mut memo, rules, threads);
        let root = memo.build_batch_root();
        let query_roots = memo.roots();
        let entries = queries
            .iter()
            .zip(&query_roots)
            .enumerate()
            .map(|(i, (q, &r))| QueryEntry {
                ticket: i as u32,
                plan: q.clone(),
                root: r,
                sp: None,
                live: true,
            })
            .collect();
        let mut refs = Vec::new();
        recompute_refs(&memo, &mut refs);
        let shareable = find_shareable_with_refs(&memo, root, &refs);
        // Initial universe: one live slot per shareable group, ascending.
        let universe = shareable
            .iter()
            .zip(group_fingerprints(&memo, &shareable))
            .map(|(&g, fingerprint)| UniverseSlot {
                fingerprint,
                group: g,
                live: true,
            })
            .collect();
        let elem_of_group = build_elem_of_group(&memo, &shareable);
        BatchDag {
            memo,
            rules: *rules,
            root,
            query_roots,
            entries,
            universe,
            shareable,
            elem_of_group,
            refs,
            universe_epoch: 0,
            next_ticket: queries.len() as u32,
            expansion,
            topo: OnceLock::new(),
            engine_cache: Mutex::new(CompileCache::new()),
            uid: NEXT_BATCH_UID.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// The expanded (frozen) memo.
    pub fn memo(&self) -> &Memo {
        &self.memo
    }

    /// The dummy batch root group.
    pub fn root(&self) -> GroupId {
        self.root
    }

    /// Root group of each query, in submission order.
    pub fn query_roots(&self) -> &[GroupId] {
        &self.query_roots
    }

    /// The shareable equivalence nodes (the MQO ground set) in stable
    /// universe-slot order; index `e` is universe element `e` of the
    /// set-function layer. Ascending by group id on a freshly built batch;
    /// after evolution commits the order reflects slot stability, not id
    /// order.
    pub fn shareable(&self) -> &[GroupId] {
        &self.shareable
    }

    /// Universe element of a shareable group, if it is one (accepts
    /// non-canonical ids).
    pub fn shareable_index(&self, g: GroupId) -> Option<usize> {
        let slot = self.memo.find(g).0 as usize;
        match self.elem_of_group.get(slot) {
            Some(&e) if e != u32::MAX => Some(e as usize),
            _ => None,
        }
    }

    /// Bumped whenever an evolution commit changes the universe; memoized
    /// oracle layers invalidate on it.
    pub fn universe_epoch(&self) -> u64 {
        self.universe_epoch
    }

    /// Sorted structural fingerprints of the live universe: the id-free
    /// identity of the shareable ground set, comparable across
    /// independently built batches (an evolved batch and a fresh build of
    /// its surviving queries agree here even though their group ids and
    /// slot orders differ). Differential-harness hook.
    pub fn universe_fingerprints(&self) -> Vec<u64> {
        let mut fps = group_fingerprints(&self.memo, &self.shareable);
        fps.sort_unstable();
        fps
    }

    /// Total universe slots ever allocated (live plus tombstoned).
    pub fn universe_slots(&self) -> usize {
        self.universe.len()
    }

    /// Number of queries currently live in the batch.
    pub fn live_queries(&self) -> usize {
        self.entries.iter().filter(|e| e.live).count()
    }

    /// Tickets of the live queries, in submission order.
    pub fn tickets(&self) -> Vec<QueryTicket> {
        self.entries
            .iter()
            .filter(|e| e.live)
            .map(|e| QueryTicket(e.ticket))
            .collect()
    }

    /// Position of a ticket's entry in the provenance log, if it is still
    /// there (compaction drops retired entries entirely, so `None` covers
    /// both "retired and compacted away" and "never issued").
    fn entry_index(&self, ticket: QueryTicket) -> Option<usize> {
        self.entries.iter().position(|e| e.ticket == ticket.0)
    }

    /// Whether a ticket refers to a live query.
    pub fn is_live(&self, ticket: QueryTicket) -> bool {
        self.entry_index(ticket)
            .is_some_and(|i| self.entries[i].live)
    }

    /// Root group of a live query.
    ///
    /// # Panics
    /// If the ticket was retired (or never issued by this batch).
    pub fn ticket_root(&self, ticket: QueryTicket) -> GroupId {
        let entry = self
            .entry_index(ticket)
            .map(|i| &self.entries[i])
            .unwrap_or_else(|| panic!("ticket {ticket:?} was never issued (or compacted away)"));
        assert!(entry.live, "ticket {ticket:?} was retired");
        self.memo.find(entry.root)
    }

    /// Expansion statistics of the build.
    pub fn expansion(&self) -> &ExpansionStats {
        &self.expansion
    }

    /// Number of shareable nodes (the `n` of the paper's analysis).
    pub fn universe_size(&self) -> usize {
        self.shareable.len()
    }

    /// The dense topological view of the expanded memo, computed once and
    /// shared by every consumer (engine compilation, plan extraction,
    /// diagnostics). Safe to cache without revalidation: the memo is
    /// frozen behind `&self` accessors after construction.
    pub fn topo_view(&self) -> &TopoView {
        self.topo_arc()
    }

    /// The shared handle behind [`BatchDag::topo_view`] (compiled engines
    /// hold clones of this `Arc`, so no arena is ever copied).
    fn topo_arc(&self) -> &Arc<TopoView> {
        self.topo.get_or_init(|| Arc::new(self.memo.topo_view()))
    }

    /// Locks the compile cache, recovering from poison by *resetting* it:
    /// a panic mid-compile (the chaos suites inject them on purpose) may
    /// have left torn scratch behind, and a fresh cache is always correct
    /// — it is only a cache — while propagating the poison would wedge
    /// every later compile of this batch.
    fn lock_engine_cache(&self) -> MutexGuard<'_, CompileCache> {
        self.engine_cache.lock().unwrap_or_else(|poison| {
            let mut guard = poison.into_inner();
            *guard = CompileCache::new();
            guard
        })
    }

    /// Compiles a [`BestCostEngine`] for this batch through the shared
    /// [`CompileCache`]: the first compile seeds the cache with
    /// [`BatchDag::topo_view`], and every recompile (e.g.
    /// [`crate::session::OptimizedBatch::run_all`] building one engine per
    /// strategy) skips the topological sort and reuses the compile scratch
    /// buffers.
    pub fn compile_engine(&self, cm: &dyn CostModel, config: MqoConfig) -> BestCostEngine {
        let mut cache = self.lock_engine_cache();
        cache.prime_topo(&self.memo, self.topo_arc());
        let mut engine = BestCostEngine::with_cache(
            &self.memo,
            cm,
            self.root,
            &self.shareable,
            config,
            &mut cache,
        );
        engine.set_universe_epoch(self.universe_epoch);
        engine
    }

    /// Compiles an immutable [`EngineState`] snapshot of the current commit:
    /// the shared engine arenas plus the universe and dense query roots,
    /// stamped with the memo version so consumers can tell whether a held
    /// snapshot is still current. Readers spin up per-caller
    /// [`BestCostEngine`] handles from it ([`EngineState::engine`]) without
    /// touching the batch again.
    pub fn compile_state(&self, cm: &dyn CostModel) -> EngineState {
        let mut cache = self.lock_engine_cache();
        cache.prime_topo(&self.memo, self.topo_arc());
        let arenas = Arc::new(EngineArenas::compile(
            &self.memo,
            cm,
            self.root,
            &self.shareable,
            &mut cache,
        ));
        drop(cache);
        let topo = self.topo_arc();
        let query_roots = self.query_roots.iter().map(|&q| topo.dense(q)).collect();
        EngineState::assemble(
            self.memo.version(),
            self.universe_epoch,
            arenas,
            self.shareable.clone(),
            query_roots,
        )
    }

    /// Structural fingerprints of the live universe in element order
    /// (index `e` fingerprints shareable element `e`). Unlike
    /// [`BatchDag::universe_fingerprints`] this is *not* sorted: it keys
    /// per-element state (the serving layer's materialization cache)
    /// across evolution commits.
    pub fn shareable_fingerprints(&self) -> Vec<u64> {
        group_fingerprints(&self.memo, &self.shareable)
    }

    /// Size of the evolution history: provenance entries (live plus
    /// tombstoned) plus the memo's savepoint undo log. This is the state
    /// that grows with every add/retire cycle and that
    /// [`BatchDag::compact_history`] re-baselines away.
    pub fn history_len(&self) -> usize {
        self.entries.len() + self.memo.undo_len()
    }

    /// Re-baselines the batch: drops retired provenance entries and
    /// rebuilds the memo from the survivors' plans, clearing the savepoint
    /// undo log. Afterwards [`BatchDag::history_len`] depends only on the
    /// live query count, not on how many add/retire cycles preceded it.
    /// Outstanding tickets stay valid (they carry stable ids); universe
    /// slots keep their identity via fingerprint matching, exactly as on
    /// the retire fallback path.
    pub fn compact_history(&mut self, threads: usize) {
        self.entries.retain(|e| e.live);
        self.universe.retain(|s| s.live);
        self.rebuild_from_entries(threads);
    }

    // -----------------------------------------------------------------------
    // Evolution: add/retire queries on the live batch.
    // -----------------------------------------------------------------------

    /// Admits a new query into the live batch without a full rebuild: the
    /// plan is interned under a savepoint, the expansion fixpoint re-runs
    /// seeded with only the freshly interned expressions, and the
    /// shareable universe is extended incrementally from the memo delta
    /// (new shareable groups append universe slots; existing slots keep
    /// their element index).
    pub fn add_query_with_threads(&mut self, plan: &PlanNode, threads: usize) -> QueryTicket {
        let sp = self.memo.savepoint();
        self.memo.delta_begin();
        let watermark = self.memo.exprs_allocated() as u32;
        let root = self.memo.insert_plan(plan);
        self.memo.add_query_root(root);
        let seeds = (watermark..self.memo.exprs_allocated() as u32).map(mqo_volcano::ExprId);
        let stats = expand_seeded(&mut self.memo, &self.rules, threads, seeds);
        self.root = self.memo.build_batch_root();
        let delta = self.memo.delta_take();
        self.expansion.passes += stats.passes;
        self.expansion.candidates += stats.candidates;

        let ticket = QueryTicket(self.next_ticket);
        self.next_ticket += 1;
        self.entries.push(QueryEntry {
            ticket: ticket.0,
            plan: plan.clone(),
            root: self.memo.find(root),
            sp: Some(sp),
            live: true,
        });
        apply_delta_to_refs(&self.memo, &delta, &mut self.refs);
        // Chaos-test window: the memo has the new query's expressions but
        // the evolution is not yet committed — exactly the state a serving
        // round's savepoint rollback must be able to unwind.
        fault::hit(FaultSite::AdmissionPrecommit);
        self.commit_evolution();
        ticket
    }

    /// Retires a query from the live batch. Its private expressions are
    /// reclaimed by rewinding the memo to the savepoint taken when the
    /// query was admitted and replaying the (seeded, incremental)
    /// admission of every later surviving query; shared expressions are
    /// re-interned by the replay and keep their universe slots via
    /// fingerprint matching. Universe slots whose group disappears are
    /// tombstoned, never renumbered. Queries admitted by the initial batch
    /// build have no savepoint; retiring one falls back to a full rebuild
    /// of the survivors (same result, full cost).
    ///
    /// # Panics
    /// If the ticket was already retired, or if it names the last live
    /// query (a batch is never empty; see `SessionBuilder::build`). The
    /// fallible variant is [`BatchDag::try_retire_query_with_threads`].
    pub fn retire_query_with_threads(&mut self, ticket: QueryTicket, threads: usize) {
        self.try_retire_query_with_threads(ticket, threads)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`BatchDag::retire_query_with_threads`]: rejects unknown,
    /// compacted-away, and already-retired tickets
    /// ([`MqoError::UnknownTicket`] / [`MqoError::TicketRetired`]) and a
    /// retire that would empty the batch ([`MqoError::LastLiveQuery`])
    /// without touching any state.
    pub fn try_retire_query_with_threads(
        &mut self,
        ticket: QueryTicket,
        threads: usize,
    ) -> Result<(), MqoError> {
        let idx = match self.entry_index(ticket) {
            Some(i) => i,
            // Issued tickets whose entry is gone were retired and then
            // compacted away; ids at or past the issue watermark never
            // existed.
            None if ticket.0 < self.next_ticket => return Err(MqoError::TicketRetired(ticket)),
            None => return Err(MqoError::UnknownTicket(ticket)),
        };
        if !self.entries[idx].live {
            return Err(MqoError::TicketRetired(ticket));
        }
        if self.live_queries() <= 1 {
            return Err(MqoError::LastLiveQuery(ticket));
        }
        self.entries[idx].live = false;
        let sp = self.entries[idx].sp.take();
        match sp {
            Some(sp) if self.memo.savepoint_valid(&sp) => {
                self.memo.truncate_to(&sp);
                // Replay every later surviving admission incrementally.
                for i in idx + 1..self.entries.len() {
                    if !self.entries[i].live {
                        continue;
                    }
                    let sp = self.memo.savepoint();
                    let watermark = self.memo.exprs_allocated() as u32;
                    let plan = self.entries[i].plan.clone();
                    let root = self.memo.insert_plan(&plan);
                    self.memo.add_query_root(root);
                    let seeds =
                        (watermark..self.memo.exprs_allocated() as u32).map(mqo_volcano::ExprId);
                    let stats = expand_seeded(&mut self.memo, &self.rules, threads, seeds);
                    self.expansion.passes += stats.passes;
                    self.expansion.candidates += stats.candidates;
                    self.entries[i].root = self.memo.find(root);
                    self.entries[i].sp = Some(sp);
                }
                self.root = self.memo.build_batch_root();
                recompute_refs(&self.memo, &mut self.refs);
                self.commit_evolution();
            }
            _ => self.rebuild_from_entries(threads),
        }
        Ok(())
    }

    /// Rebuilds the memo from the surviving entries' plans (exactly the
    /// initial-build path), then re-matches the universe so surviving
    /// shareable groups keep their slots. Fallback for retire/rollback
    /// when no savepoint can rewind the memo.
    fn rebuild_from_entries(&mut self, threads: usize) {
        self.memo.reset();
        for entry in self.entries.iter_mut().filter(|e| e.live) {
            let root = self.memo.insert_plan(&entry.plan);
            self.memo.add_query_root(root);
            entry.root = root;
            entry.sp = None;
        }
        let stats = expand_with(&mut self.memo, &self.rules, threads);
        self.expansion.passes += stats.passes;
        self.expansion.candidates += stats.candidates;
        self.root = self.memo.build_batch_root();
        for entry in self.entries.iter_mut().filter(|e| e.live) {
            entry.root = self.memo.find(entry.root);
        }
        recompute_refs(&self.memo, &mut self.refs);
        self.commit_evolution();
    }

    /// Shared tail of every evolution commit: recompute the shareable set
    /// from the (already updated) reference counts, re-match it against
    /// the stable universe slots by structural fingerprint, rebuild the
    /// element index, refresh cached roots, and swap in a fresh topo cell
    /// so `run*` consumers see a consistent new snapshot.
    fn commit_evolution(&mut self) {
        self.query_roots = self.memo.roots();
        self.expansion.exprs = self.memo.n_exprs();
        self.expansion.groups = self.memo.n_groups();
        let new_shareable = find_shareable_with_refs(&self.memo, self.root, &self.refs);
        let fps = group_fingerprints(&self.memo, &new_shareable);

        // Match new shareable groups to existing slots by fingerprint
        // (reviving tombstoned slots on an add-after-rollback replay);
        // unmatched groups append fresh slots, unmatched slots die.
        let mut slot_of_fp: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, slot) in self.universe.iter().enumerate() {
            slot_of_fp.entry(slot.fingerprint).or_default().push(i);
        }
        let mut matched = vec![false; self.universe.len()];
        for (&g, &fp) in new_shareable.iter().zip(&fps) {
            let slot = slot_of_fp
                .get_mut(&fp)
                .and_then(|v| (!v.is_empty()).then(|| v.remove(0)));
            match slot {
                Some(i) => {
                    self.universe[i].group = g;
                    self.universe[i].live = true;
                    matched[i] = true;
                }
                None => {
                    matched.push(true);
                    self.universe.push(UniverseSlot {
                        fingerprint: fp,
                        group: g,
                        live: true,
                    });
                }
            }
        }
        for (slot, &m) in self.universe.iter_mut().zip(&matched) {
            if !m {
                slot.live = false;
            }
        }
        let old_shareable = std::mem::take(&mut self.shareable);
        self.shareable = self
            .universe
            .iter()
            .filter(|s| s.live)
            .map(|s| s.group)
            .collect();
        self.elem_of_group = build_elem_of_group(&self.memo, &self.shareable);
        if self.shareable != old_shareable {
            self.universe_epoch += 1;
        }
        // Swap the topo cell: engines holding the old Arc keep a frozen
        // consistent snapshot; new compiles see the evolved memo.
        self.topo = OnceLock::new();
    }
}

/// A consistent snapshot of a [`BatchDag`]'s evolution state, taken by
/// [`BatchDag::savepoint`] for speculative admission. Rolling back rewinds
/// the memo via the embedded [`Savepoint`] when it is still valid and
/// falls back to a rebuild of the snapshot's live queries otherwise.
#[derive(Debug)]
pub struct BatchSavepoint {
    /// Identity of the batch this savepoint was taken on; see
    /// [`BatchDag::try_rollback_with_threads`].
    batch_uid: u64,
    memo_sp: Savepoint,
    root: GroupId,
    query_roots: Vec<GroupId>,
    entries: Vec<QueryEntry>,
    universe: Vec<UniverseSlot>,
    shareable: Vec<GroupId>,
    elem_of_group: Vec<u32>,
    refs: Vec<u32>,
    expansion: ExpansionStats,
    next_ticket: u32,
}

impl BatchDag {
    /// Captures the current evolution state for a later
    /// [`BatchDag::rollback`]. Cheap: clones bookkeeping vectors, never
    /// the memo arenas.
    pub fn savepoint(&mut self) -> BatchSavepoint {
        BatchSavepoint {
            batch_uid: self.uid,
            memo_sp: self.memo.savepoint(),
            root: self.root,
            query_roots: self.query_roots.clone(),
            entries: self.entries.clone(),
            universe: self.universe.clone(),
            shareable: self.shareable.clone(),
            elem_of_group: self.elem_of_group.clone(),
            refs: self.refs.clone(),
            expansion: self.expansion,
            next_ticket: self.next_ticket,
        }
    }

    /// Rewinds every evolution commit made since `sp` was taken: slots,
    /// elements, tickets, and the memo return to the exact snapshot state.
    /// The universe epoch bumps only when the rewind actually changes the
    /// shareable universe — an identical ground set means every memoized
    /// oracle value is still correct, so consumers need not invalidate.
    /// If the memo savepoint was invalidated in the meantime (e.g. a
    /// retire rewound past it), the snapshot's live queries are rebuilt
    /// instead — same resulting state, full cost.
    ///
    /// # Panics
    /// If `sp` is stale: taken on a different batch, or already rolled
    /// back past (its admission watermark is ahead of the batch's). The
    /// fallible variant is [`BatchDag::try_rollback_with_threads`].
    pub fn rollback(&mut self, sp: BatchSavepoint) {
        self.rollback_with_threads(sp, MqoConfig::default().threads)
    }

    /// [`BatchDag::rollback`] with an explicit thread count for the
    /// rebuild fallback's expansion fixpoint.
    pub fn rollback_with_threads(&mut self, sp: BatchSavepoint, threads: usize) {
        self.try_rollback_with_threads(sp, threads)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`BatchDag::rollback_with_threads`]: rejects savepoints
    /// from another batch and savepoints the batch was already rolled back
    /// past as [`MqoError::StaleSavepoint`] without touching any state.
    /// (Rolling back to an *older* savepoint of this batch's lineage is
    /// fine and skips intermediate ones — those intermediates then become
    /// stale.)
    pub fn try_rollback_with_threads(
        &mut self,
        sp: BatchSavepoint,
        threads: usize,
    ) -> Result<(), MqoError> {
        if sp.batch_uid != self.uid || sp.next_ticket > self.next_ticket {
            return Err(MqoError::StaleSavepoint);
        }
        let BatchSavepoint {
            batch_uid: _,
            memo_sp,
            root,
            query_roots,
            entries,
            universe,
            shareable,
            elem_of_group,
            refs,
            expansion,
            next_ticket,
        } = sp;
        self.entries = entries;
        self.universe = universe;
        self.expansion = expansion;
        self.next_ticket = next_ticket;
        if self.memo.savepoint_valid(&memo_sp) {
            self.memo.truncate_to(&memo_sp);
            self.root = root;
            self.query_roots = query_roots;
            if self.shareable != shareable {
                self.universe_epoch += 1;
            }
            self.shareable = shareable;
            self.elem_of_group = elem_of_group;
            self.refs = refs;
            self.topo = OnceLock::new();
        } else {
            self.rebuild_from_entries(threads);
        }
        Ok(())
    }
}

/// Shareable nodes: reachable from the batch root, with at least two
/// references from live parent operator nodes, excluding bare scans
/// (materializing a base relation is never useful — it already resides on
/// disk) and the root itself. References are counted with multiplicity:
/// one parent expression can reference the group twice (e.g. the batch
/// root when the same query is submitted twice, or a self-join of a shared
/// view).
///
/// Allocation-light by construction: one pass over the live expression
/// arena accumulates reference counts into a flat per-slot buffer, and one
/// DFS over group children marks reachability — no per-group parent-list
/// vectors (the pre-`Session` implementation called
/// `Memo::group_parents(g)`, which allocates and sorts a `Vec`, for every
/// reachable group).
fn find_shareable_with_refs(memo: &Memo, root: GroupId, refs: &[u32]) -> Vec<GroupId> {
    let n_slots = memo.n_group_slots();
    let root = memo.find(root);

    // DFS reachability from the batch root, filtering as we go.
    let mut seen = vec![false; n_slots];
    let mut stack = vec![root];
    seen[root.0 as usize] = true;
    let mut out = Vec::new();
    while let Some(g) = stack.pop() {
        if g != root && refs[g.0 as usize] >= 2 {
            let is_bare_scan = memo
                .group_exprs(g)
                .all(|e| matches!(memo.op(e), LogicalOp::Scan(_)));
            if !is_bare_scan {
                out.push(g);
            }
        }
        for e in memo.group_exprs(g) {
            for &c in memo.children(e) {
                let c = memo.find(c);
                if !seen[c.0 as usize] {
                    seen[c.0 as usize] = true;
                    stack.push(c);
                }
            }
        }
    }
    out.sort_unstable();
    out
}

/// Reference counts from scratch: one pass over the live expression arena
/// (pass 1 of the original `find_shareable`). Used by the initial build
/// and by the retire/rollback paths, whose memo rewind is not
/// delta-describable.
fn recompute_refs(memo: &Memo, refs: &mut Vec<u32>) {
    refs.clear();
    refs.resize(memo.n_group_slots(), 0);
    for e in memo.expr_ids() {
        for &c in memo.children(e) {
            refs[memo.find(c).0 as usize] += 1;
        }
    }
}

/// Applies an evolution step's [`MemoDelta`] to the per-slot reference
/// counts, maintaining the invariant `refs[s] = Σ multiplicity of s in
/// find(children(e))` over live expressions — without rescanning the
/// arena:
///
/// 1. each union transfers the dropped slot's count to the kept slot
///    (every old reference now resolves there);
/// 2. each tombstoned *pre-existing* expression subtracts its (current,
///    post-rewrite) children — its original contribution was carried to
///    exactly those slots by step 1, because stored children are only
///    ever rewritten to representatives;
/// 3. each surviving *new* expression adds its children. New-then-dead
///    expressions cancel out and are skipped by both 2 and 3.
fn apply_delta_to_refs(memo: &Memo, delta: &MemoDelta, refs: &mut Vec<u32>) {
    refs.resize(memo.n_group_slots(), 0);
    for &(keep, drop) in &delta.merges {
        let moved = std::mem::replace(&mut refs[drop.0 as usize], 0);
        refs[keep.0 as usize] += moved;
    }
    for &e in &delta.tombstoned {
        if (e.0 as usize) < delta.exprs_before {
            for &c in memo.children(e) {
                refs[memo.find(c).0 as usize] -= 1;
            }
        }
    }
    for e in delta.new_exprs() {
        if memo.is_alive(e) {
            for &c in memo.children(e) {
                refs[memo.find(c).0 as usize] += 1;
            }
        }
    }
}

/// Structural fingerprints for `groups`: a bottom-up hash over the memo's
/// live contents in which a group's fingerprint covers the sorted
/// fingerprints of its member expressions, and an expression's covers its
/// operator and child-group fingerprints. Invariant under group-id
/// renumbering — two memo states interning the same logical DAG (an
/// evolved batch and a fresh rebuild of the same queries) assign equal
/// fingerprints — which is what keys universe slots across evolutions.
fn group_fingerprints(memo: &Memo, groups: &[GroupId]) -> Vec<u64> {
    let mut fp = vec![0u64; memo.n_group_slots()];
    let mut expr_fps: Vec<u64> = Vec::new();
    for g in memo.topo_order() {
        expr_fps.clear();
        expr_fps.extend(memo.group_exprs(g).map(|e| {
            let mut h = FpHasher::default();
            memo.op(e).hash(&mut h);
            for &c in memo.children(e) {
                fp[memo.find(c).0 as usize].hash(&mut h);
            }
            h.finish()
        }));
        expr_fps.sort_unstable();
        let mut h = FpHasher::default();
        expr_fps.hash(&mut h);
        fp[g.0 as usize] = h.finish();
    }
    groups
        .iter()
        .map(|&g| fp[memo.find(g).0 as usize])
        .collect()
}

/// Multiply-xor hasher for structural fingerprints. Every evolution
/// commit hashes every live expression in the memo, and at that grain
/// SipHash's per-hasher setup cost is the dominant term. Fingerprints
/// never key untrusted input, so DoS resistance is not required — only
/// 64-bit spread, which the Fx-style mix provides.
#[derive(Default)]
struct FpHasher(u64);

impl FpHasher {
    #[inline]
    fn mix(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

impl std::hash::Hasher for FpHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            self.mix(u64::from_le_bytes(bytes[..8].try_into().unwrap()));
            bytes = &bytes[8..];
        }
        if !bytes.is_empty() {
            let mut rest = [0u8; 8];
            rest[..bytes.len()].copy_from_slice(bytes);
            // Length is folded in so a short tail never aliases its own
            // zero-padding (std Hash impls already delimit variable-length
            // data, this is belt and braces).
            self.mix(u64::from_le_bytes(rest) ^ ((bytes.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.mix(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.mix(i as u64);
    }
}

/// Dense canonical-group-slot → universe-element map behind
/// [`BatchDag::shareable_index`] (`u32::MAX` = not shareable). Replaces
/// the pre-evolution binary search, which assumed the universe stays
/// sorted by group id — stable-slot order after an evolution commit is
/// not.
fn build_elem_of_group(memo: &Memo, shareable: &[GroupId]) -> Vec<u32> {
    let mut map = vec![u32::MAX; memo.n_group_slots()];
    for (i, &g) in shareable.iter().enumerate() {
        map[g.0 as usize] = i as u32;
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqo_catalog::{Catalog, TableBuilder};
    use mqo_volcano::{Constraint, Predicate};

    fn ctx() -> DagContext {
        let mut cat = Catalog::new();
        for (name, rows) in [("a", 1000.0), ("b", 2000.0), ("c", 500.0), ("d", 800.0)] {
            cat.add_table(
                TableBuilder::new(name, rows)
                    .key_column(format!("{name}_key"), 4)
                    .column(
                        format!("{name}_fk"),
                        rows / 10.0,
                        (0, (rows as i64) / 10 - 1),
                        4,
                    )
                    .column(format!("{name}_x"), 10.0, (0, 9), 4)
                    .primary_key(&[&format!("{name}_key")])
                    .build(),
            );
        }
        DagContext::new(cat)
    }

    /// Example 1's structure: Q1 = A⋈B⋈C, Q2 = B⋈C⋈D.
    fn example1_queries(ctx: &mut DagContext) -> Vec<PlanNode> {
        let a = ctx.instance_by_name("a", 0);
        let b = ctx.instance_by_name("b", 0);
        let c = ctx.instance_by_name("c", 0);
        let d = ctx.instance_by_name("d", 0);
        let p_ab = Predicate::join(ctx.col(a, "a_key"), ctx.col(b, "b_fk"));
        let p_bc = Predicate::join(ctx.col(b, "b_key"), ctx.col(c, "c_fk"));
        let p_bd = Predicate::join(ctx.col(b, "b_key"), ctx.col(d, "d_fk"));
        let q1 = PlanNode::scan(a)
            .join(PlanNode::scan(b), p_ab)
            .join(PlanNode::scan(c), p_bc.clone());
        let q2 = PlanNode::scan(b)
            .join(PlanNode::scan(c), p_bc)
            .join(PlanNode::scan(d), p_bd);
        vec![q1, q2]
    }

    #[test]
    fn batch_has_root_and_query_roots() {
        let mut ctx = ctx();
        let queries = example1_queries(&mut ctx);
        let batch = BatchDag::build(ctx, &queries, &RuleSet::joins_only());
        assert_eq!(batch.query_roots().len(), 2);
        assert_ne!(batch.query_roots()[0], batch.query_roots()[1]);
        let root_children = batch.memo().group_children(batch.root());
        assert_eq!(root_children.len(), 2);
    }

    #[test]
    fn shared_join_is_shareable() {
        let mut ctx = ctx();
        let queries = example1_queries(&mut ctx);
        let batch = BatchDag::build(ctx, &queries, &RuleSet::joins_only());
        // The B⋈C group is a child of joins in both queries: must be in the
        // shareable universe.
        let bc = batch.shareable().iter().copied().find(|&g| {
            let leaves = &batch.memo().props(g).leaves;
            leaves.len() == 2
        });
        assert!(bc.is_some(), "B⋈C (a 2-leaf group) must be shareable");
    }

    #[test]
    fn scans_and_root_excluded() {
        let mut ctx = ctx();
        let queries = example1_queries(&mut ctx);
        let batch = BatchDag::build(ctx, &queries, &RuleSet::joins_only());
        assert!(!batch.shareable().contains(&batch.root()));
        for &g in batch.shareable() {
            let all_scans = batch
                .memo()
                .group_exprs(g)
                .all(|e| matches!(batch.memo().expr(e).op, LogicalOp::Scan(_)));
            assert!(!all_scans, "bare scan group {g:?} must not be shareable");
        }
    }

    #[test]
    fn selects_with_shared_subsumer_are_shareable() {
        let mut ctx = ctx();
        let a = ctx.instance_by_name("a", 0);
        let ax = ctx.col(a, "a_x");
        let akey = ctx.col(a, "a_key");
        let b = ctx.instance_by_name("b", 0);
        let p_ab = Predicate::join(ctx.col(a, "a_key"), ctx.col(b, "b_fk"));
        // Two single-table queries with different constants, joined against
        // b so the select groups have parents.
        let q1 = PlanNode::scan(a)
            .select(Predicate::on(ax, Constraint::eq(3)))
            .join(PlanNode::scan(b), p_ab.clone());
        let q2 = PlanNode::scan(a)
            .select(Predicate::on(ax, Constraint::eq(5)))
            .join(PlanNode::scan(b), p_ab);
        let _ = akey;
        let batch = BatchDag::build(ctx, &[q1, q2], &RuleSet::default());
        // The subsumer σ_{x∈{3,5}}(a) has two derivation parents: shareable.
        let has_subsumer = batch.shareable().iter().any(|&g| {
            batch.memo().group_exprs(g).any(|e| {
                matches!(&batch.memo().expr(e).op, LogicalOp::Select(p)
                    if p.constraints.values().any(|c| c.in_list.as_ref().is_some_and(|v| v.len() == 2)))
            })
        });
        assert!(has_subsumer, "IN-subsumer must be shareable");
    }

    #[test]
    fn shareable_index_maps_groups_to_universe_elements() {
        let mut ctx = ctx();
        let queries = example1_queries(&mut ctx);
        let batch = BatchDag::build(ctx, &queries, &RuleSet::default());
        for (e, &g) in batch.shareable().iter().enumerate() {
            assert_eq!(batch.shareable_index(g), Some(e));
        }
        assert_eq!(batch.shareable_index(batch.root()), None);
    }

    #[test]
    fn universe_is_deterministic() {
        let mut ctx1 = ctx();
        let q1 = example1_queries(&mut ctx1);
        let b1 = BatchDag::build(ctx1, &q1, &RuleSet::default());
        let mut ctx2 = ctx();
        let q2 = example1_queries(&mut ctx2);
        let b2 = BatchDag::build(ctx2, &q2, &RuleSet::default());
        assert_eq!(b1.shareable(), b2.shareable());
    }

    /// Q3 = C⋈D, overlapping Q2's D and the B⋈C region.
    fn third_query(ctx: &mut DagContext) -> PlanNode {
        let c = ctx.instance_by_name("c", 0);
        let d = ctx.instance_by_name("d", 0);
        let p_cd = Predicate::join(ctx.col(c, "c_key"), ctx.col(d, "d_fk"));
        PlanNode::scan(c).join(PlanNode::scan(d), p_cd)
    }

    /// Sorted live-universe fingerprints: the id-free identity of the
    /// ground set, comparable across independently built memos.
    fn universe_fps(batch: &BatchDag) -> Vec<u64> {
        batch.universe_fingerprints()
    }

    /// Evolved and fresh batches over the same surviving queries must
    /// agree on everything id-free: live counts and the universe
    /// fingerprint set.
    fn assert_equivalent(evolved: &BatchDag, fresh: &BatchDag, label: &str) {
        evolved.memo().check_consistency();
        assert_eq!(
            evolved.memo().n_exprs(),
            fresh.memo().n_exprs(),
            "{label}: live expression counts diverge"
        );
        assert_eq!(
            evolved.memo().n_groups(),
            fresh.memo().n_groups(),
            "{label}: live group counts diverge"
        );
        assert_eq!(
            evolved.query_roots().len(),
            fresh.query_roots().len(),
            "{label}: query root counts diverge"
        );
        assert_eq!(
            universe_fps(evolved),
            universe_fps(fresh),
            "{label}: universe fingerprint sets diverge"
        );
    }

    #[test]
    fn add_query_matches_fresh_build() {
        let mut ctx1 = ctx();
        let mut queries = example1_queries(&mut ctx1);
        queries.push(third_query(&mut ctx1));
        let fresh = BatchDag::build(ctx1, &queries, &RuleSet::default());

        let mut ctx2 = ctx();
        let base = example1_queries(&mut ctx2);
        let q3 = third_query(&mut ctx2);
        let mut evolved = BatchDag::build_with_threads(ctx2, &base, &RuleSet::default(), 1);
        let epoch0 = evolved.universe_epoch();
        let t = evolved.add_query_with_threads(&q3, 1);
        assert!(evolved.is_live(t));
        assert_eq!(evolved.live_queries(), 3);
        assert_equivalent(&evolved, &fresh, "add q3");
        let _ = epoch0;
        // Stable slots: the base batch's universe elements keep their
        // element indices after the add (new elements only append).
        let base_universe = {
            let mut c = ctx();
            let q = example1_queries(&mut c);
            BatchDag::build(c, &q, &RuleSet::default())
                .shareable()
                .to_vec()
        };
        assert_eq!(
            &evolved.shareable()[..base_universe.len()],
            &base_universe[..],
            "pre-existing universe elements must keep their indices"
        );
    }

    #[test]
    fn retire_incrementally_added_query_restores_base_batch() {
        let mut ctx1 = ctx();
        let base_queries = example1_queries(&mut ctx1);
        let fresh = BatchDag::build(ctx1, &base_queries, &RuleSet::default());

        let mut ctx2 = ctx();
        let base = example1_queries(&mut ctx2);
        let q3 = third_query(&mut ctx2);
        let mut evolved = BatchDag::build_with_threads(ctx2, &base, &RuleSet::default(), 1);
        let t = evolved.add_query_with_threads(&q3, 1);
        evolved.retire_query_with_threads(t, 1);
        assert!(!evolved.is_live(t));
        assert_eq!(evolved.live_queries(), 2);
        assert_equivalent(&evolved, &fresh, "add+retire q3");
    }

    #[test]
    fn retire_initial_query_rebuilds_survivors() {
        let mut ctx1 = ctx();
        let mut survivors = example1_queries(&mut ctx1);
        let q3_1 = third_query(&mut ctx1);
        survivors.remove(0);
        survivors.push(q3_1);
        let fresh = BatchDag::build(ctx1, &survivors, &RuleSet::default());

        let mut ctx2 = ctx();
        let base = example1_queries(&mut ctx2);
        let q3 = third_query(&mut ctx2);
        let mut evolved = BatchDag::build_with_threads(ctx2, &base, &RuleSet::default(), 1);
        evolved.add_query_with_threads(&q3, 1);
        // Ticket 0 is an initial-build entry (no savepoint): slow path.
        evolved.retire_query_with_threads(QueryTicket(0), 1);
        assert_eq!(evolved.live_queries(), 2);
        assert_equivalent(&evolved, &fresh, "retire initial q1");
    }

    #[test]
    fn rollback_restores_speculative_admission() {
        let mut ctx1 = ctx();
        let base_queries = example1_queries(&mut ctx1);
        let fresh = BatchDag::build(ctx1, &base_queries, &RuleSet::default());

        let mut ctx2 = ctx();
        let base = example1_queries(&mut ctx2);
        let q3 = third_query(&mut ctx2);
        let mut evolved = BatchDag::build_with_threads(ctx2, &base, &RuleSet::default(), 1);
        let shareable_before = evolved.shareable().to_vec();
        let sp = evolved.savepoint();
        let t = evolved.add_query_with_threads(&q3, 1);
        assert_eq!(evolved.live_queries(), 3);
        evolved.rollback_with_threads(sp, 1);
        assert_eq!(evolved.live_queries(), 2);
        assert!(!evolved.is_live(t));
        assert_eq!(evolved.shareable(), &shareable_before[..]);
        assert_equivalent(&evolved, &fresh, "rollback of speculative add");

        // Add-after-rollback replay: the same admission commits cleanly.
        let t2 = evolved.add_query_with_threads(&q3, 1);
        assert!(evolved.is_live(t2));
        assert_eq!(evolved.live_queries(), 3);
        evolved.memo().check_consistency();
    }

    #[test]
    #[should_panic(expected = "cannot retire the last live query")]
    fn retiring_the_last_query_panics() {
        let mut ctx1 = ctx();
        let queries = example1_queries(&mut ctx1);
        let mut batch = BatchDag::build_with_threads(ctx1, &queries[..1], &RuleSet::default(), 1);
        batch.retire_query_with_threads(QueryTicket(0), 1);
    }

    #[test]
    #[should_panic(expected = "already retired")]
    fn retiring_a_dead_ticket_panics() {
        let mut ctx1 = ctx();
        let mut queries = example1_queries(&mut ctx1);
        queries.push(third_query(&mut ctx1));
        let mut batch = BatchDag::build_with_threads(ctx1, &queries, &RuleSet::default(), 1);
        let t = QueryTicket(0);
        batch.retire_query_with_threads(t, 1);
        batch.retire_query_with_threads(t, 1);
    }
}
