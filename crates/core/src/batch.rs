//! Batch construction: the combined rooted DAG and the shareable-node
//! universe.
//!
//! A batch of queries is inserted into one memo (hash-consing unifies
//! common subexpressions across queries), expanded to fixpoint under the
//! transformation rules, and topped with the dummy root operator
//! (Section 2.2). The *shareable* equivalence nodes — those with more than
//! one parent operator node in the expanded DAG, excluding base-relation
//! scans and the root — form the ground set the MQO algorithms search over
//! ("it is sufficient to search only over the set of shareable equivalence
//! nodes").
//!
//! A `BatchDag` is immutable once built: the memo is frozen behind
//! accessors, so the lazily computed [`TopoView`] can never go stale (the
//! pre-`Session` API exposed the memo as a public field and had to guard
//! the view with a runtime fingerprint assertion).

use std::sync::{Arc, Mutex, OnceLock};

use mqo_volcano::cost::CostModel;
use mqo_volcano::logical::LogicalOp;
use mqo_volcano::memo::{GroupId, Memo, TopoView};
use mqo_volcano::rules::{expand_with, ExpansionStats, RuleSet};
use mqo_volcano::{DagContext, PlanNode};

use crate::config::MqoConfig;
use crate::engine::{BestCostEngine, CompileCache};

/// A fully expanded combined DAG for a batch of queries. Owned by a
/// [`crate::session::OptimizedBatch`] in the `Session` API; constructed
/// directly only by benchmarks and tests that measure the build itself.
#[derive(Debug)]
pub struct BatchDag {
    /// The expanded memo (frozen after construction).
    memo: Memo,
    /// The dummy batch root.
    root: GroupId,
    /// Root group of each query, in submission order.
    query_roots: Vec<GroupId>,
    /// The shareable equivalence nodes (the MQO ground set), ascending;
    /// index order is the universe element order of the set-function layer.
    shareable: Vec<GroupId>,
    /// Expansion statistics.
    expansion: ExpansionStats,
    /// Lazily computed dense topological view of the frozen memo.
    topo: OnceLock<Arc<TopoView>>,
    /// Reusable engine-compilation state shared by every
    /// [`BatchDag::compile_engine`] call on this batch.
    engine_cache: Mutex<CompileCache>,
}

impl BatchDag {
    /// Builds, expands, and roots the combined DAG for `queries`. Candidate
    /// generation in the expansion fixpoint uses
    /// [`MqoConfig::default`]'s thread count (the `MQO_THREADS`
    /// environment default); see [`BatchDag::build_with_threads`].
    pub fn build(ctx: DagContext, queries: &[PlanNode], rules: &RuleSet) -> Self {
        Self::build_with_threads(ctx, queries, rules, MqoConfig::default().threads)
    }

    /// [`BatchDag::build`] with an explicit worker-thread count for the
    /// expansion fixpoint's candidate-generation phase. The memo is
    /// bit-identical at every thread count (the commit phase is serial and
    /// deterministic); only the wall-clock changes.
    pub fn build_with_threads(
        ctx: DagContext,
        queries: &[PlanNode],
        rules: &RuleSet,
        threads: usize,
    ) -> Self {
        let mut memo = Memo::new(ctx);
        for q in queries {
            let root = memo.insert_plan(q);
            memo.add_query_root(root);
        }
        let expansion = expand_with(&mut memo, rules, threads);
        let root = memo.build_batch_root();
        let query_roots = memo.roots();
        let shareable = find_shareable(&memo, root);
        BatchDag {
            memo,
            root,
            query_roots,
            shareable,
            expansion,
            topo: OnceLock::new(),
            engine_cache: Mutex::new(CompileCache::new()),
        }
    }

    /// The expanded (frozen) memo.
    pub fn memo(&self) -> &Memo {
        &self.memo
    }

    /// The dummy batch root group.
    pub fn root(&self) -> GroupId {
        self.root
    }

    /// Root group of each query, in submission order.
    pub fn query_roots(&self) -> &[GroupId] {
        &self.query_roots
    }

    /// The shareable equivalence nodes (the MQO ground set), ascending by
    /// group id; index `e` is universe element `e` of the set-function
    /// layer.
    pub fn shareable(&self) -> &[GroupId] {
        &self.shareable
    }

    /// Universe element of a shareable group, if it is one (accepts
    /// non-canonical ids).
    pub fn shareable_index(&self, g: GroupId) -> Option<usize> {
        self.shareable.binary_search(&self.memo.find(g)).ok()
    }

    /// Expansion statistics of the build.
    pub fn expansion(&self) -> &ExpansionStats {
        &self.expansion
    }

    /// Number of shareable nodes (the `n` of the paper's analysis).
    pub fn universe_size(&self) -> usize {
        self.shareable.len()
    }

    /// The dense topological view of the expanded memo, computed once and
    /// shared by every consumer (engine compilation, plan extraction,
    /// diagnostics). Safe to cache without revalidation: the memo is
    /// frozen behind `&self` accessors after construction.
    pub fn topo_view(&self) -> &TopoView {
        self.topo_arc()
    }

    /// The shared handle behind [`BatchDag::topo_view`] (compiled engines
    /// hold clones of this `Arc`, so no arena is ever copied).
    fn topo_arc(&self) -> &Arc<TopoView> {
        self.topo.get_or_init(|| Arc::new(self.memo.topo_view()))
    }

    /// Compiles a [`BestCostEngine`] for this batch through the shared
    /// [`CompileCache`]: the first compile seeds the cache with
    /// [`BatchDag::topo_view`], and every recompile (e.g.
    /// [`crate::session::OptimizedBatch::run_all`] building one engine per
    /// strategy) skips the topological sort and reuses the compile scratch
    /// buffers.
    pub fn compile_engine(&self, cm: &dyn CostModel, config: MqoConfig) -> BestCostEngine {
        let mut cache = self.engine_cache.lock().expect("engine cache poisoned");
        cache.prime_topo(&self.memo, self.topo_arc());
        BestCostEngine::with_cache(
            &self.memo,
            cm,
            self.root,
            &self.shareable,
            config,
            &mut cache,
        )
    }
}

/// Shareable nodes: reachable from the batch root, with at least two
/// references from live parent operator nodes, excluding bare scans
/// (materializing a base relation is never useful — it already resides on
/// disk) and the root itself. References are counted with multiplicity:
/// one parent expression can reference the group twice (e.g. the batch
/// root when the same query is submitted twice, or a self-join of a shared
/// view).
///
/// Allocation-light by construction: one pass over the live expression
/// arena accumulates reference counts into a flat per-slot buffer, and one
/// DFS over group children marks reachability — no per-group parent-list
/// vectors (the pre-`Session` implementation called
/// `Memo::group_parents(g)`, which allocates and sorts a `Vec`, for every
/// reachable group).
fn find_shareable(memo: &Memo, root: GroupId) -> Vec<GroupId> {
    let n_slots = memo.n_group_slots();
    let root = memo.find(root);

    // Pass 1: reference counts, with multiplicity, over all live exprs.
    let mut refs = vec![0u32; n_slots];
    for e in memo.expr_ids() {
        for &c in memo.children(e) {
            refs[memo.find(c).0 as usize] += 1;
        }
    }

    // Pass 2: DFS reachability from the batch root, filtering as we go.
    let mut seen = vec![false; n_slots];
    let mut stack = vec![root];
    seen[root.0 as usize] = true;
    let mut out = Vec::new();
    while let Some(g) = stack.pop() {
        if g != root && refs[g.0 as usize] >= 2 {
            let is_bare_scan = memo
                .group_exprs(g)
                .all(|e| matches!(memo.op(e), LogicalOp::Scan(_)));
            if !is_bare_scan {
                out.push(g);
            }
        }
        for e in memo.group_exprs(g) {
            for &c in memo.children(e) {
                let c = memo.find(c);
                if !seen[c.0 as usize] {
                    seen[c.0 as usize] = true;
                    stack.push(c);
                }
            }
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqo_catalog::{Catalog, TableBuilder};
    use mqo_volcano::{Constraint, Predicate};

    fn ctx() -> DagContext {
        let mut cat = Catalog::new();
        for (name, rows) in [("a", 1000.0), ("b", 2000.0), ("c", 500.0), ("d", 800.0)] {
            cat.add_table(
                TableBuilder::new(name, rows)
                    .key_column(format!("{name}_key"), 4)
                    .column(
                        format!("{name}_fk"),
                        rows / 10.0,
                        (0, (rows as i64) / 10 - 1),
                        4,
                    )
                    .column(format!("{name}_x"), 10.0, (0, 9), 4)
                    .primary_key(&[&format!("{name}_key")])
                    .build(),
            );
        }
        DagContext::new(cat)
    }

    /// Example 1's structure: Q1 = A⋈B⋈C, Q2 = B⋈C⋈D.
    fn example1_queries(ctx: &mut DagContext) -> Vec<PlanNode> {
        let a = ctx.instance_by_name("a", 0);
        let b = ctx.instance_by_name("b", 0);
        let c = ctx.instance_by_name("c", 0);
        let d = ctx.instance_by_name("d", 0);
        let p_ab = Predicate::join(ctx.col(a, "a_key"), ctx.col(b, "b_fk"));
        let p_bc = Predicate::join(ctx.col(b, "b_key"), ctx.col(c, "c_fk"));
        let p_bd = Predicate::join(ctx.col(b, "b_key"), ctx.col(d, "d_fk"));
        let q1 = PlanNode::scan(a)
            .join(PlanNode::scan(b), p_ab)
            .join(PlanNode::scan(c), p_bc.clone());
        let q2 = PlanNode::scan(b)
            .join(PlanNode::scan(c), p_bc)
            .join(PlanNode::scan(d), p_bd);
        vec![q1, q2]
    }

    #[test]
    fn batch_has_root_and_query_roots() {
        let mut ctx = ctx();
        let queries = example1_queries(&mut ctx);
        let batch = BatchDag::build(ctx, &queries, &RuleSet::joins_only());
        assert_eq!(batch.query_roots().len(), 2);
        assert_ne!(batch.query_roots()[0], batch.query_roots()[1]);
        let root_children = batch.memo().group_children(batch.root());
        assert_eq!(root_children.len(), 2);
    }

    #[test]
    fn shared_join_is_shareable() {
        let mut ctx = ctx();
        let queries = example1_queries(&mut ctx);
        let batch = BatchDag::build(ctx, &queries, &RuleSet::joins_only());
        // The B⋈C group is a child of joins in both queries: must be in the
        // shareable universe.
        let bc = batch.shareable().iter().copied().find(|&g| {
            let leaves = &batch.memo().props(g).leaves;
            leaves.len() == 2
        });
        assert!(bc.is_some(), "B⋈C (a 2-leaf group) must be shareable");
    }

    #[test]
    fn scans_and_root_excluded() {
        let mut ctx = ctx();
        let queries = example1_queries(&mut ctx);
        let batch = BatchDag::build(ctx, &queries, &RuleSet::joins_only());
        assert!(!batch.shareable().contains(&batch.root()));
        for &g in batch.shareable() {
            let all_scans = batch
                .memo()
                .group_exprs(g)
                .all(|e| matches!(batch.memo().expr(e).op, LogicalOp::Scan(_)));
            assert!(!all_scans, "bare scan group {g:?} must not be shareable");
        }
    }

    #[test]
    fn selects_with_shared_subsumer_are_shareable() {
        let mut ctx = ctx();
        let a = ctx.instance_by_name("a", 0);
        let ax = ctx.col(a, "a_x");
        let akey = ctx.col(a, "a_key");
        let b = ctx.instance_by_name("b", 0);
        let p_ab = Predicate::join(ctx.col(a, "a_key"), ctx.col(b, "b_fk"));
        // Two single-table queries with different constants, joined against
        // b so the select groups have parents.
        let q1 = PlanNode::scan(a)
            .select(Predicate::on(ax, Constraint::eq(3)))
            .join(PlanNode::scan(b), p_ab.clone());
        let q2 = PlanNode::scan(a)
            .select(Predicate::on(ax, Constraint::eq(5)))
            .join(PlanNode::scan(b), p_ab);
        let _ = akey;
        let batch = BatchDag::build(ctx, &[q1, q2], &RuleSet::default());
        // The subsumer σ_{x∈{3,5}}(a) has two derivation parents: shareable.
        let has_subsumer = batch.shareable().iter().any(|&g| {
            batch.memo().group_exprs(g).any(|e| {
                matches!(&batch.memo().expr(e).op, LogicalOp::Select(p)
                    if p.constraints.values().any(|c| c.in_list.as_ref().is_some_and(|v| v.len() == 2)))
            })
        });
        assert!(has_subsumer, "IN-subsumer must be shareable");
    }

    #[test]
    fn shareable_index_maps_groups_to_universe_elements() {
        let mut ctx = ctx();
        let queries = example1_queries(&mut ctx);
        let batch = BatchDag::build(ctx, &queries, &RuleSet::default());
        for (e, &g) in batch.shareable().iter().enumerate() {
            assert_eq!(batch.shareable_index(g), Some(e));
        }
        assert_eq!(batch.shareable_index(batch.root()), None);
    }

    #[test]
    fn universe_is_deterministic() {
        let mut ctx1 = ctx();
        let q1 = example1_queries(&mut ctx1);
        let b1 = BatchDag::build(ctx1, &q1, &RuleSet::default());
        let mut ctx2 = ctx();
        let q2 = example1_queries(&mut ctx2);
        let b2 = BatchDag::build(ctx2, &q2, &RuleSet::default());
        assert_eq!(b1.shareable(), b2.shareable());
    }
}
