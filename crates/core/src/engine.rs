//! The `bestCost(Q, S)` oracle, compiled for speed.
//!
//! The greedy algorithms evaluate `bc(X ∪ {x})` for many candidates `x` per
//! iteration, so this engine compiles the expanded memo once — interesting
//! sort orders per group, physical implementation options with fixed
//! per-operator costs, dense topological indexing — and then evaluates any
//! materialized set with a bottom-up array DP:
//!
//! ```text
//! compute[g][o] = min over options (op cost + Σ use[child][o_child]),
//!                 and for o ≠ none also compute[g][none] + sort(g)
//! use[g][o]     = g ∈ S ? read[g][o] : compute[g][o]
//! bc(S)         = compute[root][none] + Σ_{s∈S} (compute[s][none] + write[s])
//! ```
//!
//! `compute[s]` uses the `use` costs of everything below `s`, so producing a
//! materialized node automatically exploits other materialized nodes — the
//! same semantics as Pyro's `bestCost` (which includes the cost of
//! computing and materializing the chosen set).
//!
//! # Memory layout
//!
//! All DP state lives in flat arenas in one CSR hierarchy over the dense
//! topological order of [`TopoView`]:
//!
//! ```text
//! group d   → states  state_off[d] .. state_off[d+1]   (one per sort order)
//! state s   → options opt_off[s]   .. opt_off[s+1]
//! option o  → children (flat state indices) child_off[o] .. child_off[o+1]
//! ```
//!
//! `base_compute` / `base_use` (indexed by state) hold the DP solution of
//! the committed base set. The incremental evaluator (the third
//! optimization of Section 5.1, inherited from Roy et al.) recomputes only
//! the ancestor cone of the groups whose membership changed, writing into
//! epoch-stamped scratch arenas owned by the engine: a state's scratch
//! value is live iff its stamp equals the current evaluation epoch, so the
//! overlay is discarded by bumping one counter — the incremental path
//! performs no allocation at steady state (every buffer is reused across
//! calls).
//!
//! [`BestCostEngine::bc_many`] additionally evaluates a whole batch of
//! candidate sets (a greedy round) against one shared base: it rebases to
//! the intersection of the batch once, then answers every candidate from a
//! minimal overlay.
//!
//! # Sharded evaluation
//!
//! All of the mutable per-evaluation state (overlay arenas, epoch stamps,
//! dirty-cone worklist, diff buffer) lives in an [`EngineScratch`], while
//! the compiled arenas and the committed base are immutable during a batch.
//! With [`MqoConfig::threads`] > 1 (or the `MQO_THREADS` environment
//! variable), [`BestCostEngine::bc_many`] rebases once to the round's
//! shared intersection and then fans the candidates out over
//! `std::thread::scope` workers, each with its own scratch over `&self`'s
//! shared arenas. Every candidate is evaluated from the same committed
//! base (no cross-candidate base drift in sharded mode), and the overlay
//! DP is bit-exact with respect to the full solve, so sharded results are
//! **bit-identical** to the serial path at every thread count.

use std::borrow::Cow;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use mqo_submod::bitset::BitSet;
use mqo_volcano::cost::CostModel;
use mqo_volcano::logical::LogicalOp;
use mqo_volcano::memo::{ExprId, GroupId, Memo, TopoView};
use mqo_volcano::physical::{PhysOp, SortOrder};

pub use crate::config::MqoConfig;

/// Integer type of the overlay epoch stamps. The engine uses `u64`; tests
/// substitute a deliberately tiny type to exercise the wrap path, which
/// clears every stamped array instead of relying on the counter never
/// wrapping.
pub trait EpochInt: Copy + Eq + Send + std::fmt::Debug {
    /// The stamp every scratch array starts at (and is cleared back to).
    const ZERO: Self;
    /// The last epoch before a wrap must reset the stamps.
    const MAX: Self;
    /// The next epoch. Only called strictly below [`Self::MAX`]: the wrap
    /// is handled by [`EngineScratch`] clearing the stamps first.
    fn succ(self) -> Self;
}

impl EpochInt for u64 {
    const ZERO: Self = 0;
    const MAX: Self = u64::MAX;
    fn succ(self) -> Self {
        self + 1
    }
}

#[cfg(test)]
impl EpochInt for u8 {
    const ZERO: Self = 0;
    const MAX: Self = u8::MAX;
    fn succ(self) -> Self {
        self + 1
    }
}

/// The mutable per-evaluation state of a [`BestCostEngine`]: the overlay
/// arenas, their epoch stamps, the dirty-cone worklist, and the diff
/// buffer. Everything else in the engine is immutable during a batch, so
/// sharded [`BestCostEngine::bc_many`] hands each worker thread its own
/// `EngineScratch` over the shared arenas.
#[derive(Clone, Debug, Default)]
pub struct EngineScratch<E: EpochInt = u64> {
    /// Overlay `compute` values (live iff the state's stamp is current).
    compute: Vec<f64>,
    /// Overlay `use` values (live iff the state's stamp is current).
    use_: Vec<f64>,
    /// Per-state epoch stamp.
    state_epoch: Vec<E>,
    /// Current evaluation epoch.
    epoch: E,
    /// Reusable dirty-cone worklist (min-heap over dense indices).
    dirty: BinaryHeap<Reverse<u32>>,
    /// Per-group queued stamp for the worklist.
    queued_epoch: Vec<E>,
    /// Reusable symmetric-difference buffer.
    diff_buf: Vec<usize>,
    /// Full evaluations performed through this scratch.
    full_evals: u64,
    /// Incremental (base/overlay) evaluations through this scratch.
    incremental_evals: u64,
}

impl<E: EpochInt> EngineScratch<E> {
    /// A zeroed scratch for `n_states` DP states over `n_groups` groups.
    fn new(n_states: usize, n_groups: usize) -> Self {
        EngineScratch {
            compute: vec![0.0; n_states],
            use_: vec![0.0; n_states],
            state_epoch: vec![E::ZERO; n_states],
            epoch: E::ZERO,
            dirty: BinaryHeap::new(),
            queued_epoch: vec![E::ZERO; n_groups],
            diff_buf: Vec::new(),
            full_evals: 0,
            incremental_evals: 0,
        }
    }

    /// Starts a new overlay evaluation and returns its epoch. When the
    /// counter would wrap past [`EpochInt::MAX`], every stamped array is
    /// explicitly cleared first — stale stamps can therefore never collide
    /// with a post-wrap epoch, no matter how small the epoch type is.
    fn advance_epoch(&mut self) -> E {
        if self.epoch == E::MAX {
            self.invalidate();
        }
        self.epoch = self.epoch.succ();
        self.epoch
    }

    /// Clears every epoch stamp and resets the counter. Called on epoch
    /// wrap and on rebase: after a rebase the overlay values are relative
    /// to a dead base, so dropping all stamps (rather than trusting that
    /// epochs only grow) keeps the live-value invariant independent of the
    /// counter's history.
    fn invalidate(&mut self) {
        self.state_epoch.fill(E::ZERO);
        self.queued_epoch.fill(E::ZERO);
        self.epoch = E::ZERO;
    }
}

/// Output order of a compiled option: fixed, or inherited from the first
/// child's natural order (order-preserving operators like Filter).
#[derive(Clone, Debug)]
pub(crate) enum OutOrder {
    Fixed(SortOrder),
    InheritChild0,
}

/// Reusable compilation state for [`BestCostEngine::with_cache`]: the
/// memo's [`TopoView`] (rebuilt only when the memo's fingerprint changes)
/// plus the scratch buffers of the counted CSR build. Recompiling the same
/// memo through one cache — as [`crate::batch::BatchDag::compile_engine`]
/// does — skips the topological sort entirely and reuses every temporary
/// buffer, so a recompile allocates only the engine's own arenas.
#[derive(Debug, Default)]
pub struct CompileCache {
    topo: Option<Arc<TopoView>>,
    /// Fingerprint of the memo the cached view was built from.
    sig: (usize, usize, usize, u64),
    /// Per-state emitted-option counts (counted pass).
    opt_cnt: Vec<u32>,
    /// Emission-order option records: owning state, operator cost, output
    /// order, and children (flat, with offsets).
    tmp_state: Vec<u32>,
    tmp_cost: Vec<f64>,
    tmp_out: Vec<OutOrder>,
    /// Emission-order plan provenance: the memo expression and physical
    /// operator each option implements (consumed by plan extraction).
    tmp_phys: Vec<(ExprId, PhysOp)>,
    tmp_child: Vec<u32>,
    tmp_child_off: Vec<u32>,
    /// Emission index → final (state-sorted) option slot.
    pos: Vec<u32>,
    cursor: Vec<u32>,
    child_cnt: Vec<u32>,
    /// Flat state index → dense group index.
    group_of_state: Vec<u32>,
}

impl CompileCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// A cheap fingerprint of the memo's structure: any insert grows the
    /// allocation count, any merge shrinks the live-*group* count (even
    /// when no expression is tombstoned), and tombstoning shrinks the
    /// live-expression count. The fourth component is the memo's monotone
    /// delta epoch ([`Memo::version`]): batch evolution can rewind the
    /// arenas to a state whose three counts alias an earlier compile
    /// (savepoint rollback restores them exactly), but the version never
    /// decreases, so a cached view can never be served across *any*
    /// mutation — including a rollback or reset.
    pub(crate) fn signature(memo: &Memo) -> (usize, usize, usize, u64) {
        (
            memo.exprs_allocated(),
            memo.n_groups(),
            memo.n_exprs(),
            memo.version(),
        )
    }

    /// The cached [`TopoView`] for `memo`, rebuilding it when the memo
    /// changed since the last compile. The view is shared by `Arc`, so
    /// handing it to an engine copies a pointer, not the arenas.
    fn topo_for(&mut self, memo: &Memo) -> Arc<TopoView> {
        let sig = Self::signature(memo);
        if self.topo.is_none() || self.sig != sig {
            self.topo = Some(Arc::new(memo.topo_view()));
            self.sig = sig;
        }
        Arc::clone(self.topo.as_ref().expect("just ensured"))
    }

    /// Seeds the cached view from an externally computed one (cloning it),
    /// so the first compile through this cache skips the topological sort
    /// too.
    ///
    /// **Contract:** `topo` must have been built from `memo` in its
    /// *current* state — the cache stamps it with the current fingerprint
    /// and cannot tell a stale view apart from a fresh one. The only
    /// in-repo caller, `BatchDag::compile_engine`, enforces this by
    /// fingerprinting the memo when its `TopoView` is first computed and
    /// asserting the memo is unchanged on every later access.
    pub fn prime_topo(&mut self, memo: &Memo, topo: &Arc<TopoView>) {
        let sig = Self::signature(memo);
        if self.topo.is_none() || self.sig != sig {
            self.topo = Some(Arc::clone(topo));
            self.sig = sig;
        }
    }
}

/// Sentinel in `opt_c0`/`opt_c1`: this child slot is absent.
const OPT_NONE: u32 = u32::MAX;
/// Sentinel in `opt_c0`: the option has more than two children; its child
/// list lives in the `child_off`/`opt_children` CSR.
const OPT_SPILL: u32 = u32::MAX - 1;

/// Every immutable post-compile artifact of the `bestCost` engine: the
/// CSR option arenas, per-state read/write/sort costs, the dense universe
/// maps, plan provenance, and the solved `S = ∅` state. Compiled once per
/// batch commit and shared by `Arc` — a [`BestCostEngine`] is a thin
/// per-caller handle over these arenas (its own base arenas + scratch),
/// so concurrent readers each spin up a handle from the same snapshot
/// without recompiling or blocking each other.
pub struct EngineArenas {
    /// Dense topological view of the memo (shared with the compile cache
    /// and the batch; owns the parent adjacency used for dirty-cone
    /// propagation).
    pub(crate) topo: Arc<TopoView>,
    /// Group → state range (CSR offsets; one state per interesting order,
    /// index 0 is always the unordered requirement).
    pub(crate) state_off: Vec<u32>,
    /// State → option range.
    pub(crate) opt_off: Vec<u32>,
    /// Per-option constant operator cost.
    pub(crate) opt_cost: Vec<f64>,
    /// Option → children range.
    pub(crate) child_off: Vec<u32>,
    /// Flat child state indices.
    pub(crate) opt_children: Vec<u32>,
    /// Packed first/second child state per option (SoA, hot). Almost every
    /// option has ≤ 2 children (scans 0, selects/aggregates 1, joins 2), so
    /// the DP inner loop reads these two flat arrays instead of chasing
    /// `child_off` → `opt_children` — one indirection and one cache line
    /// less per option at 10k+ states. [`OPT_NONE`] marks an absent slot;
    /// [`OPT_SPILL`] in `opt_c0` sends the rare wide option (the batch
    /// root) back to the CSR arenas.
    pub(crate) opt_c0: Vec<u32>,
    pub(crate) opt_c1: Vec<u32>,
    /// Per-state cost of reading the materialized result.
    pub(crate) read: Vec<f64>,
    /// Per-group cost of writing the result once.
    pub(crate) write: Vec<f64>,
    /// Per-group cost of sorting the result (for enforcers).
    pub(crate) sort: Vec<f64>,
    /// Dense index of the batch root.
    pub(crate) root: u32,
    /// Universe: element `i` of the shareable set ↔ dense index.
    pub(crate) universe_dense: Vec<u32>,
    /// Dense index → universe element (u32::MAX when not in the universe).
    elem_of_dense: Vec<u32>,
    /// Plan provenance per option (final slot order): the memo expression
    /// and physical operator the option implements. Cold arenas — plan
    /// extraction reads them, the `bc` hot path never does.
    pub(crate) opt_phys: Vec<(ExprId, PhysOp)>,
    /// Output order per option (final slot order), for extraction.
    pub(crate) opt_out: Vec<OutOrder>,
    /// The sort-order requirement of each DP state (flat, per state).
    pub(crate) state_order: Vec<SortOrder>,
    /// Natural storage order of each group's cheapest (`S = ∅`) production
    /// plan — the order a materialized copy is written out in.
    pub(crate) natural_order: Vec<SortOrder>,
    /// Flat state index → dense group index.
    pub(crate) group_of_state: Vec<u32>,
    /// Per-universe-element standalone materialization cost under `S = ∅`:
    /// cheapest compute of the element's group plus its write cost. Free at
    /// compile time (the ∅ solve already runs for natural-order
    /// resolution); drives the cost-based decomposition of the
    /// universe-reduction pre-pass.
    pub(crate) mat_cost: Vec<f64>,
    /// Estimated output rows per dense group, copied out of the memo's
    /// logical properties at compile time so plan extraction over a
    /// snapshot never reaches back into the (mutable) memo.
    pub(crate) rows: Vec<f64>,
    /// The solved `S = ∅` DP state (per-state compute/use arenas and the
    /// no-sharing total). Handles clone these as their initial committed
    /// base, so spinning up a per-caller engine from a snapshot is two
    /// `memcpy`s — no DP solve.
    empty_compute: Vec<f64>,
    empty_use: Vec<f64>,
    empty_total: f64,
}

/// The compiled `bestCost` engine: a per-caller handle over shared
/// immutable [`EngineArenas`] (reached through `Deref`) plus the caller's
/// own mutable state — the committed base set/arenas and the epoch-stamped
/// overlay scratch. See the module docs for the arena layout.
pub struct BestCostEngine {
    /// The shared immutable compiled arenas. `Deref` exposes their fields
    /// and methods directly on the engine.
    arenas: Arc<EngineArenas>,
    /// Base state: the committed materialized set and its DP solution
    /// (flat, indexed by state).
    base_set: BitSet,
    base_compute: Vec<f64>,
    base_use: Vec<f64>,
    /// `bc(base_set)` — the full element-sum total over the committed
    /// base, refreshed at every commit. Overlay evaluations answer
    /// `base_total + Δ`, accumulating `Δ` along the dirty cone instead of
    /// re-summing the whole materialized set per evaluation (the
    /// per-element sum is `O(|S|)` with cache-hostile indirection, and at
    /// hundreds of materializations it dominates the cone DP itself).
    base_total: f64,
    /// Epoch-stamped overlay scratch (reused across serial evaluations; a
    /// state's scratch value is live iff its stamp equals the current
    /// epoch).
    scratch: EngineScratch,
    /// Pooled per-worker scratches for sharded batches, reused across
    /// rounds (grown on demand, counters folded into `scratch` and reset
    /// after each round). Stale overlay stamps are harmless across rounds:
    /// each scratch's epoch only grows (the wrap path clears the stamps),
    /// so a stale stamp never equals a later evaluation's epoch.
    worker_scratches: Vec<EngineScratch>,
    /// Pooled buffer for the per-round shared-intersection base of
    /// [`Self::bc_many`], reused across rounds instead of cloning the
    /// first candidate every round.
    shared_buf: BitSet,
    /// Universe epoch of the batch state this engine was compiled against
    /// (0 for engines compiled outside an evolvable batch). Memoized
    /// oracle layers key their caches on it so a universe resize across an
    /// evolution step can never serve a stale bitset evaluation.
    universe_epoch: u64,
    /// Evaluation strategy knobs.
    pub config: MqoConfig,
}

impl BestCostEngine {
    /// Compiles the engine for a memo, cost model, and shareable universe
    /// with the default [`MqoConfig`].
    pub fn new(memo: &Memo, cm: &dyn CostModel, root: GroupId, universe: &[GroupId]) -> Self {
        Self::with_config(memo, cm, root, universe, MqoConfig::default())
    }

    /// Compiles the engine with an explicit [`MqoConfig`].
    pub fn with_config(
        memo: &Memo,
        cm: &dyn CostModel,
        root: GroupId,
        universe: &[GroupId],
        config: MqoConfig,
    ) -> Self {
        Self::with_cache(memo, cm, root, universe, config, &mut CompileCache::new())
    }

    /// Universe epoch of the batch state this engine was compiled against
    /// (see [`crate::batch::BatchDag::universe_epoch`]); 0 for engines
    /// compiled directly, outside an evolvable batch.
    pub fn universe_epoch(&self) -> u64 {
        self.universe_epoch
    }

    /// Stamps the engine with its batch's universe epoch; called by
    /// `BatchDag::compile_engine` so memoized oracle layers over this
    /// engine can invalidate when the universe evolves.
    pub fn set_universe_epoch(&mut self, epoch: u64) {
        self.universe_epoch = epoch;
    }

    /// Compiles the engine through a reusable [`CompileCache`]: the cached
    /// [`TopoView`] is reused whenever the memo is unchanged since the last
    /// compile, and every temporary buffer of the counted CSR build is
    /// recycled. This is the recompile path
    /// [`crate::batch::BatchDag::compile_engine`] uses.
    pub fn with_cache(
        memo: &Memo,
        cm: &dyn CostModel,
        root: GroupId,
        universe: &[GroupId],
        config: MqoConfig,
        cache: &mut CompileCache,
    ) -> Self {
        Self::from_arenas(
            Arc::new(EngineArenas::compile(memo, cm, root, universe, cache)),
            config,
        )
    }

    /// A fresh per-caller handle over already-compiled shared arenas: the
    /// committed base starts at the stored `S = ∅` solution (two array
    /// copies, no DP solve), with a zeroed scratch. This is how snapshot
    /// readers ([`EngineState::engine`]) spin up engines without
    /// recompiling — and what the serve bench reports as snapshot-clone
    /// cost.
    pub fn from_arenas(arenas: Arc<EngineArenas>, config: MqoConfig) -> Self {
        let n_states = arenas.n_states();
        let n_groups = arenas.topo.len();
        let u = arenas.universe_size();
        BestCostEngine {
            base_set: BitSet::empty(u),
            base_compute: arenas.empty_compute.clone(),
            base_use: arenas.empty_use.clone(),
            base_total: arenas.empty_total,
            scratch: EngineScratch::new(n_states, n_groups),
            worker_scratches: Vec::new(),
            shared_buf: BitSet::empty(u),
            universe_epoch: 0,
            config,
            arenas,
        }
    }

    /// The shared immutable arenas this handle evaluates over.
    pub fn arenas(&self) -> &Arc<EngineArenas> {
        &self.arenas
    }
}

/// Field and method access on a [`BestCostEngine`] falls through to its
/// shared arenas: the split moved every immutable artifact behind an
/// `Arc`, and `Deref` keeps the hot-path code (and its callers) reading
/// `self.state_off`-style exactly as before.
impl std::ops::Deref for BestCostEngine {
    type Target = EngineArenas;
    fn deref(&self) -> &EngineArenas {
        &self.arenas
    }
}

impl EngineArenas {
    /// Compiles the immutable arenas for a memo, cost model, and shareable
    /// universe through a reusable [`CompileCache`]: the cached
    /// [`TopoView`] is reused whenever the memo is unchanged since the
    /// last compile, and every temporary buffer of the counted CSR build
    /// is recycled.
    pub(crate) fn compile(
        memo: &Memo,
        cm: &dyn CostModel,
        root: GroupId,
        universe: &[GroupId],
        cache: &mut CompileCache,
    ) -> EngineArenas {
        let topo = cache.topo_for(memo);
        let n = topo.len();

        // 1. Interesting orders per group: demanded by join/aggregate
        // parents, propagated down through order-preserving selects (the
        // fixpoint iterates a pre-collected select list, not the memo).
        // Per-group lists stay deduplicated Vecs (2–4 entries each) and are
        // sorted once at the end: the sorted order is canonical — it must
        // not depend on memo expression enumeration order, or an evolved
        // batch and a fresh rebuild of the same queries would break
        // equal-cost ties between plans differently.
        let mut orders: Vec<Vec<SortOrder>> = vec![vec![SortOrder::none()]; n];
        let push_order = |orders: &mut Vec<Vec<SortOrder>>, d: usize, o: SortOrder| {
            if !orders[d].contains(&o) {
                orders[d].push(o);
            }
        };
        let mut selects: Vec<(usize, usize)> = Vec::new();
        for e in memo.expr_ids() {
            match memo.op(e) {
                LogicalOp::Join(pred) => {
                    let ch = memo.children(e);
                    let (l, r) = (memo.find(ch[0]), memo.find(ch[1]));
                    if let Some((lk, rk)) = join_keys(memo, pred, l, r) {
                        push_order(&mut orders, topo.dense(l) as usize, SortOrder::on(lk));
                        push_order(&mut orders, topo.dense(r) as usize, SortOrder::on(rk));
                    }
                }
                LogicalOp::Aggregate(spec) if !spec.is_scalar() => {
                    let c = memo.children(e)[0];
                    push_order(
                        &mut orders,
                        topo.dense(c) as usize,
                        SortOrder::on(spec.group_by.clone()),
                    );
                }
                LogicalOp::Select(_) => {
                    let g = topo.dense(memo.group_of(e)) as usize;
                    let c = topo.dense(memo.children(e)[0]) as usize;
                    if g != c {
                        selects.push((g, c));
                    }
                }
                _ => {}
            }
        }
        // Propagate demands down through selects until fixpoint.
        loop {
            let mut changed = false;
            for &(g, c) in &selects {
                for i in 0..orders[g].len() {
                    let o = &orders[g][i];
                    if !orders[c].contains(o) {
                        let o = o.clone();
                        orders[c].push(o);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let orders: Vec<Vec<SortOrder>> = orders
            .into_iter()
            .map(|mut v| {
                v.sort_unstable();
                // Sorting puts the empty order first already, but be
                // explicit: index 0 must be the unordered requirement.
                if let Some(pos) = v.iter().position(SortOrder::is_none) {
                    v.swap(0, pos);
                }
                v
            })
            .collect();

        // 2. State offsets: one counted pass over the per-group order
        // lists, no per-state pushes downstream.
        let blocks: Vec<f64> = topo
            .order()
            .iter()
            .map(|&g| memo.props(g).blocks(cm.block_size()))
            .collect();
        let mut state_off: Vec<u32> = Vec::with_capacity(n + 1);
        state_off.push(0);
        for g_orders in &orders {
            state_off.push(state_off.last().unwrap() + g_orders.len() as u32);
        }
        let n_states = *state_off.last().unwrap() as usize;

        let CompileCache {
            opt_cnt,
            tmp_state,
            tmp_cost,
            tmp_out,
            tmp_phys,
            tmp_child,
            tmp_child_off,
            pos,
            cursor,
            child_cnt,
            group_of_state,
            ..
        } = cache;
        group_of_state.clear();
        group_of_state.resize(n_states, 0);
        for gi in 0..n {
            let (s0, s1) = (state_off[gi] as usize, state_off[gi + 1] as usize);
            group_of_state[s0..s1].fill(gi as u32);
        }

        // 3. Emission pass: every expression's physical options are emitted
        // once into flat reusable buffers (state, cost, out-order, child
        // state indices), counting options per state as we go — no nested
        // per-state vectors, no per-option allocations.
        opt_cnt.clear();
        opt_cnt.resize(n_states, 0);
        tmp_state.clear();
        tmp_cost.clear();
        tmp_out.clear();
        tmp_phys.clear();
        tmp_child.clear();
        tmp_child_off.clear();
        tmp_child_off.push(0);
        for (gi, &g) in topo.order().iter().enumerate() {
            let s_base = state_off[gi] as usize;
            for e in memo.group_exprs(g) {
                let mut emit =
                    |j: usize, cost: f64, children: &[(u32, u8)], out: OutOrder, phys: PhysOp| {
                        let s = s_base + j;
                        opt_cnt[s] += 1;
                        tmp_state.push(s as u32);
                        tmp_cost.push(cost);
                        tmp_out.push(out);
                        tmp_phys.push((e, phys));
                        for &(cg, cj) in children {
                            tmp_child.push(state_off[cg as usize] + cj as u32);
                        }
                        tmp_child_off.push(tmp_child.len() as u32);
                    };
                compile_expr(memo, cm, e, gi, &topo, &orders, &blocks, &mut emit);
            }
        }

        // 4. Final CSR arenas by counting placement: `opt_off` from the
        // per-state counts, a stable scatter of the emitted records into
        // state order, then the children arena from the per-slot counts.
        let n_opts = tmp_cost.len();
        let mut opt_off: Vec<u32> = Vec::with_capacity(n_states + 1);
        opt_off.push(0);
        for s in 0..n_states {
            opt_off.push(opt_off[s] + opt_cnt[s]);
        }
        cursor.clear();
        cursor.extend_from_slice(&opt_off[..n_states]);
        pos.clear();
        pos.resize(n_opts, 0);
        for k in 0..n_opts {
            let s = tmp_state[k] as usize;
            pos[k] = cursor[s];
            cursor[s] += 1;
        }
        child_cnt.clear();
        child_cnt.resize(n_opts, 0);
        for k in 0..n_opts {
            child_cnt[pos[k] as usize] = tmp_child_off[k + 1] - tmp_child_off[k];
        }
        let mut child_off: Vec<u32> = Vec::with_capacity(n_opts + 1);
        child_off.push(0);
        for o in 0..n_opts {
            child_off.push(child_off[o] + child_cnt[o]);
        }
        let mut opt_cost: Vec<f64> = vec![0.0; n_opts];
        let mut opt_children: Vec<u32> = vec![0; *child_off.last().unwrap() as usize];
        let mut opt_out: Vec<OutOrder> = vec![OutOrder::InheritChild0; n_opts];
        let mut opt_phys: Vec<Option<(ExprId, PhysOp)>> = vec![None; n_opts];
        for k in 0..n_opts {
            let slot = pos[k] as usize;
            opt_cost[slot] = tmp_cost[k];
            let (cs, ce) = (tmp_child_off[k] as usize, tmp_child_off[k + 1] as usize);
            let dst = child_off[slot] as usize;
            opt_children[dst..dst + (ce - cs)].copy_from_slice(&tmp_child[cs..ce]);
        }
        // Out-order and provenance records own heap data (sort keys, scan
        // names): scatter them by move so the engine arenas take ownership
        // of the emitted records instead of cloning every option.
        for (k, out) in tmp_out.drain(..).enumerate() {
            opt_out[pos[k] as usize] = out;
        }
        for (k, p) in tmp_phys.drain(..).enumerate() {
            opt_phys[pos[k] as usize] = Some(p);
        }
        let opt_phys: Vec<(ExprId, PhysOp)> = opt_phys
            .into_iter()
            .map(|p| p.expect("every option slot scattered"))
            .collect();

        debug_assert!(
            n_states < OPT_SPILL as usize,
            "state count collides with packed-child sentinels"
        );
        let mut opt_c0: Vec<u32> = vec![OPT_NONE; n_opts];
        let mut opt_c1: Vec<u32> = vec![OPT_NONE; n_opts];
        for o in 0..n_opts {
            let (cs, ce) = (child_off[o] as usize, child_off[o + 1] as usize);
            match ce - cs {
                0 => {}
                1 => opt_c0[o] = opt_children[cs],
                2 => {
                    opt_c0[o] = opt_children[cs];
                    opt_c1[o] = opt_children[cs + 1];
                }
                _ => opt_c0[o] = OPT_SPILL,
            }
        }

        let mut read: Vec<f64> = Vec::with_capacity(n_states);
        let mut write: Vec<f64> = Vec::with_capacity(n);
        let mut sort: Vec<f64> = Vec::with_capacity(n);
        for gi in 0..n {
            // Read costs are finalized after the natural storage orders are
            // known (see below); start with the plain read cost.
            read.extend(std::iter::repeat_n(
                cm.materialize_read(blocks[gi]),
                orders[gi].len(),
            ));
            write.push(cm.materialize_write(blocks[gi]));
            sort.push(cm.sort(blocks[gi]));
        }

        let universe_dense: Vec<u32> = universe.iter().map(|&g| topo.dense(g)).collect();
        let mut elem_of_dense = vec![u32::MAX; n];
        for (i, &d) in universe_dense.iter().enumerate() {
            elem_of_dense[d as usize] = i as u32;
        }

        let root = topo.dense(root);
        let state_order: Vec<SortOrder> = orders.iter().flatten().cloned().collect();
        let rows: Vec<f64> = topo.order().iter().map(|&g| memo.props(g).rows).collect();
        let mut arenas = EngineArenas {
            topo,
            state_off,
            opt_off,
            opt_cost,
            child_off,
            opt_children,
            opt_c0,
            opt_c1,
            read,
            write,
            sort,
            root,
            universe_dense,
            elem_of_dense,
            opt_phys,
            opt_out,
            state_order,
            natural_order: Vec::new(),
            group_of_state: group_of_state.clone(),
            mat_cost: Vec::new(),
            rows,
            empty_compute: Vec::new(),
            empty_use: Vec::new(),
            empty_total: 0.0,
        };
        // Solve the no-materialization state once; the winning production
        // plans determine the natural order each result would be stored in
        // (materialized results are written out by their cheapest production
        // plan; consumers whose demanded order is a prefix of the stored
        // order read them without sorting).
        let mut compute = Vec::new();
        let mut use_ = Vec::new();
        arenas.full_solve_into(&BitSet::empty(universe.len()), &mut compute, &mut use_);
        let natural = arenas.resolve_natural_orders(&use_);
        for (gi, nat) in natural.iter().enumerate() {
            let s0 = arenas.state_off[gi] as usize;
            for (j, req) in orders[gi].iter().enumerate() {
                if !nat.satisfies(req) {
                    arenas.read[s0 + j] += arenas.sort[gi];
                }
            }
        }
        arenas.natural_order = natural;
        arenas.mat_cost = arenas
            .universe_dense
            .iter()
            .map(|&d| compute[arenas.state_off[d as usize] as usize] + arenas.write[d as usize])
            .collect();
        // The solved ∅ state is kept in the arenas: every handle starts
        // its committed base from these by copy.
        arenas.empty_total = arenas.total_from_slice(&BitSet::empty(universe.len()), &compute);
        arenas.empty_compute = compute;
        arenas.empty_use = use_;
        arenas
    }

    /// Standalone (`S = ∅`) materialization cost of each universe element:
    /// compute-from-scratch plus write. This is the additive cost vector
    /// the cost-based decomposition of the universe-reduction pre-pass
    /// uses.
    pub fn materialization_costs(&self) -> &[f64] {
        &self.mat_cost
    }

    /// Resolves the natural output order of each group's winning
    /// (unordered-requirement) production plan, bottom-up over the final
    /// flat arenas. `use_` must be the solved state for `S = ∅`.
    fn resolve_natural_orders(&self, use_: &[f64]) -> Vec<SortOrder> {
        let n = self.topo.len();
        let mut natural: Vec<SortOrder> = Vec::with_capacity(n);
        for d in 0..n {
            let s0 = self.state_off[d] as usize;
            let mut best: Option<(f64, usize)> = None;
            for o in self.opt_off[s0] as usize..self.opt_off[s0 + 1] as usize {
                let mut cost = 0.0;
                for &c in
                    &self.opt_children[self.child_off[o] as usize..self.child_off[o + 1] as usize]
                {
                    cost += use_[c as usize];
                }
                cost += self.opt_cost[o];
                if best.is_none_or(|(b, _)| cost < b) {
                    best = Some((cost, o));
                }
            }
            let order = match best {
                Some((_, o)) => match &self.opt_out[o] {
                    OutOrder::Fixed(order) => order.clone(),
                    OutOrder::InheritChild0 => {
                        let child_state = self.opt_children[self.child_off[o] as usize] as usize;
                        let child = self.group_of_state[child_state] as usize;
                        debug_assert!(child < d, "children precede parents");
                        natural[child].clone()
                    }
                },
                None => SortOrder::none(),
            };
            natural.push(order);
        }
        natural
    }

    /// The shareable universe size.
    pub fn universe_size(&self) -> usize {
        self.universe_dense.len()
    }

    /// The group at a dense (topological) index — diagnostics helper.
    pub fn dense_group(&self, d: usize) -> GroupId {
        self.topo.group_at(d)
    }

    /// Number of compiled `(group, order)` DP states.
    pub fn n_states(&self) -> usize {
        self.read.len()
    }

    /// Solves the full DP for `set` into fresh `(compute, use)` arenas for
    /// plan extraction, returning the sanitized set alongside them. The
    /// committed base and the overlay scratch are untouched — extraction
    /// never perturbs the oracle's incremental state.
    pub(crate) fn solve_for_extraction(&self, set: &BitSet) -> (BitSet, Vec<f64>, Vec<f64>) {
        let set = self.sanitize(set).into_owned();
        let mut compute = Vec::new();
        let mut use_ = Vec::new();
        self.full_solve_into(&set, &mut compute, &mut use_);
        (set, compute, use_)
    }

    /// Whether dense group `d` is materialized under `set` (extraction
    /// helper; `set` must be over this engine's universe).
    pub(crate) fn materialized(&self, d: usize, set: &BitSet) -> bool {
        self.in_set(d, set)
    }

    /// A fresh, zeroed scratch sized for this engine's arenas. The engine
    /// owns one for serial evaluation; sharded [`Self::bc_many`] creates
    /// one per worker thread.
    fn new_scratch<E: EpochInt>(&self) -> EngineScratch<E> {
        EngineScratch::new(self.n_states(), self.topo.len())
    }

    /// Validates a candidate set against the engine's shareable universe.
    ///
    /// A bit at or above [`Self::universe_size`] has no dense-map entry and
    /// would index past `universe_dense`. Debug builds assert on any
    /// universe mismatch; release builds **truncate** — out-of-range bits
    /// are ignored (and a smaller universe is zero-extended), so `bc` of a
    /// malformed set equals `bc` of its in-range projection.
    fn sanitize<'a>(&self, set: &'a BitSet) -> Cow<'a, BitSet> {
        let n = self.universe_size();
        debug_assert_eq!(
            set.universe(),
            n,
            "candidate set universe {} does not match the engine's shareable universe {n} \
             (bits >= {n} are ignored in release builds)",
            set.universe(),
        );
        self.truncate_to_universe(set)
    }

    /// The release-mode truncation behind [`Self::sanitize`]: projects a
    /// set of any universe onto the engine's, dropping bits at or above
    /// [`Self::universe_size`] and zero-extending smaller universes.
    fn truncate_to_universe<'a>(&self, set: &'a BitSet) -> Cow<'a, BitSet> {
        let n = self.universe_size();
        if set.universe() == n {
            Cow::Borrowed(set)
        } else {
            Cow::Owned(BitSet::from_iter(n, set.iter().filter(|&e| e < n)))
        }
    }

    /// `bc(S)` from a fully solved per-state compute arena.
    pub(crate) fn total_from_slice(&self, set: &BitSet, compute: &[f64]) -> f64 {
        let mut total = compute[self.state_off[self.root as usize] as usize];
        for e in set.iter() {
            let d = self.universe_dense[e] as usize;
            total += compute[self.state_off[d] as usize] + self.write[d];
        }
        total
    }

    /// Whether dense group `d` is materialized under `set`.
    fn in_set(&self, d: usize, set: &BitSet) -> bool {
        let e = self.elem_of_dense[d];
        e != u32::MAX && set.contains(e as usize)
    }

    /// Full evaluation without committing: solves into the scratch's
    /// overlay arenas (reused, never reallocated) and totals from them.
    fn full_eval_with<E: EpochInt>(&self, scratch: &mut EngineScratch<E>, set: &BitSet) -> f64 {
        let mut compute = std::mem::take(&mut scratch.compute);
        let mut use_ = std::mem::take(&mut scratch.use_);
        self.full_solve_into(set, &mut compute, &mut use_);
        let total = self.total_from_slice(set, &compute);
        // Stale epoch stamps never equal a later epoch (the wrap path
        // clears them), so clobbering the overlay values cannot leak into
        // later overlay evaluations.
        scratch.compute = compute;
        scratch.use_ = use_;
        total
    }

    /// Full bottom-up DP into caller-provided arenas (resized to fit).
    fn full_solve_into(&self, set: &BitSet, compute: &mut Vec<f64>, use_: &mut Vec<f64>) {
        let n_states = self.n_states();
        compute.clear();
        compute.resize(n_states, 0.0);
        use_.clear();
        use_.resize(n_states, 0.0);
        for d in 0..self.topo.len() {
            let s0 = self.state_off[d] as usize;
            let s1 = self.state_off[d + 1] as usize;
            let materialized = self.in_set(d, set);
            // Children live in strictly earlier groups, so their `use` costs
            // are fully resolved in the prefix below `s0`.
            let (use_done, use_cur) = use_.split_at_mut(s0);
            for s in s0..s1 {
                let best = self.best_option(s, |c| use_done[c]);
                let best = if s > s0 {
                    best.min(compute[s0] + self.sort[d])
                } else {
                    best
                };
                compute[s] = best;
                use_cur[s - s0] = if materialized {
                    self.read[s].min(best)
                } else {
                    best
                };
            }
        }
    }

    /// `min` over the options of state `s` given resolved child `use`
    /// costs. Children are summed first (in child order) and the operator
    /// cost added last — the same association the reference optimizer uses
    /// — so the two symmetric orientations of a join tie *exactly* and the
    /// first emitted option wins, keeping extracted plans identical to the
    /// reference extractor's. Reads the packed `opt_c0`/`opt_c1` child
    /// slots; only a rare wide option ([`OPT_SPILL`], the batch root)
    /// falls back to the `child_off`/`opt_children` CSR, with the same
    /// left-to-right summation.
    #[inline]
    fn best_option(&self, s: usize, child_use: impl Fn(usize) -> f64) -> f64 {
        let mut best = f64::INFINITY;
        for o in self.opt_off[s] as usize..self.opt_off[s + 1] as usize {
            let cost = self.option_cost(o, &child_use);
            if cost < best {
                best = cost;
            }
        }
        best
    }

    /// Cost of one option given resolved child `use` costs — the exact
    /// inner summation of [`Self::best_option`] (children left-to-right,
    /// operator cost last), shared with the dirty-option fast path so a
    /// selectively recomputed option is bit-identical to a full rescan's.
    #[inline]
    fn option_cost(&self, o: usize, child_use: &impl Fn(usize) -> f64) -> f64 {
        let c0 = self.opt_c0[o];
        let mut cost = 0.0;
        if c0 == OPT_SPILL {
            for &c in &self.opt_children[self.child_off[o] as usize..self.child_off[o + 1] as usize]
            {
                cost += child_use(c as usize);
            }
        } else if c0 != OPT_NONE {
            cost += child_use(c0 as usize);
            let c1 = self.opt_c1[o];
            if c1 != OPT_NONE {
                cost += child_use(c1 as usize);
            }
        }
        cost + self.opt_cost[o]
    }
}

impl BestCostEngine {
    /// `(full, incremental)` evaluation counts. Batched candidates evaluated
    /// through [`Self::bc_many`] count as incremental; the per-batch rebase
    /// counts as one full evaluation. Sharded batches fold each worker's
    /// counts back into these totals.
    pub fn eval_counts(&self) -> (u64, u64) {
        (self.scratch.full_evals, self.scratch.incremental_evals)
    }

    /// `bc(∅)`'s dense state is the committed base right after construction.
    pub fn bc(&mut self, set: &BitSet) -> f64 {
        // Chaos-test site: fires on the calling thread at oracle entry, so
        // an injected "oracle blows up" reproduces identically at every
        // MQO_THREADS setting (worker shards never see the armed TLS).
        crate::fault::hit(crate::fault::FaultSite::OracleEval);
        let set = self.sanitize(set);
        let mut scratch = std::mem::take(&mut self.scratch);
        let v = self.bc_one(&mut scratch, set.as_ref());
        self.scratch = scratch;
        v
    }

    /// One serial evaluation: ablation, base, overlay, or — past the rebase
    /// threshold — a committed full solve (the base drifts with the query).
    fn bc_one(&mut self, scratch: &mut EngineScratch, set: &BitSet) -> f64 {
        if self.config.force_full {
            scratch.full_evals += 1;
            return self.full_eval_with(scratch, set);
        }
        // The rebase decision needs only `|set △ base|` vs the threshold,
        // not the diff elements: the capped fused kernel answers it in one
        // blocked pass with an early exit, and the diff buffer is
        // materialized only when the overlay path actually consumes it.
        let threshold = self.config.rebase_threshold;
        let dist = set.symmetric_difference_len_capped(&self.base_set, threshold);
        if dist == 0 {
            scratch.incremental_evals += 1;
            return self.base_total;
        }
        if dist > threshold {
            // Too far from base: rebase (full solve) and answer from it.
            self.rebase_with(scratch, set);
            return self.base_total;
        }
        self.load_diff(scratch, set);
        scratch.incremental_evals += 1;
        self.overlay_eval_with(scratch, set)
    }

    /// One evaluation against the committed base **without mutating it** —
    /// the sharded path, where the base is shared immutably across worker
    /// threads. A candidate past the rebase threshold is answered by a
    /// full (uncommitted) solve into the worker's scratch: same value as
    /// the serial threshold-rebase, different bookkeeping.
    fn bc_from_base<E: EpochInt>(&self, scratch: &mut EngineScratch<E>, set: &BitSet) -> f64 {
        let threshold = self.config.rebase_threshold;
        let dist = set.symmetric_difference_len_capped(&self.base_set, threshold);
        if dist == 0 {
            scratch.incremental_evals += 1;
            return self.base_total;
        }
        if dist > threshold {
            scratch.full_evals += 1;
            return self.full_eval_with(scratch, set);
        }
        self.load_diff(scratch, set);
        scratch.incremental_evals += 1;
        self.overlay_eval_with(scratch, set)
    }

    /// Evaluates `bc` on every set of a batch — a greedy round's candidates
    /// — against one shared base: the committed base is aligned with the
    /// intersection of the batch once (one full solve), then every
    /// candidate takes the normal incremental path. For round-shaped
    /// batches (`X ∪ {x}` per candidate) every diff is a single element, so
    /// each answer is a minimal overlay.
    ///
    /// With [`MqoConfig::threads`] > 1 the candidates are sharded over
    /// `std::thread::scope` workers, each with its own [`EngineScratch`]
    /// over the shared immutable arenas; every candidate is evaluated from
    /// the same committed base. The serial mode runs the identical
    /// per-candidate code against the engine's own scratch (a candidate
    /// past the rebase threshold full-solves into the scratch without
    /// committing, so the base never drifts mid-batch), which is what
    /// makes every thread count return **bit-identical** values — only
    /// the work distribution differs. (The single-set [`Self::bc`] entry
    /// point still commits a rebase on far sets and drifts with its
    /// caller's query sequence.)
    pub fn bc_many(&mut self, sets: &[BitSet]) -> Vec<f64> {
        // See `bc`: injected oracle faults fire here on the caller thread.
        crate::fault::hit(crate::fault::FaultSite::OracleEval);
        if sets.is_empty() {
            return Vec::new();
        }
        let sets: Vec<Cow<BitSet>> = sets.iter().map(|s| self.sanitize(s)).collect();
        if self.config.force_full {
            let mut scratch = std::mem::take(&mut self.scratch);
            let out = sets
                .iter()
                .map(|s| {
                    scratch.full_evals += 1;
                    self.full_eval_with(&mut scratch, s)
                })
                .collect();
            self.scratch = scratch;
            return out;
        }
        // For candidates X ∪ {x} of a greedy round over base X, the
        // intersection is exactly X. The pooled buffer makes the whole
        // round allocation-free at steady state.
        let mut shared = std::mem::replace(&mut self.shared_buf, BitSet::empty(0));
        shared.copy_from(&sets[0]);
        for s in &sets[1..] {
            shared.intersect_with(s);
        }
        if shared != self.base_set {
            self.rebase(&shared);
        }
        self.shared_buf = shared;
        let workers = self.config.effective_threads(sets.len());
        if workers <= 1 {
            // Same drift-free path as the sharded workers (a far candidate
            // full-solves into the scratch instead of committing a rebase):
            // serial and sharded runs execute identical per-candidate code
            // from the identical committed base, so bit-identity across
            // thread counts holds by construction — including the
            // floating-point grouping of the overlay path's delta totals.
            let mut scratch = std::mem::take(&mut self.scratch);
            let out = sets
                .iter()
                .map(|s| self.bc_from_base(&mut scratch, s))
                .collect();
            self.scratch = scratch;
            return out;
        }
        self.bc_many_sharded(&sets, workers)
    }

    /// The sharded fan-out of [`Self::bc_many`]: contiguous candidate
    /// chunks, one scoped worker thread per chunk, one fresh scratch each,
    /// all reading the same committed base. Results land in their original
    /// slots, so the output order — like the values — is independent of
    /// the thread count.
    fn bc_many_sharded(&mut self, sets: &[Cow<BitSet>], workers: usize) -> Vec<f64> {
        let chunk = sets.len().div_ceil(workers);
        let mut out = vec![0.0f64; sets.len()];
        // Grow the pooled worker scratches on demand and reuse them across
        // rounds — the sharded path allocates nothing at steady state,
        // matching the serial overlay path.
        while self.worker_scratches.len() < workers {
            self.worker_scratches.push(self.new_scratch());
        }
        let mut scratches = std::mem::take(&mut self.worker_scratches);
        let shared: &BestCostEngine = self;
        std::thread::scope(|scope| {
            for ((chunk_sets, chunk_out), scratch) in sets
                .chunks(chunk)
                .zip(out.chunks_mut(chunk))
                .zip(scratches.iter_mut())
            {
                scope.spawn(move || {
                    for (s, slot) in chunk_sets.iter().zip(chunk_out.iter_mut()) {
                        *slot = shared.bc_from_base(scratch, s);
                    }
                });
            }
        });
        for ws in &mut scratches {
            self.scratch.full_evals += ws.full_evals;
            self.scratch.incremental_evals += ws.incremental_evals;
            ws.full_evals = 0;
            ws.incremental_evals = 0;
        }
        self.worker_scratches = scratches;
        out
    }

    /// Commits `set` as the new base state.
    pub fn rebase(&mut self, set: &BitSet) {
        let set = self.sanitize(set);
        let mut scratch = std::mem::take(&mut self.scratch);
        self.rebase_with(&mut scratch, set.as_ref());
        self.scratch = scratch;
    }

    /// [`Self::rebase`] against a caller-held scratch (whose stamps it
    /// invalidates: the overlays were relative to the dead base).
    ///
    /// A target within `rebase_threshold` elements of the current base is
    /// committed *incrementally* ([`Self::commit_diff`]): the greedy's
    /// every-round commit moves the base by exactly one element (the new
    /// pick), and a full bottom-up solve per round is the dominant fixed
    /// cost of large-universe selection. Past the threshold — or while the
    /// base arenas are not yet solved — the full solve runs as before.
    fn rebase_with(&mut self, scratch: &mut EngineScratch, set: &BitSet) {
        if self.base_compute.len() == self.n_states() {
            let cap = self.config.rebase_threshold;
            let dist = set.symmetric_difference_len_capped(&self.base_set, cap);
            if dist == 0 {
                // The base already *is* this set; its arenas are exact.
                return;
            }
            if dist <= cap {
                self.load_diff(scratch, set);
                self.commit_diff(scratch, set);
                return;
            }
        }
        scratch.full_evals += 1;
        let mut compute = std::mem::take(&mut self.base_compute);
        let mut use_ = std::mem::take(&mut self.base_use);
        self.full_solve_into(set, &mut compute, &mut use_);
        self.base_compute = compute;
        self.base_use = use_;
        self.base_set = set.clone();
        self.base_total = self.total_from_slice(set, &self.base_compute);
        scratch.invalidate();
    }

    /// Commits a near-base target by running the overlay recurrence
    /// *through* the base arenas: only the dirty cone above the changed
    /// elements (the scratch's diff buffer) is recomputed, in dense
    /// topological order off the same min-heap worklist the overlay path
    /// uses. Bit-identical to the full solve it replaces: a state outside
    /// the cone has no changed input (children's `use` and its own
    /// materialization flag are unchanged), so a full solve would
    /// recompute exactly the value it already holds; a state inside the
    /// cone applies the identical accumulation order over identical child
    /// values.
    fn commit_diff(&mut self, scratch: &mut EngineScratch, set: &BitSet) {
        let epoch = scratch.advance_epoch();
        let mut compute = std::mem::take(&mut self.base_compute);
        let mut use_ = std::mem::take(&mut self.base_use);
        let EngineScratch {
            dirty,
            queued_epoch,
            diff_buf,
            ..
        } = scratch;
        for &e in diff_buf.iter() {
            let d = self.universe_dense[e];
            if queued_epoch[d as usize] != epoch {
                queued_epoch[d as usize] = epoch;
                dirty.push(Reverse(d));
            }
        }
        while let Some(Reverse(d)) = dirty.pop() {
            let du = d as usize;
            let s0 = self.state_off[du] as usize;
            let s1 = self.state_off[du + 1] as usize;
            let materialized = self.in_set(du, set);
            let mut changed = false;
            for s in s0..s1 {
                // Children live in strictly earlier groups: if dirty, the
                // heap already popped and committed them.
                let best = self.best_option(s, |c| use_[c]);
                let best = if s > s0 {
                    best.min(compute[s0] + self.sort[du])
                } else {
                    best
                };
                compute[s] = best;
                let u = if materialized {
                    self.read[s].min(best)
                } else {
                    best
                };
                if u != use_[s] {
                    changed = true;
                }
                use_[s] = u;
            }
            if changed {
                for &p in self.topo.parents(du) {
                    if queued_epoch[p as usize] != epoch {
                        queued_epoch[p as usize] = epoch;
                        dirty.push(Reverse(p));
                    }
                }
            }
        }
        self.base_compute = compute;
        self.base_use = use_;
        self.base_set.copy_from(set);
        self.base_total = self.total_from_slice(set, &self.base_compute);
        scratch.invalidate();
    }

    /// Fills the scratch's diff buffer with the symmetric difference
    /// `set △ base`.
    fn load_diff<E: EpochInt>(&self, scratch: &mut EngineScratch<E>, set: &BitSet) {
        scratch.diff_buf.clear();
        scratch
            .diff_buf
            .extend(set.symmetric_difference_iter(&self.base_set));
    }

    /// Overlay DP: recompute only the cone above the groups in the diff
    /// buffer, writing into the scratch's epoch-stamped arenas.
    /// Allocation-free at steady state: the worklist heap and overlay
    /// arenas live in the scratch and are reused across evaluations.
    ///
    /// The total is answered as `base_total + Δ` rather than re-summing
    /// every materialized element: a group outside the dirty cone holds
    /// exactly its base value (bit-identical — the cone DP reads identical
    /// inputs in identical order), so only cone groups can shift the
    /// element sum, and `Δ` is accumulated while they are processed. The
    /// accumulation order follows the cone walk (deterministic: a min-heap
    /// over dense topological indices), so the returned value is a pure
    /// function of `(base, set)` — identical across thread counts and
    /// shard boundaries — though its floating-point grouping differs from
    /// a from-scratch full solve's flat sum by design (the differential
    /// suites pin overlay ≡ full to 1e-9 relative, and serial ≡ sharded
    /// bitwise).
    fn overlay_eval_with<E: EpochInt>(&self, scratch: &mut EngineScratch<E>, set: &BitSet) -> f64 {
        let epoch = scratch.advance_epoch();
        let EngineScratch {
            compute: scratch_compute,
            use_: scratch_use,
            state_epoch,
            dirty,
            queued_epoch,
            diff_buf,
            ..
        } = scratch;

        for &e in diff_buf.iter() {
            let d = self.universe_dense[e];
            if queued_epoch[d as usize] != epoch {
                queued_epoch[d as usize] = epoch;
                dirty.push(Reverse(d));
            }
        }
        // Dense index == topological position, so the min-heap processes
        // the dirty cone bottom-up; parents always rank above the group
        // being processed, so nothing is ever re-queued after processing.
        let mut delta = 0.0f64;
        while let Some(Reverse(d)) = dirty.pop() {
            let du = d as usize;
            let s0 = self.state_off[du] as usize;
            let s1 = self.state_off[du + 1] as usize;
            let materialized = self.in_set(du, set);
            let mut changed = false;
            for s in s0..s1 {
                let best = self.best_option(s, |c| {
                    if state_epoch[c] == epoch {
                        scratch_use[c]
                    } else {
                        self.base_use[c]
                    }
                });
                let best = if s > s0 {
                    best.min(scratch_compute[s0] + self.sort[du])
                } else {
                    best
                };
                scratch_compute[s] = best;
                let u = if materialized {
                    self.read[s].min(best)
                } else {
                    best
                };
                scratch_use[s] = u;
                state_epoch[s] = epoch;
                if u != self.base_use[s] {
                    changed = true;
                }
            }
            // Element-sum correction for this group: a materialized
            // element contributes `compute[s0] + write`; the base total
            // already carries the base-side term whenever the element is
            // in the base set. (Diff elements are always seeded into the
            // cone, so a membership flip is never missed.)
            let in_base = self.in_set(du, &self.base_set);
            if materialized {
                if in_base {
                    delta += scratch_compute[s0] - self.base_compute[s0];
                } else {
                    delta += scratch_compute[s0] + self.write[du];
                }
            } else if in_base {
                delta -= self.base_compute[s0] + self.write[du];
            }
            if changed {
                for &p in self.topo.parents(du) {
                    if queued_epoch[p as usize] != epoch {
                        queued_epoch[p as usize] = epoch;
                        dirty.push(Reverse(p));
                    }
                }
            }
        }

        // Root correction: the base total's leading term is the root
        // compute, which shifts only if the cone reached the root.
        let root_s = self.state_off[self.root as usize] as usize;
        if state_epoch[root_s] == epoch {
            delta += scratch_compute[root_s] - self.base_compute[root_s];
        }
        self.base_total + delta
    }
}

/// A versioned, immutable snapshot of everything a reader needs to
/// optimize and extract plans for a committed batch: the compiled
/// [`EngineArenas`], the shareable universe (element `i` ↔ `shareable[i]`),
/// and the dense indices of the live query roots in ticket order.
///
/// Snapshots are published behind `Arc` by
/// [`crate::session::OptimizedBatch::snapshot`] after every evolution
/// commit; concurrent readers clone the `Arc`, spin up per-caller
/// [`BestCostEngine`] handles via [`EngineState::engine`], and keep
/// working off their snapshot even while a writer commits and publishes a
/// newer one — snapshot isolation falls out of immutability.
pub struct EngineState {
    /// [`Memo::version`] at compile time — monotone, so two distinct
    /// batch states can never share a snapshot version.
    version: u64,
    /// Universe epoch of the batch state this snapshot was compiled from.
    universe_epoch: u64,
    arenas: Arc<EngineArenas>,
    /// Shareable universe: element `i` is group `shareable[i]`.
    shareable: Vec<GroupId>,
    /// Dense (topological) indices of the live query roots, ticket order.
    query_roots: Vec<u32>,
}

impl EngineState {
    /// Assembles a snapshot; callers guarantee `arenas` was compiled from
    /// the batch state identified by `(version, universe_epoch)`.
    pub(crate) fn assemble(
        version: u64,
        universe_epoch: u64,
        arenas: Arc<EngineArenas>,
        shareable: Vec<GroupId>,
        query_roots: Vec<u32>,
    ) -> Self {
        EngineState {
            version,
            universe_epoch,
            arenas,
            shareable,
            query_roots,
        }
    }

    /// The memo version this snapshot was compiled at.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The universe epoch this snapshot was compiled at.
    pub fn universe_epoch(&self) -> u64 {
        self.universe_epoch
    }

    /// The shareable-universe size.
    pub fn universe_size(&self) -> usize {
        self.shareable.len()
    }

    /// The shareable universe: element `i` is group `shareable()[i]`.
    pub fn shareable(&self) -> &[GroupId] {
        &self.shareable
    }

    /// Number of live queries in the snapshot.
    pub fn n_queries(&self) -> usize {
        self.query_roots.len()
    }

    /// Dense indices of the live query roots (extraction input).
    pub(crate) fn query_roots_dense(&self) -> &[u32] {
        &self.query_roots
    }

    /// The shared compiled arenas.
    pub fn arenas(&self) -> &Arc<EngineArenas> {
        &self.arenas
    }

    /// A fresh per-caller engine handle over the snapshot's arenas (two
    /// array copies and a zeroed scratch — no recompilation). Handles are
    /// independent: each owns its committed base and overlay scratch, so
    /// any number of readers can evaluate concurrently.
    pub fn engine(&self, config: MqoConfig) -> BestCostEngine {
        let mut engine = BestCostEngine::from_arenas(Arc::clone(&self.arenas), config);
        engine.set_universe_epoch(self.universe_epoch);
        engine
    }
}

/// Spanning merge-join keys (same logic as the volcano optimizer, inlined
/// here for compilation).
fn join_keys(
    memo: &Memo,
    pred: &mqo_volcano::Predicate,
    l: GroupId,
    r: GroupId,
) -> Option<(Vec<mqo_volcano::ColId>, Vec<mqo_volcano::ColId>)> {
    let mut lk = Vec::new();
    let mut rk = Vec::new();
    for &(a, b) in &pred.equi {
        if memo.group_covers(l, a) && memo.group_covers(r, b) {
            lk.push(a);
            rk.push(b);
        } else if memo.group_covers(l, b) && memo.group_covers(r, a) {
            lk.push(b);
            rk.push(a);
        }
    }
    if lk.is_empty() {
        None
    } else {
        Some((lk, rk))
    }
}

/// Compiles the physical options of one memo expression, emitting each as
/// `(order index, operator cost, child (group, order) refs, output order,
/// physical operator)` through `emit` — the caller owns the flat storage,
/// so compilation performs no per-option allocation beyond the recorded
/// operator provenance (cold data consumed only by plan extraction).
#[allow(clippy::too_many_arguments)]
fn compile_expr(
    memo: &Memo,
    cm: &dyn CostModel,
    e: mqo_volcano::ExprId,
    gi: usize,
    topo: &TopoView,
    orders: &[Vec<SortOrder>],
    blocks: &[f64],
    emit: &mut impl FnMut(usize, f64, &[(u32, u8)], OutOrder, PhysOp),
) {
    let g_orders = &orders[gi];
    match memo.op(e) {
        LogicalOp::Scan(inst) => {
            let out = SortOrder::on(memo.ctx().clustered_order(*inst));
            let op_cost = cm.table_scan(blocks[gi]);
            for (j, req) in g_orders.iter().enumerate() {
                if out.satisfies(req) {
                    emit(
                        j,
                        op_cost,
                        &[],
                        OutOrder::Fixed(out.clone()),
                        PhysOp::TableScan { inst: *inst },
                    );
                }
            }
        }
        LogicalOp::Select(pred) => {
            let c = memo.find(memo.children(e)[0]);
            let ci = topo.dense(c) as usize;
            // Filter: child takes the same requirement.
            let filter_cost = cm.filter(blocks[ci]);
            for (j, req) in g_orders.iter().enumerate() {
                let jc = orders[ci]
                    .iter()
                    .position(|o| o == req)
                    .expect("demand propagated to select child");
                emit(
                    j,
                    filter_cost,
                    &[(ci as u32, jc as u8)],
                    OutOrder::InheritChild0,
                    PhysOp::Filter,
                );
            }
            // Clustered-index scan.
            for ce in memo.group_exprs(c) {
                let &LogicalOp::Scan(inst) = memo.op(ce) else {
                    continue;
                };
                let pk_order = memo.ctx().clustered_order(inst);
                let Some(&lead) = pk_order.first() else {
                    continue;
                };
                let Some(constraint) = pred.constraints.get(&lead) else {
                    continue;
                };
                let frac = constraint.selectivity(&memo.ctx().col_stats(lead));
                let matched = (blocks[ci] * frac).ceil().max(1.0);
                let op_cost = cm.index_scan(matched) + cm.filter(matched);
                let out = SortOrder::on(pk_order);
                for (j, req) in g_orders.iter().enumerate() {
                    if out.satisfies(req) {
                        emit(
                            j,
                            op_cost,
                            &[],
                            OutOrder::Fixed(out.clone()),
                            PhysOp::IndexScan { inst },
                        );
                    }
                }
            }
        }
        LogicalOp::Join(pred) => {
            let ch = memo.children(e);
            let l = memo.find(ch[0]);
            let r = memo.find(ch[1]);
            let (li, ri) = (topo.dense(l) as usize, topo.dense(r) as usize);
            let keys = join_keys(memo, pred, l, r);
            for swapped in [false, true] {
                let (oi, ii) = if swapped { (ri, li) } else { (li, ri) };
                // Block nested loops (unordered output): order index 0 only.
                let nl_cost = cm.nl_join(blocks[oi], blocks[ii], blocks[gi]);
                emit(
                    0,
                    nl_cost,
                    &[(oi as u32, 0), (ii as u32, 0)],
                    OutOrder::Fixed(SortOrder::none()),
                    PhysOp::BlockNlJoin { swapped },
                );
                // Merge join. The key lists are borrowed until an option is
                // actually emitted — the position probes compare against
                // the raw column lists so the common no-emission path
                // allocates nothing.
                if let Some((lk, rk)) = &keys {
                    let (ok, ik) = if swapped { (rk, lk) } else { (lk, rk) };
                    let jo = orders[oi]
                        .iter()
                        .position(|o| o.0 == *ok)
                        .expect("join key order registered for outer child");
                    let ji = orders[ii]
                        .iter()
                        .position(|o| o.0 == *ik)
                        .expect("join key order registered for inner child");
                    let op_cost = cm.merge_join(blocks[oi], blocks[ii], blocks[gi]);
                    for (j, req) in g_orders.iter().enumerate() {
                        // `satisfies` on the raw key list: req is a prefix.
                        if req.0.len() <= ok.len() && ok[..req.0.len()] == req.0[..] {
                            emit(
                                j,
                                op_cost,
                                &[(oi as u32, jo as u8), (ii as u32, ji as u8)],
                                OutOrder::Fixed(SortOrder::on(ok.clone())),
                                PhysOp::MergeJoin {
                                    left_keys: ok.clone(),
                                    right_keys: ik.clone(),
                                    swapped,
                                },
                            );
                        }
                    }
                }
            }
        }
        LogicalOp::Aggregate(spec) => {
            let c = memo.find(memo.children(e)[0]);
            let ci = topo.dense(c) as usize;
            if spec.is_scalar() {
                let op_cost = cm.scalar_agg(blocks[ci]);
                // One row satisfies every ordering requirement, so the
                // output order is recorded as the requirement itself (the
                // extraction path mirrors the reference optimizer here).
                for (j, req) in g_orders.iter().enumerate() {
                    emit(
                        j,
                        op_cost,
                        &[(ci as u32, 0)],
                        OutOrder::Fixed(req.clone()),
                        PhysOp::ScalarAgg,
                    );
                }
            } else {
                let gb = SortOrder::on(spec.group_by.clone());
                let jc = orders[ci]
                    .iter()
                    .position(|o| *o == gb)
                    .expect("group-by order registered for aggregate child");
                let op_cost = cm.sort_agg(blocks[ci], blocks[gi]);
                for (j, req) in g_orders.iter().enumerate() {
                    if gb.satisfies(req) {
                        emit(
                            j,
                            op_cost,
                            &[(ci as u32, jc as u8)],
                            OutOrder::Fixed(gb.clone()),
                            PhysOp::SortAgg {
                                group_by: spec.group_by.clone(),
                            },
                        );
                    }
                }
            }
        }
        LogicalOp::Root => {
            let children: Vec<(u32, u8)> = memo
                .children(e)
                .iter()
                .map(|&c| (topo.dense(c), 0u8))
                .collect();
            emit(
                0,
                0.0,
                &children,
                OutOrder::Fixed(SortOrder::none()),
                PhysOp::Root,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchDag;
    use mqo_catalog::{Catalog, TableBuilder};
    use mqo_volcano::cost::DiskCostModel;
    use mqo_volcano::optimizer::{MatOverlay, Optimizer, PlanTable};
    use mqo_volcano::rules::RuleSet;
    use mqo_volcano::{Constraint, DagContext, PlanNode, Predicate};

    /// All subsets of a small universe (helper for exhaustive sweeps).
    pub(super) fn all_small_subsets(n: usize) -> Vec<BitSet> {
        assert!(n <= 8);
        (0u32..(1 << n))
            .map(|mask| BitSet::from_iter(n, (0..n).filter(|e| mask >> e & 1 == 1)))
            .collect()
    }

    /// The two-query fixture plus a third (A⋈D) plan kept aside for
    /// evolution tests.
    fn build_batch_and_extra() -> (BatchDag, PlanNode) {
        let mut cat = Catalog::new();
        for (name, rows) in [
            ("a", 20_000.0),
            ("b", 40_000.0),
            ("c", 10_000.0),
            ("d", 8_000.0),
        ] {
            cat.add_table(
                TableBuilder::new(name, rows)
                    .key_column(format!("{name}_key"), 4)
                    .column(
                        format!("{name}_fk"),
                        rows / 20.0,
                        (0, (rows as i64) / 20 - 1),
                        4,
                    )
                    .column(format!("{name}_x"), 50.0, (0, 49), 8)
                    .primary_key(&[&format!("{name}_key")])
                    .build(),
            );
        }
        let mut ctx = DagContext::new(cat);
        let a = ctx.instance_by_name("a", 0);
        let b = ctx.instance_by_name("b", 0);
        let c = ctx.instance_by_name("c", 0);
        let d = ctx.instance_by_name("d", 0);
        let p_ab = Predicate::join(ctx.col(a, "a_key"), ctx.col(b, "b_fk"));
        let p_bc = Predicate::join(ctx.col(b, "b_key"), ctx.col(c, "c_fk"));
        let p_bd = Predicate::join(ctx.col(b, "b_key"), ctx.col(d, "d_fk"));
        let p_ad = Predicate::join(ctx.col(a, "a_key"), ctx.col(d, "d_fk"));
        let sel = Predicate::on(ctx.col(c, "c_x"), Constraint::le(25));
        let q1 = PlanNode::scan(a)
            .join(PlanNode::scan(b), p_ab)
            .join(PlanNode::scan(c).select(sel.clone()), p_bc.clone());
        let q2 = PlanNode::scan(b)
            .join(PlanNode::scan(c).select(sel), p_bc)
            .join(PlanNode::scan(d), p_bd);
        let q3 = PlanNode::scan(a).join(PlanNode::scan(d), p_ad);
        (BatchDag::build(ctx, &[q1, q2], &RuleSet::default()), q3)
    }

    fn build_batch() -> BatchDag {
        build_batch_and_extra().0
    }

    #[test]
    fn engine_matches_reference_optimizer_on_empty_set() {
        let batch = build_batch();
        let cm = DiskCostModel::paper();
        let mut engine = BestCostEngine::new(batch.memo(), &cm, batch.root(), batch.shareable());
        let bc_empty = engine.bc(&BitSet::empty(batch.universe_size()));

        let opt = Optimizer::new(batch.memo(), &cm);
        let mut table = PlanTable::new();
        let reference = opt.best_use_cost(batch.root(), &MatOverlay::empty(), &mut table);
        assert!(
            (bc_empty - reference).abs() < 1e-6,
            "engine {bc_empty} vs reference {reference}"
        );
    }

    #[test]
    fn engine_matches_reference_on_singletons() {
        let batch = build_batch();
        let cm = DiskCostModel::paper();
        let mut engine = BestCostEngine::new(batch.memo(), &cm, batch.root(), batch.shareable());
        let opt = Optimizer::new(batch.memo(), &cm);
        let n = batch.universe_size();
        assert!(n > 0);
        for e in 0..n {
            let set = BitSet::from_iter(n, [e]);
            let bc = engine.bc(&set);
            // Reference: buc(root | {g}) + produce(g) + write(g).
            let g = batch.shareable()[e];
            let overlay = MatOverlay::new(batch.memo(), [g]);
            let mut t1 = PlanTable::new();
            let buc = opt.best_use_cost(batch.root(), &overlay, &mut t1);
            let produce = opt.produce_cost(g, &overlay);
            let reference = buc + produce + opt.write_cost(g);
            assert!(
                (bc - reference).abs() < 1e-6,
                "element {e}: engine {bc} vs reference {reference}"
            );
        }
    }

    #[test]
    fn incremental_matches_full() {
        let batch = build_batch();
        let cm = DiskCostModel::paper();
        let mut inc = BestCostEngine::new(batch.memo(), &cm, batch.root(), batch.shareable());
        let mut full = BestCostEngine::with_config(
            batch.memo(),
            &cm,
            batch.root(),
            batch.shareable(),
            MqoConfig {
                force_full: true,
                ..Default::default()
            },
        );
        let n = batch.universe_size();
        // Deterministic pseudo-random subsets.
        let mut state = 0x9E3779B97F4A7C15u64;
        for _ in 0..40 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let mut set = BitSet::empty(n);
            for e in 0..n {
                if (state >> (e % 64)) & 1 == 1 && e % 3 != 0 {
                    set.insert(e);
                }
            }
            let a = inc.bc(&set);
            let b = full.bc(&set);
            assert!((a - b).abs() < 1e-6, "incremental {a} vs full {b}");
        }
    }

    #[test]
    fn bc_many_matches_sequential_bc() {
        let batch = build_batch();
        let cm = DiskCostModel::paper();
        let mut batched = BestCostEngine::new(batch.memo(), &cm, batch.root(), batch.shareable());
        let mut seq = BestCostEngine::new(batch.memo(), &cm, batch.root(), batch.shareable());
        let n = batch.universe_size();
        // Greedy-round shape: a growing base plus one candidate per set.
        let mut base = BitSet::empty(n);
        for round in 0..n {
            let candidates: Vec<BitSet> = (0..n)
                .filter(|&e| !base.contains(e))
                .map(|e| base.with(e))
                .collect();
            if candidates.is_empty() {
                break;
            }
            let many = batched.bc_many(&candidates);
            for (s, &v) in candidates.iter().zip(&many) {
                let expect = seq.bc(s);
                assert!(
                    (v - expect).abs() < 1e-9 * (1.0 + expect.abs()),
                    "round {round}: batched {v} vs sequential {expect}"
                );
            }
            base.insert(round);
        }
        let (_, inc) = batched.eval_counts();
        assert!(inc > 0, "batched candidates must take the incremental path");
    }

    #[test]
    fn rebase_threshold_zero_always_rebases() {
        let batch = build_batch();
        let cm = DiskCostModel::paper();
        let mut eager = BestCostEngine::with_config(
            batch.memo(),
            &cm,
            batch.root(),
            batch.shareable(),
            MqoConfig {
                rebase_threshold: 0,
                ..Default::default()
            },
        );
        let mut lazy = BestCostEngine::new(batch.memo(), &cm, batch.root(), batch.shareable());
        let n = batch.universe_size();
        for e in 0..n.min(6) {
            let set = BitSet::from_iter(n, [e]);
            let a = eager.bc(&set);
            let b = lazy.bc(&set);
            assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()));
        }
        let (full_evals, _) = eager.eval_counts();
        assert!(
            full_evals >= n.min(6) as u64,
            "threshold 0 must rebase per distinct set"
        );
    }

    #[test]
    fn bc_empty_is_locally_optimal_cost() {
        // bc(∅) must not exceed the cost of any particular plan; a weak
        // sanity bound: it is positive and finite.
        let batch = build_batch();
        let cm = DiskCostModel::paper();
        let mut engine = BestCostEngine::new(batch.memo(), &cm, batch.root(), batch.shareable());
        let bc = engine.bc(&BitSet::empty(batch.universe_size()));
        assert!(bc.is_finite() && bc > 0.0);
    }

    #[test]
    fn materializing_shared_node_helps_somewhere() {
        // In this batch σ(c) (or b⋈σ(c)) is shared; at least one singleton
        // must beat bc(∅).
        let batch = build_batch();
        let cm = DiskCostModel::paper();
        let mut engine = BestCostEngine::new(batch.memo(), &cm, batch.root(), batch.shareable());
        let n = batch.universe_size();
        let empty = engine.bc(&BitSet::empty(n));
        let best_single = (0..n)
            .map(|e| engine.bc(&BitSet::from_iter(n, [e])))
            .fold(f64::INFINITY, f64::min);
        assert!(
            best_single < empty,
            "no single materialization helps: best {best_single} vs empty {empty}"
        );
    }

    #[test]
    fn sharded_bc_many_is_bit_identical_to_serial() {
        let batch = build_batch();
        let cm = DiskCostModel::paper();
        let n = batch.universe_size();
        let mut serial = BestCostEngine::with_config(
            batch.memo(),
            &cm,
            batch.root(),
            batch.shareable(),
            MqoConfig {
                threads: 1,
                ..Default::default()
            },
        );
        for threads in [2usize, 3, 8] {
            let mut sharded = BestCostEngine::with_config(
                batch.memo(),
                &cm,
                batch.root(),
                batch.shareable(),
                MqoConfig {
                    threads,
                    ..Default::default()
                },
            );
            let mut base = BitSet::empty(n);
            for round in 0..n {
                let candidates: Vec<BitSet> = (0..n)
                    .filter(|&e| !base.contains(e))
                    .map(|e| base.with(e))
                    .collect();
                if candidates.is_empty() {
                    break;
                }
                let a = serial.bc_many(&candidates);
                let b = sharded.bc_many(&candidates);
                assert_eq!(
                    a, b,
                    "threads {threads}, round {round}: values must be bit-identical"
                );
                base.insert(round);
            }
            // Reset the serial engine's drifted base for the next sweep.
            serial.rebase(&BitSet::empty(n));
        }
    }

    #[test]
    fn sharded_handles_far_candidates_and_odd_batches() {
        // Batches whose candidates sit past the rebase threshold (workers
        // must answer them by uncommitted full solves) and batch sizes that
        // do not divide evenly across workers.
        let batch = build_batch();
        let cm = DiskCostModel::paper();
        let n = batch.universe_size();
        let mut full = BestCostEngine::with_config(
            batch.memo(),
            &cm,
            batch.root(),
            batch.shareable(),
            MqoConfig {
                force_full: true,
                ..Default::default()
            },
        );
        let mut sharded = BestCostEngine::with_config(
            batch.memo(),
            &cm,
            batch.root(),
            batch.shareable(),
            MqoConfig {
                rebase_threshold: 0,
                threads: 3,
                ..Default::default()
            },
        );
        // More sets than workers (odd split) with every non-base candidate
        // past the zero threshold.
        let mut sets: Vec<BitSet> = crate::engine::tests::all_small_subsets(n);
        sets.push(BitSet::from_iter(n, [0]));
        let vals = sharded.bc_many(&sets);
        for (s, &v) in sets.iter().zip(&vals) {
            let expect = full.bc(s);
            assert!(
                (v - expect).abs() < 1e-9 * (1.0 + expect.abs()),
                "sharded {v} vs full {expect} on {s:?}"
            );
        }
        let (full_evals, _) = sharded.eval_counts();
        assert!(full_evals > 0, "far candidates must take the full path");
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "does not match the engine's shareable universe")]
    fn bc_asserts_on_universe_mismatch_in_debug() {
        let batch = build_batch();
        let cm = DiskCostModel::paper();
        let mut engine = BestCostEngine::new(batch.memo(), &cm, batch.root(), batch.shareable());
        let n = batch.universe_size();
        // A set over a larger universe with a bit past the engine's dense
        // map: debug builds must refuse it loudly.
        let oversized = BitSet::from_iter(n + 64, [0, n + 7]);
        engine.bc(&oversized);
    }

    #[test]
    fn sanitize_truncates_out_of_range_bits() {
        // The documented release-mode behavior: bits >= universe_size() are
        // ignored, so a malformed set evaluates like its in-range
        // projection. `sanitize` is exercised directly (the assertion in
        // `bc` fires first under debug_assertions).
        let batch = build_batch();
        let cm = DiskCostModel::paper();
        let mut engine = BestCostEngine::new(batch.memo(), &cm, batch.root(), batch.shareable());
        let n = batch.universe_size();
        let oversized = BitSet::from_iter(n + 64, [0, 1, n + 7]);
        let sanitized = engine.truncate_to_universe(&oversized).into_owned();
        assert_eq!(sanitized, BitSet::from_iter(n, [0, 1]));
        // A smaller universe zero-extends.
        let undersized = BitSet::from_iter(1, [0]);
        let sanitized = engine.truncate_to_universe(&undersized).into_owned();
        assert_eq!(sanitized, BitSet::from_iter(n, [0]));
        // And the sanitized set evaluates like its projection.
        let a = engine.bc(&sanitized);
        let b = engine.bc(&BitSet::from_iter(n, [0]));
        assert_eq!(a, b);
    }

    #[test]
    fn tiny_epoch_type_survives_wraps() {
        // Force the epoch counter to wrap several times with a u8 epoch:
        // the wrap path must clear every stamp, so values stay exact long
        // after 255 overlay evaluations.
        let batch = build_batch();
        let cm = DiskCostModel::paper();
        let engine = BestCostEngine::new(batch.memo(), &cm, batch.root(), batch.shareable());
        let mut full = BestCostEngine::with_config(
            batch.memo(),
            &cm,
            batch.root(),
            batch.shareable(),
            MqoConfig {
                force_full: true,
                ..Default::default()
            },
        );
        let n = batch.universe_size();
        let mut tiny: EngineScratch<u8> = engine.new_scratch();
        let mut state = 0xD1CEu64;
        for i in 0..700 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Small diffs from the (empty) base so the overlay path runs.
            let mut set = BitSet::empty(n);
            for e in 0..3 {
                let bit = ((state >> (8 * e)) as usize) % n;
                set.insert(bit);
            }
            let a = engine.bc_from_base(&mut tiny, &set);
            let b = full.bc(&set);
            assert!(
                (a - b).abs() < 1e-9 * (1.0 + b.abs()),
                "iteration {i}: tiny-epoch overlay {a} vs full {b}"
            );
        }
        assert!(
            tiny.incremental_evals > 300,
            "the sweep must actually exercise the overlay path across wraps"
        );
    }

    #[test]
    fn tiny_epoch_type_survives_wraps_across_evolution() {
        // The wrap hardening must also hold on an engine compiled after
        // the batch evolved: the universe resized, so the scratch arenas
        // are re-sized and the tiny counter starts wrapping again from
        // zero. Run a >255-evaluation sweep on the evolved engine and
        // check every value against the full-recompute ablation.
        let (mut batch, q3) = build_batch_and_extra();
        let n_before = batch.universe_size();
        batch.add_query_with_threads(&q3, 1);
        let n = batch.universe_size();
        assert!(n >= n_before, "admitting A⋈D must not shrink the universe");
        let cm = DiskCostModel::paper();
        let engine = BestCostEngine::new(batch.memo(), &cm, batch.root(), batch.shareable());
        let mut full = BestCostEngine::with_config(
            batch.memo(),
            &cm,
            batch.root(),
            batch.shareable(),
            MqoConfig {
                force_full: true,
                ..Default::default()
            },
        );
        let mut tiny: EngineScratch<u8> = engine.new_scratch();
        let mut state = 0xBEEFu64;
        for i in 0..600 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let mut set = BitSet::empty(n);
            for e in 0..3 {
                let bit = ((state >> (8 * e)) as usize) % n;
                set.insert(bit);
            }
            let a = engine.bc_from_base(&mut tiny, &set);
            let b = full.bc(&set);
            assert!(
                (a - b).abs() < 1e-9 * (1.0 + b.abs()),
                "iteration {i}: evolved tiny-epoch overlay {a} vs full {b}"
            );
        }
        assert!(
            tiny.incremental_evals > 255,
            "the sweep must wrap the u8 epoch on the evolved engine"
        );
    }

    #[test]
    fn rebase_invalidates_scratch_stamps() {
        // After a rebase the overlay values are relative to a dead base;
        // the epoch hardening clears every stamp rather than trusting the
        // counter to keep growing.
        let batch = build_batch();
        let cm = DiskCostModel::paper();
        let mut engine = BestCostEngine::new(batch.memo(), &cm, batch.root(), batch.shareable());
        let n = batch.universe_size();
        let _ = engine.bc(&BitSet::from_iter(n, [0]));
        assert_ne!(engine.scratch.epoch, 0, "overlay path must have run");
        engine.rebase(&BitSet::from_iter(n, [1]));
        assert_eq!(engine.scratch.epoch, 0);
        assert!(engine.scratch.state_epoch.iter().all(|&e| e == 0));
        assert!(engine.scratch.queued_epoch.iter().all(|&e| e == 0));
        // And evaluation right after the wipe stays correct.
        let a = engine.bc(&BitSet::from_iter(n, [0]));
        let mut fresh = BestCostEngine::new(batch.memo(), &cm, batch.root(), batch.shareable());
        let b = fresh.bc(&BitSet::from_iter(n, [0]));
        assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()));
    }

    #[test]
    fn compile_cache_invalidates_on_expression_preserving_merge() {
        // A group merge can change the memo's topology without allocating
        // or tombstoning a single expression (two parentless groups with
        // structurally distinct members). The cache fingerprint must still
        // invalidate the cached TopoView — it keys on the live-group
        // count, which every merge shrinks.
        let mut cat = Catalog::new();
        for (name, rows) in [("a", 1000.0), ("b", 2000.0)] {
            cat.add_table(
                TableBuilder::new(name, rows)
                    .key_column(format!("{name}_key"), 4)
                    .column(format!("{name}_x"), 10.0, (0, 9), 4)
                    .primary_key(&[&format!("{name}_key")])
                    .build(),
            );
        }
        let mut ctx = DagContext::new(cat);
        let a = ctx.instance_by_name("a", 0);
        let b = ctx.instance_by_name("b", 0);
        let ja = ctx.col(a, "a_key");
        let jb = ctx.col(b, "b_x");
        let ax = ctx.col(a, "a_x");
        let mut memo = mqo_volcano::Memo::new(ctx);
        let j =
            memo.insert_plan(&PlanNode::scan(a).join(PlanNode::scan(b), Predicate::join(ja, jb)));
        // Two structurally distinct full-range selects over the join:
        // identical cardinalities, no parents.
        let sel = |col, memo: &mut mqo_volcano::Memo| {
            memo.insert(
                mqo_volcano::logical::LogicalOp::Select(Predicate::on(
                    col,
                    Constraint::range(Some(0), Some(9)),
                )),
                vec![j],
                None,
            )
        };
        let g1 = sel(jb, &mut memo);
        let g2 = sel(ax, &mut memo);
        assert_ne!(memo.find(g1), memo.find(g2));

        let cm = DiskCostModel::paper();
        let cfg = MqoConfig {
            threads: 1,
            ..Default::default()
        };
        let mut cache = CompileCache::new();
        let before = BestCostEngine::with_cache(&memo, &cm, g1, &[], cfg, &mut cache);
        let counts = (memo.exprs_allocated(), memo.n_exprs(), memo.n_group_slots());
        memo.merge(g1, g2);
        // The merge preserved every allocation/liveness count an
        // insufficient fingerprint might key on...
        assert_eq!(
            (memo.exprs_allocated(), memo.n_exprs(), memo.n_group_slots()),
            counts
        );
        // ...but the recompile through the same cache must see the merged
        // topology, exactly like a fresh compile.
        let root = memo.find(g1);
        let mut cached = BestCostEngine::with_cache(&memo, &cm, root, &[], cfg, &mut cache);
        let mut fresh = BestCostEngine::with_config(&memo, &cm, root, &[], cfg);
        assert!(
            cached.n_states() < before.n_states(),
            "stale TopoView survived the merge"
        );
        assert_eq!(cached.n_states(), fresh.n_states());
        let empty = BitSet::empty(0);
        assert_eq!(cached.bc(&empty), fresh.bc(&empty));
    }

    #[test]
    fn rebase_keeps_answers_consistent() {
        let batch = build_batch();
        let cm = DiskCostModel::paper();
        let mut engine = BestCostEngine::new(batch.memo(), &cm, batch.root(), batch.shareable());
        let n = batch.universe_size();
        let set = BitSet::from_iter(n, (0..n).filter(|e| e % 2 == 0));
        let before = engine.bc(&set);
        engine.rebase(&set);
        let after = engine.bc(&set);
        assert!((before - after).abs() < 1e-6);
    }
}
