//! The `bestCost(Q, S)` oracle, compiled for speed.
//!
//! The greedy algorithms evaluate `bc(X ∪ {x})` for many candidates `x` per
//! iteration, so this engine compiles the expanded memo once — interesting
//! sort orders per group, physical implementation options with fixed
//! per-operator costs, dense topological indexing — and then evaluates any
//! materialized set with a bottom-up array DP:
//!
//! ```text
//! compute[g][o] = min over options (op cost + Σ use[child][o_child]),
//!                 and for o ≠ none also compute[g][none] + sort(g)
//! use[g][o]     = g ∈ S ? read[g][o] : compute[g][o]
//! bc(S)         = compute[root][none] + Σ_{s∈S} (compute[s][none] + write[s])
//! ```
//!
//! `compute[s]` uses the `use` costs of everything below `s`, so producing a
//! materialized node automatically exploits other materialized nodes — the
//! same semantics as Pyro's `bestCost` (which includes the cost of
//! computing and materializing the chosen set).
//!
//! On top of the full DP sits the *incremental* evaluator (the third
//! optimization of Section 5.1, inherited from Roy et al.): relative to a
//! committed base set, evaluating a candidate set only recomputes the
//! ancestor cone of the groups whose membership changed.

use std::collections::{BTreeSet, HashMap};

use mqo_submod::bitset::BitSet;
use mqo_volcano::cost::CostModel;
use mqo_volcano::logical::LogicalOp;
use mqo_volcano::memo::{GroupId, Memo};
use mqo_volcano::physical::SortOrder;

/// One physical implementation option, compiled: a constant operator cost
/// plus references to child `(group, order)` states.
#[derive(Clone, Debug)]
struct CompiledOption {
    op_cost: f64,
    /// `(dense group index, order index within that group)`.
    children: Vec<(u32, u8)>,
    /// Output order of this implementation (used to determine the natural
    /// storage order of materialized results).
    out: OutOrder,
}

/// Output order of a compiled option: fixed, or inherited from the first
/// child's natural order (order-preserving operators like Filter).
#[derive(Clone, Debug)]
enum OutOrder {
    Fixed(SortOrder),
    InheritChild0,
}

/// Compiled per-group state.
#[derive(Debug)]
struct CompiledGroup {
    /// Interesting orders; index 0 is always the unordered requirement.
    orders: Vec<SortOrder>,
    /// Implementation options per order index.
    options: Vec<Vec<CompiledOption>>,
    /// Cost of reading the materialized result per order index.
    read: Vec<f64>,
    /// Cost of writing the result once.
    write: f64,
    /// Cost of sorting the result (for enforcers).
    sort: f64,
    /// Parent groups (dense indices), deduplicated.
    parents: Vec<u32>,
}

/// The compiled `bestCost` engine.
pub struct BestCostEngine {
    /// Dense index (= topological position) → group.
    dense_groups: Vec<GroupId>,
    /// Raw group slot → dense index (only representatives are valid).
    dense_of: HashMap<GroupId, u32>,
    compiled: Vec<CompiledGroup>,
    /// Dense index of the batch root.
    root: u32,
    /// Universe: element `i` of the shareable set ↔ dense index.
    universe_dense: Vec<u32>,
    /// Base state: the committed materialized set (as a bitset over the
    /// universe) and its DP solution.
    base_set: BitSet,
    base_compute: Vec<Vec<f64>>,
    base_use: Vec<Vec<f64>>,
    /// Dense index → universe element (u32::MAX when not in the universe).
    elem_of_dense: Vec<u32>,
    /// Evaluation counters.
    full_evals: u64,
    incremental_evals: u64,
    /// When true, every evaluation runs the full DP (ablation switch).
    pub force_full: bool,
}

impl BestCostEngine {
    /// Compiles the engine for a memo, cost model, and shareable universe.
    pub fn new(memo: &Memo, cm: &dyn CostModel, root: GroupId, universe: &[GroupId]) -> Self {
        let topo = memo.topo_order();
        let dense_of: HashMap<GroupId, u32> = topo
            .iter()
            .enumerate()
            .map(|(i, &g)| (g, i as u32))
            .collect();
        let n = topo.len();

        // 1. Interesting orders per group: demanded by join/aggregate
        // parents, propagated down through order-preserving selects.
        let mut orders: Vec<BTreeSet<SortOrder>> = vec![BTreeSet::new(); n];
        for set in &mut orders {
            set.insert(SortOrder::none());
        }
        for e in memo.expr_ids() {
            let expr = memo.expr(e);
            match &expr.op {
                LogicalOp::Join(pred) => {
                    let l = memo.find(expr.children[0]);
                    let r = memo.find(expr.children[1]);
                    if let Some((lk, rk)) = join_keys(memo, pred, l, r) {
                        orders[dense_of[&l] as usize].insert(SortOrder::on(lk));
                        orders[dense_of[&r] as usize].insert(SortOrder::on(rk));
                    }
                }
                LogicalOp::Aggregate(spec) if !spec.is_scalar() => {
                    let c = memo.find(expr.children[0]);
                    orders[dense_of[&c] as usize].insert(SortOrder::on(spec.group_by.clone()));
                }
                _ => {}
            }
        }
        // Propagate demands down through selects until fixpoint.
        loop {
            let mut changed = false;
            for e in memo.expr_ids() {
                let expr = memo.expr(e);
                if !matches!(expr.op, LogicalOp::Select(_)) {
                    continue;
                }
                let g = dense_of[&memo.group_of(e)] as usize;
                let c = dense_of[&memo.find(expr.children[0])] as usize;
                if g == c {
                    continue;
                }
                let parent_orders: Vec<SortOrder> = orders[g].iter().cloned().collect();
                for o in parent_orders {
                    if orders[c].insert(o) {
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let orders: Vec<Vec<SortOrder>> = orders
            .into_iter()
            .map(|set| {
                let mut v: Vec<SortOrder> = set.into_iter().collect();
                // BTreeSet order puts the empty order first already, but be
                // explicit: index 0 must be the unordered requirement.
                if let Some(pos) = v.iter().position(SortOrder::is_none) {
                    v.swap(0, pos);
                }
                v
            })
            .collect();

        // 2. Compile options per (group, order index).
        let blocks: Vec<f64> = topo
            .iter()
            .map(|&g| memo.props(g).blocks(cm.block_size()))
            .collect();
        let mut compiled: Vec<CompiledGroup> = Vec::with_capacity(n);
        for (gi, &g) in topo.iter().enumerate() {
            let g_orders = &orders[gi];
            let mut options: Vec<Vec<CompiledOption>> = vec![Vec::new(); g_orders.len()];
            for e in memo.group_exprs(g) {
                compile_expr(
                    memo,
                    cm,
                    e,
                    gi,
                    &dense_of,
                    &orders,
                    &blocks,
                    &mut options,
                );
            }
            // Read costs are finalized after the natural storage orders are
            // known (see below); start with the plain read cost.
            let read: Vec<f64> = vec![cm.materialize_read(blocks[gi]); g_orders.len()];
            compiled.push(CompiledGroup {
                orders: g_orders.clone(),
                options,
                read,
                write: cm.materialize_write(blocks[gi]),
                sort: cm.sort(blocks[gi]),
                parents: Vec::new(),
            });
        }
        // Parent adjacency (dense).
        for (gi, &g) in topo.iter().enumerate() {
            let mut parents: Vec<u32> = memo
                .group_parents(g)
                .into_iter()
                .map(|e| dense_of[&memo.group_of(e)])
                .filter(|&p| p as usize != gi)
                .collect();
            parents.sort_unstable();
            parents.dedup();
            compiled[gi].parents = parents;
        }

        let universe_dense: Vec<u32> = universe
            .iter()
            .map(|g| dense_of[&memo.find(*g)])
            .collect();
        let mut elem_of_dense = vec![u32::MAX; n];
        for (i, &d) in universe_dense.iter().enumerate() {
            elem_of_dense[d as usize] = i as u32;
        }

        let mut engine = BestCostEngine {
            dense_groups: topo,
            dense_of,
            compiled,
            root: 0,
            universe_dense,
            base_set: BitSet::empty(universe.len()),
            base_compute: Vec::new(),
            base_use: Vec::new(),
            elem_of_dense,
            full_evals: 0,
            incremental_evals: 0,
            force_full: false,
        };
        engine.root = engine.dense_of[&memo.find(root)];
        // Solve the no-materialization state once; the winning production
        // plans determine the natural order each result would be stored in
        // (materialized results are written out by their cheapest production
        // plan; consumers whose demanded order is a prefix of the stored
        // order read them without sorting).
        let (compute, use_) = engine.full_solve(&BitSet::empty(universe.len()));
        let natural = engine.resolve_natural_orders(&use_);
        for (gi, nat) in natural.iter().enumerate() {
            let sort = engine.compiled[gi].sort;
            let orders = engine.compiled[gi].orders.clone();
            for (j, req) in orders.iter().enumerate() {
                if !nat.satisfies(req) {
                    engine.compiled[gi].read[j] += sort;
                }
            }
        }
        engine.base_compute = compute;
        engine.base_use = use_;
        engine
    }

    /// Resolves the natural output order of each group's winning
    /// (unordered-requirement) production plan, bottom-up. `use_` must be
    /// the solved state for `S = ∅`.
    fn resolve_natural_orders(&self, use_: &[Vec<f64>]) -> Vec<SortOrder> {
        let n = self.compiled.len();
        let mut natural: Vec<SortOrder> = Vec::with_capacity(n);
        for (d, cg) in self.compiled.iter().enumerate() {
            let mut best: Option<(f64, &CompiledOption)> = None;
            for opt in &cg.options[0] {
                let mut cost = opt.op_cost;
                for &(child, jc) in &opt.children {
                    cost += use_[child as usize][jc as usize];
                }
                if best.is_none_or(|(b, _)| cost < b) {
                    best = Some((cost, opt));
                }
            }
            let order = match best {
                Some((_, opt)) => match &opt.out {
                    OutOrder::Fixed(o) => o.clone(),
                    OutOrder::InheritChild0 => {
                        let child = opt.children[0].0 as usize;
                        debug_assert!(child < d, "children precede parents");
                        natural[child].clone()
                    }
                },
                None => SortOrder::none(),
            };
            natural.push(order);
        }
        natural
    }

    /// The shareable universe size.
    pub fn universe_size(&self) -> usize {
        self.universe_dense.len()
    }

    /// The group at a dense (topological) index — diagnostics helper.
    pub fn dense_group(&self, d: usize) -> GroupId {
        self.dense_groups[d]
    }

    /// Number of compiled `(group, order)` DP states.
    pub fn n_states(&self) -> usize {
        self.compiled.iter().map(|c| c.orders.len()).sum()
    }

    /// `(full, incremental)` evaluation counts.
    pub fn eval_counts(&self) -> (u64, u64) {
        (self.full_evals, self.incremental_evals)
    }

    /// `bc(∅)`'s dense state is the committed base right after construction.
    pub fn bc(&mut self, set: &BitSet) -> f64 {
        debug_assert_eq!(set.universe(), self.universe_dense.len());
        if self.force_full {
            self.full_evals += 1;
            let (compute, _) = self.full_solve(set);
            return self.total_from(set, |g, j| compute[g][j]);
        }
        let diff: Vec<usize> = symmetric_difference(set, &self.base_set);
        if diff.is_empty() {
            self.incremental_evals += 1;
            return self.total_from(set, |g, j| self.base_compute[g][j]);
        }
        if diff.len() > 4 {
            // Too far from base: rebase (full solve) and answer from it.
            self.rebase(set);
            return self.total_from(set, |g, j| self.base_compute[g][j]);
        }
        self.incremental_evals += 1;
        let overlay = self.overlay_solve(set, &diff);
        self.total_from(set, |g, j| {
            overlay
                .get(&(g as u32))
                .map(|(c, _)| c[j])
                .unwrap_or(self.base_compute[g][j])
        })
    }

    /// Commits `set` as the new base state.
    pub fn rebase(&mut self, set: &BitSet) {
        self.full_evals += 1;
        let (compute, use_) = self.full_solve(set);
        self.base_compute = compute;
        self.base_use = use_;
        self.base_set = set.clone();
    }

    /// `bc(S)` from per-group compute costs.
    fn total_from(&self, set: &BitSet, compute: impl Fn(usize, usize) -> f64) -> f64 {
        let mut total = compute(self.root as usize, 0);
        for e in set.iter() {
            let d = self.universe_dense[e] as usize;
            total += compute(d, 0) + self.compiled[d].write;
        }
        total
    }

    /// Whether dense group `d` is materialized under `set`.
    fn in_set(&self, d: usize, set: &BitSet) -> bool {
        let e = self.elem_of_dense[d];
        e != u32::MAX && set.contains(e as usize)
    }

    /// Full bottom-up DP.
    fn full_solve(&self, set: &BitSet) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let n = self.compiled.len();
        let mut compute: Vec<Vec<f64>> = Vec::with_capacity(n);
        let mut use_: Vec<Vec<f64>> = Vec::with_capacity(n);
        for d in 0..n {
            let (c_vec, u_vec) = self.solve_group(d, set, |g, j| use_[g][j]);
            compute.push(c_vec);
            use_.push(u_vec);
        }
        (compute, use_)
    }

    /// Solves one group given resolved child `use` costs.
    fn solve_group(
        &self,
        d: usize,
        set: &BitSet,
        child_use: impl Fn(usize, usize) -> f64,
    ) -> (Vec<f64>, Vec<f64>) {
        let cg = &self.compiled[d];
        let k = cg.orders.len();
        let mut c_vec = vec![f64::INFINITY; k];
        for j in 0..k {
            let mut best = f64::INFINITY;
            for opt in &cg.options[j] {
                let mut cost = opt.op_cost;
                for &(child, jc) in &opt.children {
                    cost += child_use(child as usize, jc as usize);
                }
                if cost < best {
                    best = cost;
                }
            }
            if j > 0 {
                let enforced = c_vec[0] + cg.sort;
                if enforced < best {
                    best = enforced;
                }
            }
            c_vec[j] = best;
        }
        // A consumer "may or may not use the materialized nodes"
        // (Section 2.4): reading is an *option*, recomputation remains
        // available when cheaper.
        let materialized = self.in_set(d, set);
        let u_vec = (0..k)
            .map(|j| {
                if materialized {
                    cg.read[j].min(c_vec[j])
                } else {
                    c_vec[j]
                }
            })
            .collect();
        (c_vec, u_vec)
    }

    /// Overlay DP: recompute only the cone above the changed groups.
    fn overlay_solve(
        &self,
        set: &BitSet,
        changed_elems: &[usize],
    ) -> HashMap<u32, (Vec<f64>, Vec<f64>)> {
        let mut overlay: HashMap<u32, (Vec<f64>, Vec<f64>)> = HashMap::new();
        // Dense index == topological position, so a BTreeSet processes the
        // dirty cone bottom-up.
        let mut dirty: BTreeSet<u32> = changed_elems
            .iter()
            .map(|&e| self.universe_dense[e])
            .collect();
        while let Some(d) = dirty.pop_first() {
            let du = d as usize;
            let (c_vec, u_vec) = self.solve_group(du, set, |g, j| {
                overlay
                    .get(&(g as u32))
                    .map(|(_, u)| u[j])
                    .unwrap_or(self.base_use[g][j])
            });
            let changed = u_vec != self.base_use[du];
            overlay.insert(d, (c_vec, u_vec));
            if changed {
                for &p in &self.compiled[du].parents {
                    if !overlay.contains_key(&p) {
                        dirty.insert(p);
                    }
                }
            }
        }
        overlay
    }
}

/// Spanning merge-join keys (same logic as the volcano optimizer, inlined
/// here for compilation).
fn join_keys(
    memo: &Memo,
    pred: &mqo_volcano::Predicate,
    l: GroupId,
    r: GroupId,
) -> Option<(Vec<mqo_volcano::ColId>, Vec<mqo_volcano::ColId>)> {
    let mut lk = Vec::new();
    let mut rk = Vec::new();
    for &(a, b) in &pred.equi {
        if memo.group_covers(l, a) && memo.group_covers(r, b) {
            lk.push(a);
            rk.push(b);
        } else if memo.group_covers(l, b) && memo.group_covers(r, a) {
            lk.push(b);
            rk.push(a);
        }
    }
    if lk.is_empty() {
        None
    } else {
        Some((lk, rk))
    }
}

/// Compiles the physical options of one memo expression into the per-order
/// option lists of its group.
#[allow(clippy::too_many_arguments)]
fn compile_expr(
    memo: &Memo,
    cm: &dyn CostModel,
    e: mqo_volcano::ExprId,
    gi: usize,
    dense_of: &HashMap<GroupId, u32>,
    orders: &[Vec<SortOrder>],
    blocks: &[f64],
    options: &mut [Vec<CompiledOption>],
) {
    let expr = memo.expr(e);
    let g_orders = &orders[gi];
    match &expr.op {
        LogicalOp::Scan(inst) => {
            let out = SortOrder::on(memo.ctx().clustered_order(*inst));
            let op_cost = cm.table_scan(blocks[gi]);
            for (j, req) in g_orders.iter().enumerate() {
                if out.satisfies(req) {
                    options[j].push(CompiledOption {
                        op_cost,
                        children: vec![],
                        out: OutOrder::Fixed(out.clone()),
                    });
                }
            }
        }
        LogicalOp::Select(pred) => {
            let c = memo.find(expr.children[0]);
            let ci = dense_of[&c] as usize;
            // Filter: child takes the same requirement.
            let filter_cost = cm.filter(blocks[ci]);
            for (j, req) in g_orders.iter().enumerate() {
                let jc = orders[ci]
                    .iter()
                    .position(|o| o == req)
                    .expect("demand propagated to select child");
                options[j].push(CompiledOption {
                    op_cost: filter_cost,
                    children: vec![(ci as u32, jc as u8)],
                    out: OutOrder::InheritChild0,
                });
            }
            // Clustered-index scan.
            for ce in memo.group_exprs(c) {
                let LogicalOp::Scan(inst) = memo.expr(ce).op else {
                    continue;
                };
                let pk_order = memo.ctx().clustered_order(inst);
                let Some(&lead) = pk_order.first() else { continue };
                let Some(constraint) = pred.constraints.get(&lead) else {
                    continue;
                };
                let frac = constraint.selectivity(&memo.ctx().col_stats(lead));
                let matched = (blocks[ci] * frac).ceil().max(1.0);
                let op_cost = cm.index_scan(matched) + cm.filter(matched);
                let out = SortOrder::on(pk_order);
                for (j, req) in g_orders.iter().enumerate() {
                    if out.satisfies(req) {
                        options[j].push(CompiledOption {
                            op_cost,
                            children: vec![],
                            out: OutOrder::Fixed(out.clone()),
                        });
                    }
                }
            }
        }
        LogicalOp::Join(pred) => {
            let l = memo.find(expr.children[0]);
            let r = memo.find(expr.children[1]);
            let (li, ri) = (dense_of[&l] as usize, dense_of[&r] as usize);
            let keys = join_keys(memo, pred, l, r);
            for swapped in [false, true] {
                let (oi, ii) = if swapped { (ri, li) } else { (li, ri) };
                // Block nested loops (unordered output): order index 0 only.
                let nl_cost = cm.nl_join(blocks[oi], blocks[ii], blocks[gi]);
                options[0].push(CompiledOption {
                    op_cost: nl_cost,
                    children: vec![(oi as u32, 0), (ii as u32, 0)],
                    out: OutOrder::Fixed(SortOrder::none()),
                });
                // Merge join.
                if let Some((lk, rk)) = &keys {
                    let (ok, ik) = if swapped {
                        (rk.clone(), lk.clone())
                    } else {
                        (lk.clone(), rk.clone())
                    };
                    let out = SortOrder::on(ok.clone());
                    let jo = orders[oi]
                        .iter()
                        .position(|o| *o == out)
                        .expect("join key order registered for outer child");
                    let ji = orders[ii]
                        .iter()
                        .position(|o| *o == SortOrder::on(ik.clone()))
                        .expect("join key order registered for inner child");
                    let op_cost = cm.merge_join(blocks[oi], blocks[ii], blocks[gi]);
                    for (j, req) in g_orders.iter().enumerate() {
                        if out.satisfies(req) {
                            options[j].push(CompiledOption {
                                op_cost,
                                children: vec![(oi as u32, jo as u8), (ii as u32, ji as u8)],
                                out: OutOrder::Fixed(out.clone()),
                            });
                        }
                    }
                }
            }
        }
        LogicalOp::Aggregate(spec) => {
            let c = memo.find(expr.children[0]);
            let ci = dense_of[&c] as usize;
            if spec.is_scalar() {
                let op_cost = cm.scalar_agg(blocks[ci]);
                // One row satisfies every ordering requirement.
                for opts in options.iter_mut() {
                    opts.push(CompiledOption {
                        op_cost,
                        children: vec![(ci as u32, 0)],
                        out: OutOrder::Fixed(SortOrder::none()),
                    });
                }
            } else {
                let gb = SortOrder::on(spec.group_by.clone());
                let jc = orders[ci]
                    .iter()
                    .position(|o| *o == gb)
                    .expect("group-by order registered for aggregate child");
                let op_cost = cm.sort_agg(blocks[ci], blocks[gi]);
                for (j, req) in g_orders.iter().enumerate() {
                    if gb.satisfies(req) {
                        options[j].push(CompiledOption {
                            op_cost,
                            children: vec![(ci as u32, jc as u8)],
                            out: OutOrder::Fixed(gb.clone()),
                        });
                    }
                }
            }
        }
        LogicalOp::Root => {
            let children: Vec<(u32, u8)> = expr
                .children
                .iter()
                .map(|&c| (dense_of[&memo.find(c)], 0u8))
                .collect();
            options[0].push(CompiledOption {
                op_cost: 0.0,
                children,
                out: OutOrder::Fixed(SortOrder::none()),
            });
        }
    }
}

/// Indices present in exactly one of the two sets.
fn symmetric_difference(a: &BitSet, b: &BitSet) -> Vec<usize> {
    let mut out: Vec<usize> = a.difference(b).iter().collect();
    out.extend(b.difference(a).iter());
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchDag;
    use mqo_catalog::{Catalog, TableBuilder};
    use mqo_volcano::cost::DiskCostModel;
    use mqo_volcano::optimizer::{MatOverlay, Optimizer, PlanTable};
    use mqo_volcano::rules::RuleSet;
    use mqo_volcano::{Constraint, DagContext, PlanNode, Predicate};

    fn build_batch() -> BatchDag {
        let mut cat = Catalog::new();
        for (name, rows) in [("a", 20_000.0), ("b", 40_000.0), ("c", 10_000.0), ("d", 8_000.0)] {
            cat.add_table(
                TableBuilder::new(name, rows)
                    .key_column(format!("{name}_key"), 4)
                    .column(format!("{name}_fk"), rows / 20.0, (0, (rows as i64) / 20 - 1), 4)
                    .column(format!("{name}_x"), 50.0, (0, 49), 8)
                    .primary_key(&[&format!("{name}_key")])
                    .build(),
            );
        }
        let mut ctx = DagContext::new(cat);
        let a = ctx.instance_by_name("a", 0);
        let b = ctx.instance_by_name("b", 0);
        let c = ctx.instance_by_name("c", 0);
        let d = ctx.instance_by_name("d", 0);
        let p_ab = Predicate::join(ctx.col(a, "a_key"), ctx.col(b, "b_fk"));
        let p_bc = Predicate::join(ctx.col(b, "b_key"), ctx.col(c, "c_fk"));
        let p_bd = Predicate::join(ctx.col(b, "b_key"), ctx.col(d, "d_fk"));
        let sel = Predicate::on(ctx.col(c, "c_x"), Constraint::le(25));
        let q1 = PlanNode::scan(a)
            .join(PlanNode::scan(b), p_ab)
            .join(PlanNode::scan(c).select(sel.clone()), p_bc.clone());
        let q2 = PlanNode::scan(b)
            .join(PlanNode::scan(c).select(sel), p_bc)
            .join(PlanNode::scan(d), p_bd);
        BatchDag::build(ctx, &[q1, q2], &RuleSet::default())
    }

    #[test]
    fn engine_matches_reference_optimizer_on_empty_set() {
        let batch = build_batch();
        let cm = DiskCostModel::paper();
        let mut engine =
            BestCostEngine::new(&batch.memo, &cm, batch.root, &batch.shareable);
        let bc_empty = engine.bc(&BitSet::empty(batch.universe_size()));

        let opt = Optimizer::new(&batch.memo, &cm);
        let mut table = PlanTable::new();
        let reference = opt.best_use_cost(batch.root, &MatOverlay::empty(), &mut table);
        assert!(
            (bc_empty - reference).abs() < 1e-6,
            "engine {bc_empty} vs reference {reference}"
        );
    }

    #[test]
    fn engine_matches_reference_on_singletons() {
        let batch = build_batch();
        let cm = DiskCostModel::paper();
        let mut engine =
            BestCostEngine::new(&batch.memo, &cm, batch.root, &batch.shareable);
        let opt = Optimizer::new(&batch.memo, &cm);
        let n = batch.universe_size();
        assert!(n > 0);
        for e in 0..n {
            let set = BitSet::from_iter(n, [e]);
            let bc = engine.bc(&set);
            // Reference: buc(root | {g}) + produce(g) + write(g).
            let g = batch.shareable[e];
            let overlay = MatOverlay::new(&batch.memo, [g]);
            let mut t1 = PlanTable::new();
            let buc = opt.best_use_cost(batch.root, &overlay, &mut t1);
            let produce = opt.produce_cost(g, &overlay);
            let reference = buc + produce + opt.write_cost(g);
            assert!(
                (bc - reference).abs() < 1e-6,
                "element {e}: engine {bc} vs reference {reference}"
            );
        }
    }

    #[test]
    fn incremental_matches_full() {
        let batch = build_batch();
        let cm = DiskCostModel::paper();
        let mut inc = BestCostEngine::new(&batch.memo, &cm, batch.root, &batch.shareable);
        let mut full = BestCostEngine::new(&batch.memo, &cm, batch.root, &batch.shareable);
        full.force_full = true;
        let n = batch.universe_size();
        // Deterministic pseudo-random subsets.
        let mut state = 0x9E3779B97F4A7C15u64;
        for _ in 0..40 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let mut set = BitSet::empty(n);
            for e in 0..n {
                if (state >> (e % 64)) & 1 == 1 && e % 3 != 0 {
                    set.insert(e);
                }
            }
            let a = inc.bc(&set);
            let b = full.bc(&set);
            assert!((a - b).abs() < 1e-6, "incremental {a} vs full {b}");
        }
    }

    #[test]
    fn bc_empty_is_locally_optimal_cost() {
        // bc(∅) must not exceed the cost of any particular plan; a weak
        // sanity bound: it is positive and finite.
        let batch = build_batch();
        let cm = DiskCostModel::paper();
        let mut engine =
            BestCostEngine::new(&batch.memo, &cm, batch.root, &batch.shareable);
        let bc = engine.bc(&BitSet::empty(batch.universe_size()));
        assert!(bc.is_finite() && bc > 0.0);
    }

    #[test]
    fn materializing_shared_node_helps_somewhere() {
        // In this batch σ(c) (or b⋈σ(c)) is shared; at least one singleton
        // must beat bc(∅).
        let batch = build_batch();
        let cm = DiskCostModel::paper();
        let mut engine =
            BestCostEngine::new(&batch.memo, &cm, batch.root, &batch.shareable);
        let n = batch.universe_size();
        let empty = engine.bc(&BitSet::empty(n));
        let best_single = (0..n)
            .map(|e| engine.bc(&BitSet::from_iter(n, [e])))
            .fold(f64::INFINITY, f64::min);
        assert!(
            best_single < empty,
            "no single materialization helps: best {best_single} vs empty {empty}"
        );
    }

    #[test]
    fn rebase_keeps_answers_consistent() {
        let batch = build_batch();
        let cm = DiskCostModel::paper();
        let mut engine =
            BestCostEngine::new(&batch.memo, &cm, batch.root, &batch.shareable);
        let n = batch.universe_size();
        let set = BitSet::from_iter(n, (0..n).filter(|e| e % 2 == 0));
        let before = engine.bc(&set);
        engine.rebase(&set);
        let after = engine.bc(&set);
        assert!((before - after).abs() < 1e-6);
    }
}
