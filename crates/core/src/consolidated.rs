//! Consolidated-plan extraction: turns a chosen materialized set into the
//! full physical artifact — the production plan of every materialized node
//! plus the per-query plans reading them — for display and inspection.
//!
//! Extraction rides the compiled [`BestCostEngine`]'s flat arenas: one
//! full bottom-up solve for the chosen set fills dense per-state
//! `compute`/`use` arrays, a `DensePlanTable` records the winning option
//! of every `(dense group, sort-order slot)` state in one linear pass, and
//! the plan trees are read straight off the option/provenance arenas. No
//! `GroupId` is ever hashed on this path — the pre-`Session`
//! implementation re-ran the reference `mqo_volcano::optimizer::Optimizer`
//! with its `HashMap`-keyed `PlanTable` per materialization and per query
//! (that reference DP remains in `mqo-volcano` as the test oracle; see
//! `tests/plan_extraction_differential.rs`).

use mqo_submod::bitset::BitSet;
use mqo_volcano::cost::CostModel;
use mqo_volcano::memo::GroupId;
use mqo_volcano::physical::{PhysOp, PhysPlan};
use mqo_volcano::plan::render_plan;

use crate::batch::BatchDag;
use crate::config::MqoConfig;
use crate::engine::{BestCostEngine, OutOrder};

/// The full consolidated evaluation plan for a batch.
#[derive(Clone, Debug)]
pub struct ConsolidatedPlan {
    /// `(group, production plan)` for each materialized node, ascending by
    /// universe element (the order greedy reports list them in).
    pub materializations: Vec<(GroupId, PhysPlan)>,
    /// One plan per query, reading materialized nodes where beneficial.
    pub query_plans: Vec<PhysPlan>,
    /// Total cost: productions + writes + query plans. Bit-identical to
    /// the engine's `bc(S)` — both total the same solved arenas.
    pub total_cost: f64,
}

impl ConsolidatedPlan {
    /// Extracts the consolidated plan for `materialized`, compiling a
    /// fresh engine for the batch. Every entry must be a shareable node of
    /// the batch. [`crate::session::OptimizedBatch::run`] attaches the
    /// plan to its [`crate::strategies::RunReport`] without recompiling —
    /// this entry point serves callers holding only a chosen set.
    pub fn extract(batch: &BatchDag, cm: &dyn CostModel, materialized: &[GroupId]) -> Self {
        let engine = batch.compile_engine(cm, MqoConfig::serial());
        let n = batch.universe_size();
        let set = BitSet::from_iter(
            n,
            materialized.iter().map(|&g| {
                batch
                    .shareable_index(g)
                    .expect("materialized node outside the shareable universe")
            }),
        );
        let roots: Vec<u32> = batch
            .query_roots()
            .iter()
            .map(|&q| engine.topo.dense(q))
            .collect();
        Self::extract_with_engine(&roots, &engine, &set)
    }

    /// Extraction against an already compiled engine (the path
    /// `Session::run` takes after the selection phase). `query_roots` are
    /// the dense topological indices of the live query roots; together
    /// with the arenas' own row estimates this path never touches the
    /// (mutable) memo, so it runs unchanged off an immutable
    /// [`crate::engine::EngineState`] snapshot.
    pub(crate) fn extract_with_engine(
        query_roots: &[u32],
        engine: &BestCostEngine,
        set: &BitSet,
    ) -> Self {
        let table = DensePlanTable::solve(engine, set);

        let mut materializations = Vec::with_capacity(table.set.len());
        for e in table.set.iter() {
            let d = engine.universe_dense[e] as usize;
            let plan = table.extract_compute(d, 0);
            materializations.push((engine.topo.group_at(d), plan));
        }

        let query_plans = query_roots
            .iter()
            .map(|&q| table.extract_use(q as usize, 0))
            .collect();

        let total_cost = engine.total_from_slice(&table.set, &table.compute);
        ConsolidatedPlan {
            materializations,
            query_plans,
            total_cost,
        }
    }

    /// Renders the whole consolidated plan as text.
    pub fn render(&self, batch: &BatchDag) -> String {
        let mut out = String::new();
        for (g, plan) in &self.materializations {
            out.push_str(&format!("== materialize group {} ==\n", g.0));
            out.push_str(&render_plan(plan, batch.memo()));
        }
        for (i, plan) in self.query_plans.iter().enumerate() {
            out.push_str(&format!("== query {} ==\n", i + 1));
            out.push_str(&render_plan(plan, batch.memo()));
        }
        out
    }
}

/// Winner sentinel: the state's best choice is the sort enforcer over its
/// own unordered state.
const ENFORCE: u32 = u32::MAX;

/// A dense memoization table over the engine's `(dense group, sort-order
/// slot)` state space: the solved `compute`/`use` arenas for one
/// materialized set plus the winning option index of every state. Indexed
/// through the engine's [`mqo_volcano::memo::TopoView`]-derived offsets —
/// plain array lookups, no `(GroupId, SortOrder)` hashing anywhere.
struct DensePlanTable<'a> {
    engine: &'a BestCostEngine,
    /// The sanitized materialized set.
    set: BitSet,
    /// Solved `compute` values, per state.
    compute: Vec<f64>,
    /// Winning choice per state: an option index, or [`ENFORCE`]. The read
    /// decision is not stored — it is re-derived per reference from
    /// `read[s] <= compute[s]`, exactly as the DP's `use` minimum does.
    winner: Vec<u32>,
}

impl<'a> DensePlanTable<'a> {
    /// Solves the DP for `set` and records every state's winner in one
    /// linear pass over the option arenas. The winner recomputation
    /// mirrors the solve arithmetic term for term, so the recovered costs
    /// are bit-identical to the solved arenas.
    fn solve(engine: &'a BestCostEngine, set: &BitSet) -> Self {
        let (set, compute, use_) = engine.solve_for_extraction(set);
        let n_states = engine.n_states();
        let mut winner = vec![ENFORCE; n_states];
        for d in 0..engine.topo.len() {
            let s0 = engine.state_off[d] as usize;
            let s1 = engine.state_off[d + 1] as usize;
            #[allow(clippy::needless_range_loop)]
            for s in s0..s1 {
                let mut best = f64::INFINITY;
                let mut w = ENFORCE;
                for o in engine.opt_off[s] as usize..engine.opt_off[s + 1] as usize {
                    // Children first, operator cost last — the exact
                    // association of the solve's `best_option`, so the
                    // recovered winner agrees with `compute` bit for bit.
                    let mut cost = 0.0;
                    for &c in &engine.opt_children
                        [engine.child_off[o] as usize..engine.child_off[o + 1] as usize]
                    {
                        cost += use_[c as usize];
                    }
                    cost += engine.opt_cost[o];
                    if cost < best {
                        best = cost;
                        w = o as u32;
                    }
                }
                // The enforcer displaces an option only when strictly
                // cheaper (the reference optimizer considers it last).
                if s > s0 && compute[s0] + engine.sort[d] < best {
                    w = ENFORCE;
                }
                winner[s] = w;
            }
        }
        DensePlanTable {
            engine,
            set,
            compute,
            winner,
        }
    }

    /// Extracts the plan consumers of the state see: a read of the
    /// materialized result when the group is in the set and reading is no
    /// more expensive than computing (ties favor the read, as in the
    /// reference optimizer), otherwise the computed plan.
    fn extract_use(&self, d: usize, slot: usize) -> PhysPlan {
        let e = self.engine;
        let s = e.state_off[d] as usize + slot;
        if e.materialized(d, &self.set) && e.read[s] <= self.compute[s] {
            let g = e.topo.group_at(d);
            let req = &e.state_order[s];
            let natural = &e.natural_order[d];
            let order = if natural.satisfies(req) {
                natural.clone()
            } else {
                // The folded sort re-orders the stream to the requirement;
                // `read[s]` already charges for it.
                req.clone()
            };
            return PhysPlan {
                op: PhysOp::MaterializedRead { group: g },
                expr: None,
                group: g,
                op_cost: e.read[s],
                total_cost: e.read[s],
                order,
                rows: e.rows[d],
                children: vec![],
            };
        }
        self.extract_compute(d, slot)
    }

    /// Extracts the plan *producing* the state's result (the group's own
    /// read option excluded — a production must not read its own copy).
    fn extract_compute(&self, d: usize, slot: usize) -> PhysPlan {
        let e = self.engine;
        let s = e.state_off[d] as usize + slot;
        let g = e.topo.group_at(d);
        let rows = e.rows[d];
        let w = self.winner[s];
        if w == ENFORCE {
            let inner = self.extract_compute(d, 0);
            let order = e.state_order[s].clone();
            return PhysPlan {
                op: PhysOp::Sort {
                    keys: order.0.clone(),
                },
                expr: None,
                group: g,
                op_cost: e.sort[d],
                total_cost: self.compute[s],
                order,
                rows,
                children: vec![inner],
            };
        }
        let o = w as usize;
        let (expr, ref op) = e.opt_phys[o];
        let mut children: Vec<PhysPlan> = e.opt_children
            [e.child_off[o] as usize..e.child_off[o + 1] as usize]
            .iter()
            .map(|&cs| {
                let dc = e.group_of_state[cs as usize] as usize;
                let slot_c = cs as usize - e.state_off[dc] as usize;
                self.extract_use(dc, slot_c)
            })
            .collect();
        // Join options list the outer child first; plans list children in
        // memo (left, right) order like the reference extractor.
        if matches!(
            op,
            PhysOp::MergeJoin { swapped: true, .. } | PhysOp::BlockNlJoin { swapped: true }
        ) {
            children.swap(0, 1);
        }
        let order = match &e.opt_out[o] {
            OutOrder::Fixed(order) => order.clone(),
            OutOrder::InheritChild0 => e.state_order[s].clone(),
        };
        PhysPlan {
            op: op.clone(),
            expr: Some(expr),
            group: g,
            op_cost: e.opt_cost[o],
            total_cost: self.compute[s],
            order,
            rows,
            children,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use crate::strategies::Strategy;
    use mqo_catalog::{Catalog, TableBuilder};
    use mqo_volcano::cost::DiskCostModel;
    use mqo_volcano::rules::RuleSet;
    use mqo_volcano::{Constraint, DagContext, PlanNode, Predicate};

    fn session() -> crate::session::OptimizedBatch {
        let mut cat = Catalog::new();
        for (name, rows) in [("a", 50_000.0), ("b", 100_000.0), ("c", 25_000.0)] {
            cat.add_table(
                TableBuilder::new(name, rows)
                    .key_column(format!("{name}_key"), 4)
                    .column(
                        format!("{name}_fk"),
                        rows / 50.0,
                        (0, (rows as i64) / 50 - 1),
                        4,
                    )
                    .column(format!("{name}_x"), 100.0, (0, 99), 8)
                    .primary_key(&[&format!("{name}_key")])
                    .build(),
            );
        }
        let mut ctx = DagContext::new(cat);
        let a = ctx.instance_by_name("a", 0);
        let b = ctx.instance_by_name("b", 0);
        let c = ctx.instance_by_name("c", 0);
        let p_ab = Predicate::join(ctx.col(a, "a_key"), ctx.col(b, "b_fk"));
        let p_bc = Predicate::join(ctx.col(b, "b_key"), ctx.col(c, "c_fk"));
        let sel = Predicate::on(ctx.col(b, "b_x"), Constraint::eq(7));
        let q1 = PlanNode::scan(a).join(PlanNode::scan(b).select(sel.clone()), p_ab);
        let q2 = PlanNode::scan(b).select(sel).join(PlanNode::scan(c), p_bc);
        Session::builder()
            .context(ctx)
            .queries([q1, q2])
            .rules(RuleSet::default())
            .cost_model(DiskCostModel::paper())
            .build()
    }

    #[test]
    fn consolidated_cost_matches_engine_bc() {
        let s = session();
        let report = s.run(Strategy::MarginalGreedy);
        assert!(
            (report.plan.total_cost - report.total_cost).abs() < 1e-6 * (1.0 + report.total_cost),
            "extracted {} vs engine {}",
            report.plan.total_cost,
            report.total_cost
        );
        assert_eq!(report.plan.query_plans.len(), 2);
        assert_eq!(
            report.plan.materializations.len(),
            report.materialized.len()
        );
    }

    #[test]
    fn standalone_extract_matches_report_plan() {
        let s = session();
        let report = s.run(Strategy::Greedy);
        let plan = ConsolidatedPlan::extract(s.batch(), s.cost_model(), &report.materialized);
        assert_eq!(plan.total_cost, report.plan.total_cost);
        assert_eq!(plan.render(s.batch()), report.plan.render(s.batch()));
    }

    #[test]
    fn render_mentions_materializations_and_queries() {
        let s = session();
        let report = s.run(Strategy::Greedy);
        let text = report.plan.render(s.batch());
        assert!(text.contains("== query 1 =="));
        assert!(text.contains("== query 2 =="));
        if !report.materialized.is_empty() {
            assert!(text.contains("== materialize group"));
        }
    }
}
