//! Consolidated-plan extraction: turns a chosen materialized set into the
//! full physical artifact — the production plan of every materialized node
//! plus the per-query plans reading them — for display and inspection.

use mqo_volcano::cost::CostModel;
use mqo_volcano::memo::GroupId;
use mqo_volcano::optimizer::{MatOverlay, Optimizer, PlanTable};
use mqo_volcano::physical::{PhysPlan, SortOrder};
use mqo_volcano::plan::render_plan;

use crate::batch::BatchDag;

/// The full consolidated evaluation plan for a batch.
#[derive(Debug)]
pub struct ConsolidatedPlan {
    /// `(group, production plan)` for each materialized node, in
    /// materialization order.
    pub materializations: Vec<(GroupId, PhysPlan)>,
    /// One plan per query, reading materialized nodes where beneficial.
    pub query_plans: Vec<PhysPlan>,
    /// Total cost: productions + writes + query plans.
    pub total_cost: f64,
}

impl ConsolidatedPlan {
    /// Extracts the consolidated plan for `materialized` using the
    /// reference (uncompiled) optimizer.
    pub fn extract(batch: &BatchDag, cm: &dyn CostModel, materialized: &[GroupId]) -> Self {
        let opt = Optimizer::new(&batch.memo, cm);
        let overlay = MatOverlay::new(&batch.memo, materialized.iter().copied());
        let mut total = 0.0;

        let mut materializations = Vec::with_capacity(materialized.len());
        for &g in materialized {
            let g = batch.memo.find(g);
            let produce_overlay = overlay.excluding(g);
            let mut table = PlanTable::new();
            let cost = opt.best_use_cost(g, &produce_overlay, &mut table);
            let plan = opt.extract_plan(g, &SortOrder::none(), &produce_overlay, &mut table);
            total += cost + opt.write_cost(g);
            materializations.push((g, plan));
        }

        let mut query_plans = Vec::with_capacity(batch.query_roots.len());
        for &q in &batch.query_roots {
            let mut table = PlanTable::new();
            let cost = opt.best_use_cost(q, &overlay, &mut table);
            let plan = opt.extract_plan(q, &SortOrder::none(), &overlay, &mut table);
            total += cost;
            query_plans.push(plan);
        }

        ConsolidatedPlan {
            materializations,
            query_plans,
            total_cost: total,
        }
    }

    /// Renders the whole consolidated plan as text.
    pub fn render(&self, batch: &BatchDag) -> String {
        let mut out = String::new();
        for (g, plan) in &self.materializations {
            out.push_str(&format!("== materialize group {} ==\n", g.0));
            out.push_str(&render_plan(plan, &batch.memo));
        }
        for (i, plan) in self.query_plans.iter().enumerate() {
            out.push_str(&format!("== query {} ==\n", i + 1));
            out.push_str(&render_plan(plan, &batch.memo));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::{optimize, Strategy};
    use mqo_catalog::{Catalog, TableBuilder};
    use mqo_volcano::cost::DiskCostModel;
    use mqo_volcano::rules::RuleSet;
    use mqo_volcano::{Constraint, DagContext, PlanNode, Predicate};

    fn batch() -> BatchDag {
        let mut cat = Catalog::new();
        for (name, rows) in [("a", 50_000.0), ("b", 100_000.0), ("c", 25_000.0)] {
            cat.add_table(
                TableBuilder::new(name, rows)
                    .key_column(format!("{name}_key"), 4)
                    .column(
                        format!("{name}_fk"),
                        rows / 50.0,
                        (0, (rows as i64) / 50 - 1),
                        4,
                    )
                    .column(format!("{name}_x"), 100.0, (0, 99), 8)
                    .primary_key(&[&format!("{name}_key")])
                    .build(),
            );
        }
        let mut ctx = DagContext::new(cat);
        let a = ctx.instance_by_name("a", 0);
        let b = ctx.instance_by_name("b", 0);
        let c = ctx.instance_by_name("c", 0);
        let p_ab = Predicate::join(ctx.col(a, "a_key"), ctx.col(b, "b_fk"));
        let p_bc = Predicate::join(ctx.col(b, "b_key"), ctx.col(c, "c_fk"));
        let sel = Predicate::on(ctx.col(b, "b_x"), Constraint::eq(7));
        let q1 = PlanNode::scan(a).join(PlanNode::scan(b).select(sel.clone()), p_ab);
        let q2 = PlanNode::scan(b).select(sel).join(PlanNode::scan(c), p_bc);
        BatchDag::build(ctx, &[q1, q2], &RuleSet::default())
    }

    #[test]
    fn consolidated_cost_matches_engine_bc() {
        let b = batch();
        let cm = DiskCostModel::paper();
        let report = optimize(&b, &cm, Strategy::MarginalGreedy);
        let plan = ConsolidatedPlan::extract(&b, &cm, &report.materialized);
        assert!(
            (plan.total_cost - report.total_cost).abs() < 1e-6 * (1.0 + report.total_cost),
            "extracted {} vs engine {}",
            plan.total_cost,
            report.total_cost
        );
        assert_eq!(plan.query_plans.len(), 2);
        assert_eq!(plan.materializations.len(), report.materialized.len());
    }

    #[test]
    fn render_mentions_materializations_and_queries() {
        let b = batch();
        let cm = DiskCostModel::paper();
        let report = optimize(&b, &cm, Strategy::Greedy);
        let plan = ConsolidatedPlan::extract(&b, &cm, &report.materialized);
        let text = plan.render(&b);
        assert!(text.contains("== query 1 =="));
        assert!(text.contains("== query 2 =="));
        if !report.materialized.is_empty() {
            assert!(text.contains("== materialize group"));
        }
    }
}
