//! Property tests for the compiled `bestCost` engine on randomized
//! workloads: equivalence of incremental and full evaluation, agreement
//! with the reference optimizer, and the oracle's structural guarantees.
//!
//! The build is offline, so instead of proptest these run as deterministic
//! seeded sweeps (see `mqo_submod::prng`): each case derives its inputs
//! from a per-case seed, and failures panic with that seed.

use mqo_catalog::{Catalog, TableBuilder};
use mqo_core::batch::BatchDag;
use mqo_core::engine::{BestCostEngine, MqoConfig};
use mqo_submod::bitset::BitSet;
use mqo_submod::prng::{seeded_sweep, Prng};
use mqo_volcano::cost::DiskCostModel;
use mqo_volcano::optimizer::{MatOverlay, Optimizer, PlanTable};
use mqo_volcano::rules::RuleSet;
use mqo_volcano::{Constraint, DagContext, PlanNode, Predicate};

use std::sync::atomic::{AtomicU64, Ordering};

const CASES: u64 = 24;
const SWEEP_SEED: u64 = 0x5EED_0003;

/// A randomized star-join batch: a central fact table joined with a random
/// subset of dimensions, repeated for several queries with random
/// selections.
fn random_batch(n_dims: usize, query_specs: &[(u8, Option<i64>)]) -> BatchDag {
    let mut cat = Catalog::new();
    cat.add_table(
        TableBuilder::new("fact", 500_000.0)
            .key_column("f_key", 4)
            .column("f_d0", 1_000.0, (0, 999), 4)
            .column("f_d1", 2_000.0, (0, 1_999), 4)
            .column("f_d2", 500.0, (0, 499), 4)
            .column("f_attr", 100.0, (0, 99), 8)
            .primary_key(&["f_key"])
            .build(),
    );
    for i in 0..n_dims {
        let rows = 1_000.0 * (i as f64 + 1.0);
        cat.add_table(
            TableBuilder::new(format!("dim{i}"), rows)
                .key_column("d_key", 4)
                .column("d_attr", 50.0, (0, 49), 8)
                .column("d_pad", 1.0, (0, 0), 60)
                .primary_key(&["d_key"])
                .build(),
        );
    }
    let mut ctx = DagContext::new(cat);
    let fact = ctx.instance_by_name("fact", 0);
    let dims: Vec<_> = (0..n_dims)
        .map(|i| ctx.instance_by_name(&format!("dim{i}"), 0))
        .collect();

    let mut queries = Vec::new();
    for &(dim_mask, sel) in query_specs {
        let mut plan = PlanNode::scan(fact);
        if let Some(v) = sel {
            plan = plan.select(Predicate::on(ctx.col(fact, "f_attr"), Constraint::eq(v)));
        }
        for (i, &d) in dims.iter().enumerate() {
            if dim_mask >> i & 1 == 1 {
                let fk = ctx.col(fact, &format!("f_d{i}"));
                let pk = ctx.col(d, "d_key");
                plan = plan.join(PlanNode::scan(d), Predicate::join(fk, pk));
            }
        }
        queries.push(plan);
    }
    BatchDag::build(ctx, &queries, &RuleSet::default())
}

/// The proptest strategy `vec((1u8..8, option::of(0i64..100)), lo..hi)`,
/// drawn from the case's PRNG.
fn draw_specs(rng: &mut Prng, lo: usize, hi: usize) -> Vec<(u8, Option<i64>)> {
    let len = rng.gen_range(lo..hi);
    (0..len)
        .map(|_| {
            let mask = rng.gen_range(1u8..8);
            let sel = rng.gen_bool(0.5).then(|| rng.gen_range(0i64..100));
            (mask, sel)
        })
        .collect()
}

/// Incremental evaluation agrees with the full DP on arbitrary sets.
#[test]
fn prop_incremental_equals_full() {
    let effective = AtomicU64::new(0);
    seeded_sweep("incremental_equals_full", SWEEP_SEED, CASES, |rng| {
        let specs = draw_specs(rng, 2, 4);
        let subset_seed = rng.next_u64();
        let batch = random_batch(3, &specs);
        let cm = DiskCostModel::paper();
        let mut inc = BestCostEngine::new(batch.memo(), &cm, batch.root(), batch.shareable());
        let mut full = BestCostEngine::with_config(
            batch.memo(),
            &cm,
            batch.root(),
            batch.shareable(),
            MqoConfig {
                force_full: true,
                ..Default::default()
            },
        );
        let n = batch.universe_size();
        if n == 0 {
            return;
        }
        effective.fetch_add(1, Ordering::Relaxed);
        let mut subset_rng = Prng::seed_from_u64(subset_seed);
        for _ in 0..8 {
            let bits = subset_rng.next_u64();
            let set = BitSet::from_iter(n, (0..n).filter(|e| (bits >> (e % 64)) & 1 == 1));
            let a = inc.bc(&set);
            let b = full.bc(&set);
            assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()), "{a} vs {b}");
        }
    });
    // Guard against the empty-universe skip path eating the sweep.
    let eff = effective.load(Ordering::Relaxed);
    assert!(eff >= CASES / 2, "only {eff}/{CASES} cases had a universe");
}

/// Engine bc(∅) equals the reference optimizer's best-use cost, and
/// singleton sets match the reference formula.
#[test]
fn prop_engine_matches_reference() {
    seeded_sweep("engine_matches_reference", SWEEP_SEED + 1, CASES, |rng| {
        let specs = draw_specs(rng, 2, 3);
        let batch = random_batch(3, &specs);
        let cm = DiskCostModel::paper();
        let mut engine = BestCostEngine::new(batch.memo(), &cm, batch.root(), batch.shareable());
        let opt = Optimizer::new(batch.memo(), &cm);
        let n = batch.universe_size();

        let bc_empty = engine.bc(&BitSet::empty(n));
        let mut t = PlanTable::new();
        let reference = opt.best_use_cost(batch.root(), &MatOverlay::empty(), &mut t);
        assert!(
            (bc_empty - reference).abs() < 1e-6 * (1.0 + reference),
            "bc(empty) {bc_empty} vs reference {reference}"
        );

        for e in 0..n.min(8) {
            let set = BitSet::from_iter(n, [e]);
            let bc = engine.bc(&set);
            let g = batch.shareable()[e];
            let overlay = MatOverlay::new(batch.memo(), [g]);
            let mut t1 = PlanTable::new();
            let buc = opt.best_use_cost(batch.root(), &overlay, &mut t1);
            let produce = opt.produce_cost(g, &overlay);
            let expect = buc + produce + opt.write_cost(g);
            assert!(
                (bc - expect).abs() < 1e-6 * (1.0 + expect),
                "element {e}: {bc} vs {expect}"
            );
        }
    });
}

/// bc is always positive and finite; evaluation is deterministic.
#[test]
fn prop_bc_sane() {
    seeded_sweep("bc_sane", SWEEP_SEED + 2, CASES, |rng| {
        let specs = draw_specs(rng, 1, 4);
        let mask = rng.next_u64();
        let batch = random_batch(3, &specs);
        let cm = DiskCostModel::paper();
        let mut engine = BestCostEngine::new(batch.memo(), &cm, batch.root(), batch.shareable());
        let n = batch.universe_size();
        let set = BitSet::from_iter(n, (0..n).filter(|e| (mask >> (e % 64)) & 1 == 1));
        let bc = engine.bc(&set);
        assert!(bc.is_finite() && bc > 0.0, "bc {bc}");
        let empty = engine.bc(&BitSet::empty(n));
        assert!(empty.is_finite() && empty > 0.0, "bc(empty) {empty}");
        // Supersets of materializations never reduce cost below the pure
        // use cost... but they can exceed bc(∅); just check determinism.
        let again = engine.bc(&set);
        assert_eq!(bc, again);
    });
}
