//! Stress and isolation suite for the concurrent serving layer
//! ([`mqo_core::serve::MqoService`]).
//!
//! The differential gate: **any** interleaving of concurrent
//! `submit_query` / `retire_query` / snapshot reads must leave the
//! service equivalent to a fresh single-threaded `Session::build()` over
//! the surviving queries — identical `bestCost` values and extracted
//! plans (modulo group-id numbering), identical universe fingerprint
//! sets. Workers retire only their own submissions, so the survivor
//! multiset is interleaving-independent while the admission order, round
//! coalescing, and writer elections are not.
//!
//! Also pinned here: snapshot isolation (a reader holding an old
//! [`mqo_core::EngineState`] gets bit-identical answers while commits
//! land underneath), the re-baselining bound (after
//! `compact_history` the evolution history depends only on the live
//! query count, not on how many add/retire cycles preceded it), and the
//! materialization cache's capacity bound and determinism.
//!
//! `scripts/verify.sh` runs this file under both `MQO_THREADS=1` and
//! `MQO_THREADS=4`; the engine-side thread sweep below is explicit.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use mqo_core::fault::{self, FaultSite};
use mqo_core::session::Session;
use mqo_core::strategies::Strategy;
use mqo_core::{MqoConfig, MqoError, OptimizedBatch, PriorityClass, ServeConfig};
use mqo_submod::prng::Prng;
use mqo_volcano::cost::DiskCostModel;
use mqo_volcano::{DagContext, PlanNode};

const THREADS: [usize; 2] = [1, 4];

fn build(ctx: DagContext, queries: &[PlanNode], threads: usize) -> OptimizedBatch {
    Session::builder()
        .context(ctx)
        .queries(queries.iter().cloned())
        .cost_model(DiskCostModel::paper())
        .threads(threads)
        .build()
}

/// Replaces every `group <digits>` occurrence with `group #`: group ids
/// are memo-allocation order, which legitimately differs between a served
/// batch and a fresh build of the same queries.
fn strip_group_ids(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(pos) = rest.find("group ") {
        let (head, tail) = rest.split_at(pos + "group ".len());
        out.push_str(head);
        let digits = tail.chars().take_while(|c| c.is_ascii_digit()).count();
        if digits > 0 {
            out.push('#');
        }
        rest = &tail[digits..];
    }
    out.push_str(rest);
    out
}

/// Replaces every `query <digits>` header index with `query #`: admission
/// order under concurrent submitters is interleaving-dependent, the plan
/// multiset is not.
fn strip_query_indices(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(pos) = rest.find("query ") {
        let (head, tail) = rest.split_at(pos + "query ".len());
        out.push_str(head);
        let digits = tail.chars().take_while(|c| c.is_ascii_digit()).count();
        if digits > 0 {
            out.push('#');
        }
        rest = &tail[digits..];
    }
    out.push_str(rest);
    out
}

/// The id-free signature of one strategy run: exact cost values plus the
/// normalized plan text. Unlike the single-writer evolution suite, *all*
/// sections are compared as a sorted multiset: concurrent workers race on
/// admission order, so query numbering (like group numbering) is an
/// interleaving artifact — `query 3` here may be `query 5` in the fresh
/// build — while the multiset of extracted plans is not.
fn run_signature(batch: &OptimizedBatch, strategy: Strategy) -> (String, Vec<String>) {
    let r = batch.run(strategy);
    let rendered = strip_group_ids(&r.plan.render(batch.batch()));
    let rendered = strip_query_indices(&rendered);
    let mut sections: Vec<String> = rendered
        .split("== ")
        .filter(|part| !part.is_empty())
        .map(str::to_string)
        .collect();
    sections.sort();
    (
        format!(
            "{}: total {:.9e} volcano {:.9e} benefit {:.9e} mats {} queries {}",
            r.strategy,
            r.total_cost,
            r.volcano_cost,
            r.benefit,
            r.materialized.len(),
            r.plan.query_plans.len(),
        ),
        sections,
    )
}

/// Every observable of the served batch matches the fresh build.
fn assert_equivalent(served: &OptimizedBatch, fresh: &OptimizedBatch, label: &str) {
    served.batch().memo().check_consistency();
    assert_eq!(
        served.batch().universe_fingerprints(),
        fresh.batch().universe_fingerprints(),
        "{label}: universe fingerprint sets diverge"
    );
    for strategy in [
        Strategy::Volcano,
        Strategy::Greedy,
        Strategy::MarginalGreedy,
    ] {
        let (s_costs, s_plans) = run_signature(served, strategy);
        let (f_costs, f_plans) = run_signature(fresh, strategy);
        assert_eq!(s_costs, f_costs, "{label}: cost values diverge");
        assert_eq!(s_plans, f_plans, "{label}: extracted plans diverge");
    }
}

/// The differential gate: concurrent submit/retire/read workers, then the
/// finished batch must match a fresh single-threaded build of the
/// survivor multiset.
#[test]
fn concurrent_service_matches_fresh_build_of_survivors() {
    for threads in THREADS {
        let w = mqo_tpcd::batched(4, 1.0);
        let pool = w.queries.clone();
        assert!(pool.len() >= 4, "BQ4 must provide an add pool");
        let base: Vec<PlanNode> = pool[..2].to_vec();
        let service = build(w.ctx, &base, threads).serve();
        let extras: Vec<PlanNode> = pool[2..].to_vec();
        const WORKERS: usize = 4;

        let done = AtomicBool::new(false);
        // Each worker submits every extra (duplicates across workers are
        // legal — hash-consing shares them) and retires its odd-indexed
        // submissions, so its survivor list is interleaving-independent.
        let mut per_worker: Vec<Vec<PlanNode>> = Vec::new();
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for wid in 0..WORKERS {
                let service = &service;
                let extras = &extras;
                handles.push(s.spawn(move || {
                    let mut survivors = Vec::new();
                    // Stagger submission order per worker to vary the
                    // interleaving across runs and thread counts.
                    for k in 0..extras.len() {
                        let i = (k + wid) % extras.len();
                        let t = service.submit_query(extras[i].clone());
                        if k % 2 == 1 {
                            service.retire_query(t);
                        } else {
                            survivors.push(extras[i].clone());
                        }
                    }
                    survivors
                }));
            }
            // Readers hammer the published snapshot while writers commit.
            let readers: Vec<_> = (0..2)
                .map(|_| {
                    let service = &service;
                    let done = &done;
                    s.spawn(move || {
                        let mut reads = 0u32;
                        while !done.load(Ordering::Relaxed) || reads == 0 {
                            let r = service.run_with(Strategy::Greedy);
                            assert!(r.total_cost.is_finite() && r.total_cost > 0.0);
                            assert!(r.total_cost <= r.volcano_cost + 1e-6);
                            assert!(!r.plan.query_plans.is_empty());
                            reads += 1;
                        }
                        reads
                    })
                })
                .collect();
            for h in handles {
                per_worker.push(h.join().expect("submit worker panicked"));
            }
            done.store(true, Ordering::Relaxed);
            for r in readers {
                assert!(r.join().expect("reader panicked") > 0);
            }
        });

        // Quiescent: every thread must now serve bit-identical answers.
        let reference = service.run_with(Strategy::MarginalGreedy);
        std::thread::scope(|s| {
            for _ in 0..WORKERS {
                let service = &service;
                let reference = &reference;
                s.spawn(move || {
                    let r = service.run_with(Strategy::MarginalGreedy);
                    assert_eq!(r.total_cost.to_bits(), reference.total_cost.to_bits());
                    assert_eq!(r.volcano_cost.to_bits(), reference.volcano_cost.to_bits());
                    assert_eq!(r.materialized.len(), reference.materialized.len());
                });
            }
        });

        let stats = service.stats();
        let submitted = WORKERS * extras.len();
        assert_eq!(
            stats.admitted as usize, submitted,
            "every submission admitted"
        );
        assert_eq!(
            stats.retired as usize,
            WORKERS * (extras.len() / 2),
            "every odd-indexed submission retired"
        );
        assert!(stats.rounds >= 1 && stats.rounds <= stats.admitted);

        let served = service.finish();
        let mut survivors = base.clone();
        for v in per_worker {
            survivors.extend(v);
        }
        assert_eq!(served.tickets().len(), survivors.len());
        let w2 = mqo_tpcd::batched(4, 1.0);
        let fresh = build(w2.ctx, &survivors, 1);
        assert_equivalent(
            &served,
            &fresh,
            &format!("BQ4 serve stress threads={threads}"),
        );
    }
}

/// Snapshot isolation: a reader holding an old `Arc<EngineState>` gets
/// bit-identical plans and costs on every run while a concurrent writer
/// commits evolutions underneath.
#[test]
fn old_snapshot_is_bitwise_stable_across_concurrent_commits() {
    for threads in THREADS {
        let w = mqo_tpcd::batched(3, 1.0);
        let pool = w.queries.clone();
        let base: Vec<PlanNode> = pool[..2].to_vec();
        let service = build(w.ctx, &base, threads).serve();
        let config = MqoConfig {
            threads,
            ..MqoConfig::default()
        };

        let old = service.snapshot();
        let reference = old.run(Strategy::Greedy, config);
        std::thread::scope(|s| {
            let writer = s.spawn(|| {
                // Commit a stream of evolutions: grow, shrink, grow.
                let t = service.submit_query(pool[2].clone());
                service.retire_query(t);
                service.submit_query(pool[2].clone())
            });
            let old = &old;
            let reference = &reference;
            let reader = s.spawn(move || {
                for _ in 0..12 {
                    let r = old.run(Strategy::Greedy, config);
                    assert_eq!(
                        r.total_cost.to_bits(),
                        reference.total_cost.to_bits(),
                        "old snapshot answered differently mid-commit"
                    );
                    assert_eq!(r.volcano_cost.to_bits(), reference.volcano_cost.to_bits());
                    assert_eq!(r.materialized, reference.materialized);
                    assert_eq!(r.plan.query_plans.len(), reference.plan.query_plans.len());
                }
            });
            writer.join().expect("writer panicked");
            reader.join().expect("reader panicked");
        });

        // The old snapshot is still answerable and still frozen...
        let after = old.run(Strategy::Greedy, config);
        assert_eq!(after.total_cost.to_bits(), reference.total_cost.to_bits());
        assert_eq!(old.n_queries(), 2);
        // ...while the published snapshot moved on to the grown batch.
        let current = service.snapshot();
        assert!(current.version() > old.version());
        assert_eq!(current.n_queries(), 3);
        let grown = current.run(Strategy::Greedy, config);
        assert_eq!(grown.plan.query_plans.len(), 3);
        drop(service.finish());
    }
}

/// Re-baselining bound: after `compact_history`, the evolution history
/// (provenance entries + memo undo log) depends only on the live query
/// count — not on how many add/retire cycles came before.
#[test]
fn compacted_history_is_independent_of_prior_cycles() {
    let mut baselines = Vec::new();
    for cycles in [2usize, 7, 15] {
        let w = mqo_tpcd::batched(4, 1.0);
        let pool = w.queries.clone();
        let mut batch = build(w.ctx, &pool[..2], 1);
        let extra = pool[2].clone();
        for _ in 0..cycles {
            let t = batch.add_query(extra.clone());
            batch.retire_query(t);
        }
        // History grows with the cycle count before compaction (each
        // cycle leaves at least a retired provenance tombstone)...
        assert!(
            batch.history_len() >= 2 + cycles,
            "expected history to accumulate over {cycles} cycles, got {}",
            batch.history_len()
        );
        batch.compact_history();
        // ...and collapses to the live-query floor after.
        assert_eq!(batch.tickets().len(), 2);
        baselines.push(batch.history_len());

        // Compaction must not change any observable.
        let w2 = mqo_tpcd::batched(4, 1.0);
        let fresh = build(w2.ctx, &pool[..2], 1);
        assert_equivalent(&batch, &fresh, &format!("compacted after {cycles} cycles"));

        // Outstanding tickets survive compaction (stable ids, not
        // positions) and the batch stays evolvable.
        let t = batch.add_query(extra.clone());
        assert!(batch.batch().is_live(t));
        batch.retire_query(t);
    }
    assert!(
        baselines.windows(2).all(|w| w[0] == w[1]),
        "compacted history must not depend on prior cycle count: {baselines:?}"
    );
}

/// The serving layer triggers re-baselining on its own once the history
/// watermark is crossed, and keeps serving correct answers.
#[test]
fn service_compacts_past_the_watermark() {
    let w = mqo_tpcd::batched(4, 1.0);
    let pool = w.queries.clone();
    let batch = build(w.ctx, &pool[..2], 1);
    let floor = batch.history_len();
    let service = batch.serve_with(ServeConfig {
        history_watermark: floor + 6,
        ..ServeConfig::default()
    });
    for _ in 0..10 {
        let t = service.submit_query(pool[2].clone());
        service.retire_query(t);
    }
    let stats = service.stats();
    assert!(
        stats.compactions >= 1,
        "watermark {} never triggered a compaction (history {})",
        floor + 6,
        service.history_len()
    );
    assert!(
        service.history_len() <= floor + 6,
        "history {} left above the watermark",
        service.history_len()
    );
    let served = service.finish();
    let w2 = mqo_tpcd::batched(4, 1.0);
    let fresh = build(w2.ctx, &pool[..2], 1);
    assert_equivalent(&served, &fresh, "service compaction");
}

/// The chaos differential gate: concurrent submitters under seeded fault
/// injection (oracle panics and admission-precommit panics, plus
/// deadline-degraded reads riding along) must leave the service
/// equivalent to a fresh single-threaded build of the *successful*
/// survivors — every failed round was rolled back to its entry savepoint
/// and must leave no trace in the universe, the costs, or the plans.
///
/// Failpoints are thread-local, so each worker's injections fire only in
/// rounds that worker itself drives; a failed round also fails whatever
/// coalesced submissions rode along, and those workers observe the same
/// typed [`MqoError::RoundFailed`] and drop the plan from their survivor
/// list — accounting stays exact under any interleaving.
#[test]
fn chaos_interleavings_match_fresh_build_of_survivors() {
    for threads in THREADS {
        let w = mqo_tpcd::batched(4, 1.0);
        let pool = w.queries.clone();
        assert!(pool.len() >= 4, "BQ4 must provide an add pool");
        let base: Vec<PlanNode> = pool[..2].to_vec();
        let extras: Vec<PlanNode> = pool[2..].to_vec();
        let service = build(w.ctx, &base, threads).serve_with(ServeConfig {
            // Cache refresh runs the oracle inside the publish phase:
            // injected oracle panics exercise the publish-failure path.
            cache_capacity: 4,
            class_budgets: [Some(Duration::from_nanos(1)), None, None],
            ..ServeConfig::default()
        });

        // One guaranteed, uncontended injection first: the round must
        // fail with the typed error and leave zero trace.
        fault::arm(FaultSite::OracleEval, 1);
        let r = service.try_submit_query(extras[0].clone());
        fault::disarm_all();
        assert_eq!(r, Err(MqoError::RoundFailed));
        assert_eq!(service.tickets().len(), base.len());

        const WORKERS: usize = 4;
        const OPS: usize = 8;
        let mut per_worker: Vec<Vec<PlanNode>> = Vec::new();
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for wid in 0..WORKERS {
                let service = &service;
                let extras = &extras;
                handles.push(s.spawn(move || {
                    let mut rng = Prng::seed_from_u64(Prng::derive_seed(0xC4A05C4A05, wid as u64));
                    let mut survivors = Vec::new();
                    for k in 0..OPS {
                        let i = rng.gen_range(0..extras.len());
                        // Seeded chaos: ~1/3 of submissions go out with a
                        // failpoint armed on this thread.
                        match rng.next_u64() % 6 {
                            0 => fault::arm(FaultSite::OracleEval, 1 + rng.next_u64() % 3),
                            1 => fault::arm(FaultSite::AdmissionPrecommit, 1),
                            _ => {}
                        }
                        let outcome = service.try_submit_query(extras[i].clone());
                        fault::disarm_all();
                        match outcome {
                            Ok(t) => {
                                if rng.gen_bool(0.5) {
                                    service
                                        .try_retire_query(t)
                                        .expect("own live ticket must retire");
                                } else {
                                    survivors.push(extras[i].clone());
                                }
                            }
                            // Rolled back: the plan left no trace, so it
                            // is not a survivor.
                            Err(MqoError::RoundFailed) => {}
                            Err(e) => panic!("unexpected admission error: {e}"),
                        }
                        if k % 3 == 0 {
                            // Deadline-degraded reads ride along; they
                            // must always certify.
                            let r = service.run_class(PriorityClass::Interactive);
                            let cert = r.gap_certificate.expect("greedy strategies certify");
                            assert!(cert.ratio >= 1.0);
                            assert!(r.total_cost <= r.volcano_cost + 1e-6);
                        }
                    }
                    survivors
                }));
            }
            for h in handles {
                per_worker.push(h.join().expect("chaos worker panicked"));
            }
        });

        let stats = service.stats();
        assert!(
            stats.failed_rounds >= 1,
            "the guaranteed injection must be counted"
        );

        let served = service.finish();
        let mut survivors = base.clone();
        for v in per_worker {
            survivors.extend(v);
        }
        assert_eq!(served.tickets().len(), survivors.len());
        let w2 = mqo_tpcd::batched(4, 1.0);
        let fresh = build(w2.ctx, &survivors, 1);
        assert_equivalent(&served, &fresh, &format!("BQ4 chaos threads={threads}"));
    }
}

/// The materialization cache respects its capacity, scores every retained
/// entry with positive marginal benefit, and is deterministic across
/// identical admission sequences.
#[test]
fn materialization_cache_is_bounded_and_deterministic() {
    let run_service = |capacity: usize| {
        let w = mqo_tpcd::batched(4, 1.0);
        let pool = w.queries.clone();
        let service = build(w.ctx, &pool[..3], 1).serve_with(ServeConfig {
            cache_capacity: capacity,
            ..ServeConfig::default()
        });
        for q in &pool[3..] {
            let _ = service.submit_query(q.clone());
        }
        let fps = service.cached_materializations();
        let evictions = service.stats().evictions;
        drop(service.finish());
        (fps, evictions)
    };

    let (wide, _) = run_service(64);
    assert!(
        !wide.is_empty(),
        "MarginalGreedy on BQ4 materializes; the cache must retain something"
    );
    let (wide2, _) = run_service(64);
    assert_eq!(wide, wide2, "identical sequences must cache identically");

    let (narrow, narrow_evictions) = run_service(1);
    assert!(narrow.len() <= 1, "capacity 1 exceeded: {narrow:?}");
    if wide.len() > 1 {
        assert!(
            narrow_evictions >= 1,
            "shrinking capacity below the retained set must evict"
        );
        // The survivor is the highest-benefit entry of the wide run.
        assert_eq!(narrow.first(), wide.first());
    }
}
