//! Differential suite for evolvable sessions: **any** sequence of
//! `add_query` / `retire_query` / `savepoint` / `rollback` on a live
//! [`OptimizedBatch`] must leave it equivalent to a fresh
//! `Session::build()` over the surviving queries — same live
//! expression/group counts, same shareable universe (compared as the
//! id-free fingerprint *set*, since an evolved batch keeps stable slot
//! order and may carry tombstoned slots), identical `bestCost` values, and
//! identical extracted plans (compared with materialized-group ids
//! normalized away, as the two memos number groups differently).
//!
//! Sequences are swept over the TPCD batches BQ3/BQ4 and over seeded
//! random chain workloads (`mqo_tpcd::random`), under both the serial and
//! the 4-worker configuration — `scripts/verify.sh` runs the whole file
//! under `MQO_THREADS=1` and `MQO_THREADS=4` on every tier-1 pass.

use mqo_core::session::Session;
use mqo_core::strategies::Strategy;
use mqo_core::{OptimizedBatch, QueryTicket};
use mqo_submod::prng::Prng;
use mqo_volcano::cost::DiskCostModel;
use mqo_volcano::{DagContext, PlanNode};

const THREADS: [usize; 2] = [1, 4];

fn build(ctx: DagContext, queries: &[PlanNode], threads: usize) -> OptimizedBatch {
    Session::builder()
        .context(ctx)
        .queries(queries.iter().cloned())
        .cost_model(DiskCostModel::paper())
        .threads(threads)
        .build()
}

/// Replaces every `group <digits>` occurrence with `group #`: group ids
/// are memo-allocation order, which legitimately differs between an
/// evolved batch and a fresh build of the same queries.
fn strip_group_ids(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(pos) = rest.find("group ") {
        let (head, tail) = rest.split_at(pos + "group ".len());
        out.push_str(head);
        let digits = tail.chars().take_while(|c| c.is_ascii_digit()).count();
        if digits > 0 {
            out.push('#');
        }
        rest = &tail[digits..];
    }
    out.push_str(rest);
    out
}

/// The id-free signature of one strategy run: exact cost values plus the
/// normalized plan text (materialization plans as a sorted multiset —
/// greedy commit order is id-dependent — and query plans in order).
fn run_signature(batch: &OptimizedBatch, strategy: Strategy) -> (String, Vec<String>) {
    let r = batch.run(strategy);
    let rendered = r.plan.render(batch.batch());
    let mut sections: Vec<String> = Vec::new();
    let mut mats: Vec<String> = Vec::new();
    for part in strip_group_ids(&rendered).split("== ") {
        if part.is_empty() {
            continue;
        } else if part.starts_with("materialize") {
            mats.push(part.to_string());
        } else {
            sections.push(part.to_string());
        }
    }
    mats.sort();
    sections.extend(mats);
    (
        format!(
            "{}: total {:.9e} volcano {:.9e} benefit {:.9e} mats {} queries {}",
            r.strategy,
            r.total_cost,
            r.volcano_cost,
            r.benefit,
            r.materialized.len(),
            r.plan.query_plans.len(),
        ),
        sections,
    )
}

/// Every observable of the evolved batch matches the fresh build.
fn assert_equivalent(evolved: &OptimizedBatch, fresh: &OptimizedBatch, label: &str) {
    evolved.batch().memo().check_consistency();
    assert_eq!(
        evolved.batch().memo().n_exprs(),
        fresh.batch().memo().n_exprs(),
        "{label}: live expression counts diverge"
    );
    assert_eq!(
        evolved.batch().memo().n_groups(),
        fresh.batch().memo().n_groups(),
        "{label}: live group counts diverge"
    );
    assert_eq!(
        evolved.batch().universe_fingerprints(),
        fresh.batch().universe_fingerprints(),
        "{label}: universe fingerprint sets diverge"
    );
    for strategy in [
        Strategy::Volcano,
        Strategy::Greedy,
        Strategy::MarginalGreedy,
    ] {
        let (e_costs, e_plans) = run_signature(evolved, strategy);
        let (f_costs, f_plans) = run_signature(fresh, strategy);
        assert_eq!(e_costs, f_costs, "{label}: cost values diverge");
        assert_eq!(e_plans, f_plans, "{label}: extracted plans diverge");
    }
}

/// Drives `steps` random evolution operations (add / retire /
/// savepoint+rollback) against `batch`, mirroring the survivor list in
/// `live`, then checks equivalence against a fresh build of the survivors.
fn sweep_sequence(
    make: impl Fn() -> (DagContext, Vec<PlanNode>),
    rng: &mut Prng,
    steps: usize,
    threads: usize,
    label: &str,
) {
    let (ctx, pool) = make();
    assert!(pool.len() >= 2, "{label}: need a query pool");
    // Start with the first two queries; the rest form the add pool (a
    // retired query returns to it, so a query is never live twice).
    let (ctx2, _) = make();
    let mut batch = build(ctx2, &pool[..2], threads);
    let mut live: Vec<(QueryTicket, PlanNode)> = batch
        .tickets()
        .into_iter()
        .zip(pool[..2].iter().cloned())
        .collect();
    let mut available: Vec<PlanNode> = pool[2..].to_vec();
    for _step in 0..steps {
        match rng.gen_range(0u32..4) {
            // Admit a random pooled query.
            0 | 1 if !available.is_empty() => {
                let q = available.swap_remove(rng.gen_range(0..available.len()));
                let t = batch.add_query(q.clone());
                live.push((t, q));
            }
            // Retire a random live query (keep at least one).
            2 if live.len() > 1 => {
                let idx = rng.gen_range(0..live.len());
                let (t, q) = live.remove(idx);
                batch.retire_query(t);
                available.push(q);
            }
            // Savepoint, speculatively add, roll back: net no-op.
            _ if !available.is_empty() => {
                let sp = batch.savepoint();
                let q = available[rng.gen_range(0..available.len())].clone();
                let _speculative = batch.add_query(q);
                batch.rollback(sp);
            }
            _ => {}
        }
    }
    let survivors: Vec<PlanNode> = live.iter().map(|(_, q)| q.clone()).collect();
    let fresh = build(ctx, &survivors, threads);
    assert_eq!(
        batch.tickets().len(),
        survivors.len(),
        "{label}: ticket count"
    );
    assert_equivalent(&batch, &fresh, label);
}

#[test]
fn evolved_tpcd_batches_match_fresh_builds() {
    for i in [3usize, 4] {
        for threads in THREADS {
            let make = || {
                let w = mqo_tpcd::batched(i, 1.0);
                (w.ctx, w.queries)
            };
            let mut rng = Prng::seed_from_u64(Prng::derive_seed(0x45564F4C, i as u64));
            sweep_sequence(
                make,
                &mut rng,
                6,
                threads,
                &format!("BQ{i} threads={threads}"),
            );
        }
    }
}

#[test]
fn evolved_random_workloads_match_fresh_builds() {
    for case in 0..6u64 {
        let seed = Prng::derive_seed(0x45564F4C, 100 + case);
        for threads in THREADS {
            let make = || mqo_tpcd::random::random_workload(seed, 5);
            let mut rng = Prng::seed_from_u64(seed ^ 0xA5A5);
            sweep_sequence(
                make,
                &mut rng,
                8,
                threads,
                &format!("random case {case} threads={threads}"),
            );
        }
    }
}

/// Retiring a *fully shared* query — every expression it contributed is
/// also reachable from a surviving query — must keep the whole universe
/// alive (no slot tombstoned) and stay equivalent to the fresh build.
#[test]
fn retiring_a_fully_shared_query_keeps_the_universe() {
    let w = mqo_tpcd::batched(4, 1.0);
    let dup = w.queries[0].clone();
    let mut batch = build(w.ctx, &w.queries, 1);
    let slots_before = batch.batch().universe_fingerprints();
    // Admit an exact duplicate of query 0, then retire it: the duplicate
    // shares every group with the original.
    let t = batch.add_query(dup);
    batch.retire_query(t);
    assert_eq!(
        batch.batch().universe_fingerprints(),
        slots_before,
        "retiring a duplicate must not change the live universe"
    );
    let w2 = mqo_tpcd::batched(4, 1.0);
    let fresh = build(w2.ctx, &w2.queries, 1);
    assert_equivalent(&batch, &fresh, "retire duplicate of q0");
}

/// Rollback then re-add: the savepoint rewind must leave the memo in a
/// state where the *same* query can be admitted again and land on the
/// same equivalence classes (fingerprint-stable slots are revived, not
/// duplicated).
#[test]
fn add_after_rollback_replays_cleanly() {
    let w = mqo_tpcd::batched(3, 1.0);
    let extra = w.queries[2].clone();
    let base: Vec<PlanNode> = w.queries[..2].to_vec();
    let mut batch = build(w.ctx, &base, 1);

    let sp = batch.savepoint();
    let t1 = batch.add_query(extra.clone());
    let after_first = batch.batch().universe_fingerprints();
    batch.rollback(sp);
    assert!(
        !batch.batch().is_live(t1),
        "rolled-back ticket must be dead"
    );
    let t2 = batch.add_query(extra);
    assert!(batch.batch().is_live(t2));
    assert_eq!(
        batch.batch().universe_fingerprints(),
        after_first,
        "re-adding after rollback must land on the same universe"
    );

    let w2 = mqo_tpcd::batched(3, 1.0);
    let fresh = build(w2.ctx, &w2.queries[..3], 1);
    assert_equivalent(&batch, &fresh, "add, rollback, re-add");
}

/// A long alternating add/retire sequence: exercises savepoint-stack
/// reuse, tombstone revival, and epoch growth far past any small counter
/// width, ending equivalent to a fresh build.
#[test]
fn long_evolution_sequence_stays_equivalent() {
    let w = mqo_tpcd::batched(4, 1.0);
    let pool = w.queries.clone();
    let mut batch = build(w.ctx, &pool[..2], 1);
    let mut last = batch.tickets();
    for round in 0..40 {
        let q = pool[2 + (round % (pool.len() - 2))].clone();
        let t = batch.add_query(q);
        // Retire the older of the two rotating extras once it exists.
        if last.len() > 2 {
            let victim = last[2];
            batch.retire_query(victim);
        }
        last = batch.tickets();
        assert!(last.contains(&t));
    }
    // Survivors: the two base queries plus the last extra added.
    let survivors: Vec<PlanNode> = {
        let mut v = pool[..2].to_vec();
        let last_extra = 2 + ((40 - 1) % (pool.len() - 2));
        v.push(pool[last_extra].clone());
        v
    };
    let w2 = mqo_tpcd::batched(4, 1.0);
    assert_eq!(w2.queries.len(), pool.len());
    let fresh = build(w2.ctx, &survivors, 1);
    assert_equivalent(&batch, &fresh, "40-round add/retire rotation");
}
