//! Seeded fault-injection suite for the fault-tolerance layer.
//!
//! Uses the in-tree deterministic failpoints (`mqo_core::fault`) to blow
//! up the pipeline at its three chaos sites — oracle entry, the
//! admission window between savepoint and commit, and the serving drain
//! under the writer lock — and pins the containment contract:
//!
//! - a failed admission round is rolled back to its entry savepoint
//!   (`Memo::check_consistency` green, `universe_epoch` unbumped, prior
//!   tickets and the published snapshot intact) and fails only its own
//!   submitters, each with the typed [`MqoError::RoundFailed`];
//! - a panic that poisons the writer lock itself does not wedge the
//!   service (every lock site recovers from poison);
//! - pre-admission validation rejects malformed plans at the door,
//!   before they can enter a round shared with healthy submitters;
//! - deadline budgets degrade to certified partial optimizations instead
//!   of failing.
//!
//! Failpoints are thread-local: each test arms on its own thread, so the
//! suite is safe under the default parallel test runner, and
//! `scripts/verify.sh` runs it under both `MQO_THREADS=1` and `=4`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use mqo_core::fault::{self, FaultSite};
use mqo_core::session::{OptimizedBatch, Session};
use mqo_core::strategies::Strategy;
use mqo_core::{MqoError, PlanFault, PriorityClass, ServeConfig};
use mqo_volcano::cost::DiskCostModel;
use mqo_volcano::{DagContext, InstanceId, PlanNode};

fn build(ctx: DagContext, queries: &[PlanNode]) -> OptimizedBatch {
    Session::builder()
        .context(ctx)
        .queries(queries.iter().cloned())
        .cost_model(DiskCostModel::paper())
        .threads(1)
        .build()
}

/// Pre-admission validation (S2): a malformed plan is rejected before it
/// is queued — no round runs, nothing is admitted, and the typed error
/// names the fault.
#[test]
fn invalid_plans_are_rejected_at_the_door() {
    let w = mqo_tpcd::batched(3, 1.0);
    let n_instances = w.ctx.n_instances();
    let service = build(w.ctx, &w.queries[..2]).serve();
    let rounds_before = service.stats().rounds;
    let tickets_before = service.tickets();

    let bogus = PlanNode::scan(InstanceId(n_instances as u32 + 7));
    match service.try_submit_query(bogus) {
        Err(MqoError::InvalidPlan {
            fault: PlanFault::UnknownInstance { inst, .. },
            ..
        }) => assert_eq!(inst, InstanceId(n_instances as u32 + 7)),
        other => panic!("expected InvalidPlan(UnknownInstance), got {other:?}"),
    }

    let stats = service.stats();
    assert_eq!(stats.rejected, 1, "rejection must be counted");
    assert_eq!(
        stats.rounds, rounds_before,
        "a rejected plan must never start an admission round"
    );
    assert_eq!(service.tickets(), tickets_before);
    // The same check guards `Session::builder()` itself.
    let w2 = mqo_tpcd::batched(3, 1.0);
    let bad = PlanNode::scan(InstanceId(w2.ctx.n_instances() as u32));
    match Session::builder().context(w2.ctx).query(bad).try_build() {
        Err(err) => assert!(matches!(err, MqoError::InvalidPlan { query: 0, .. })),
        Ok(_) => panic!("builder accepted a plan over an unknown instance"),
    }
    drop(service.finish());
}

/// S3 at the batch layer: an injected panic in the admission window
/// (after the memo savepoint, before `commit_evolution`) is recoverable —
/// rolling back to a pre-admission savepoint leaves the memo consistent,
/// the universe epoch unbumped, and the batch fully usable.
#[test]
fn admission_panic_between_savepoint_and_commit_is_recoverable() {
    let w = mqo_tpcd::batched(3, 1.0);
    let pool = w.queries.clone();
    let mut batch = build(w.ctx, &pool[..2]);

    let sp = batch.savepoint();
    let epoch = batch.batch().universe_epoch();
    let fingerprints = batch.batch().universe_fingerprints();
    let tickets = batch.tickets();
    let reference = batch.run(Strategy::MarginalGreedy);

    fault::arm(FaultSite::AdmissionPrecommit, 1);
    let result = catch_unwind(AssertUnwindSafe(|| batch.add_query(pool[2].clone())));
    fault::disarm_all();
    assert!(result.is_err(), "armed failpoint must fire");

    batch
        .try_rollback(sp)
        .expect("entry savepoint must be live");
    batch.batch().memo().check_consistency();
    assert_eq!(
        batch.batch().universe_epoch(),
        epoch,
        "rolling back an uncommitted admission must not bump the epoch"
    );
    assert_eq!(batch.batch().universe_fingerprints(), fingerprints);
    assert_eq!(batch.tickets(), tickets);
    let after = batch.run(Strategy::MarginalGreedy);
    assert_eq!(after.total_cost.to_bits(), reference.total_cost.to_bits());

    // The batch is not a zombie: the same admission succeeds un-faulted.
    let t = batch.add_query(pool[2].clone());
    assert!(batch.batch().is_live(t));
}

/// S3 at the service layer: the draining writer contains an injected
/// admission panic, fails exactly that round's submitters with
/// [`MqoError::RoundFailed`], and keeps serving — prior tickets, the
/// published snapshot, and later admissions are untouched.
#[test]
fn service_contains_admission_panics_and_keeps_serving() {
    let w = mqo_tpcd::batched(3, 1.0);
    let pool = w.queries.clone();
    let service = build(w.ctx, &pool[..2]).serve();

    let tickets_before = service.tickets();
    let epoch_before = {
        // Observe through a snapshot-independent probe: failed rounds
        // must republish content-identical state.
        service.snapshot().n_queries()
    };
    let reference = service.run();

    fault::arm(FaultSite::AdmissionPrecommit, 1);
    let err = service.try_submit_query(pool[2].clone());
    fault::disarm_all();
    assert_eq!(err, Err(MqoError::RoundFailed));

    assert_eq!(service.tickets(), tickets_before);
    assert_eq!(service.snapshot().n_queries(), epoch_before);
    assert_eq!(service.stats().failed_rounds, 1);
    let replay = service.run();
    assert_eq!(replay.total_cost.to_bits(), reference.total_cost.to_bits());

    // Resubmitting after the failure is safe and succeeds.
    let t = service
        .try_submit_query(pool[2].clone())
        .expect("un-faulted resubmission must be admitted");
    assert!(service.tickets().contains(&t));

    let served = service.finish();
    served.batch().memo().check_consistency();
    let w2 = mqo_tpcd::batched(3, 1.0);
    let fresh = build(w2.ctx, &pool[..3]);
    assert_eq!(
        served.batch().universe_fingerprints(),
        fresh.batch().universe_fingerprints(),
        "post-chaos universe must match a fresh build of the survivors"
    );
    assert_eq!(
        served.run(Strategy::MarginalGreedy).total_cost.to_bits(),
        fresh.run(Strategy::MarginalGreedy).total_cost.to_bits()
    );
}

/// An oracle panic during the publish phase (scoring the materialization
/// cache) fails the whole drain's admissions, keeps the previous snapshot
/// live, drops the possibly-torn cache, and leaves the service healthy.
#[test]
fn oracle_panic_in_cache_refresh_fails_the_round_not_the_service() {
    let w = mqo_tpcd::batched(4, 1.0);
    let pool = w.queries.clone();
    let service = build(w.ctx, &pool[..2]).serve_with(ServeConfig {
        cache_capacity: 8,
        ..ServeConfig::default()
    });

    // Warm one successful admission so the cache has content to lose.
    service
        .try_submit_query(pool[2].clone())
        .expect("un-faulted admission");
    let n_before = service.snapshot().n_queries();
    let tickets_before = service.tickets();

    fault::arm(FaultSite::OracleEval, 1);
    let err = service.try_submit_query(pool[3].clone());
    fault::disarm_all();
    assert_eq!(err, Err(MqoError::RoundFailed));

    assert_eq!(service.tickets(), tickets_before);
    assert_eq!(
        service.snapshot().n_queries(),
        n_before,
        "failed publish must leave the previous snapshot live"
    );
    assert!(
        service.cached_materializations().is_empty(),
        "a cache that may have been mid-update must be dropped"
    );
    assert_eq!(service.stats().failed_rounds, 1);

    // The service recovers fully: the same plan admits, the cache
    // repopulates on the successful publish.
    service
        .try_submit_query(pool[3].clone())
        .expect("resubmission after contained oracle panic");
    assert_eq!(service.snapshot().n_queries(), n_before + 1);
    let served = service.finish();
    served.batch().memo().check_consistency();
}

/// A panic escaping a submitter (drain-entry failpoint) poisons the
/// writer lock itself; every later caller must recover the lock and the
/// orphaned submission is admitted by the next drain (at-least-once for
/// a client that died mid-call).
#[test]
fn poisoned_writer_lock_recovers() {
    let w = mqo_tpcd::batched(3, 1.0);
    let pool = w.queries.clone();
    let service = build(w.ctx, &pool[..2]).serve();
    let tickets_before = service.tickets().len();

    std::thread::scope(|s| {
        let service = &service;
        let plan = pool[2].clone();
        let victim = s.spawn(move || {
            fault::arm(FaultSite::ServeRound, 1);
            // Panics inside the drain while holding the writer lock.
            let _ = service.try_submit_query(plan);
        });
        assert!(
            victim.join().is_err(),
            "drain-entry failpoint must escape the submitter"
        );
    });

    // Readers and writers keep working through the poisoned locks.
    assert_eq!(service.tickets().len(), tickets_before);
    let t = service
        .try_submit_query(pool[2].clone())
        .expect("submission after writer-lock poison");
    assert!(service.tickets().contains(&t));
    // The drain also admitted the victim's orphaned queue entry.
    assert_eq!(service.tickets().len(), tickets_before + 2);
    assert!(service.run().total_cost.is_finite());
    let served = service.finish();
    served.batch().memo().check_consistency();
}

/// Per-priority-class deadline budgets: an exhausted budget degrades to a
/// certified partial optimization (truncated certificate), an unbudgeted
/// class is bit-identical to the plain run, and both carry a certificate.
#[test]
fn class_budgets_degrade_to_certified_partial_runs() {
    let w = mqo_tpcd::batched(4, 1.0);
    let service = build(w.ctx, &w.queries).serve_with(ServeConfig {
        class_budgets: [Some(Duration::ZERO), None, None],
        ..ServeConfig::default()
    });

    let degraded = service.run_class(PriorityClass::Interactive);
    let cert = degraded
        .gap_certificate
        .expect("greedy strategies always certify");
    assert!(cert.truncated, "zero budget must truncate immediately");
    assert!(cert.ratio >= 1.0, "certified ratio below 1: {}", cert.ratio);
    // Nothing picked: the degraded plan is the no-sharing baseline, still
    // a complete, executable answer.
    assert!(degraded.materialized.is_empty());
    assert_eq!(
        degraded.total_cost.to_bits(),
        degraded.volcano_cost.to_bits()
    );

    let full = service.run_class(PriorityClass::Batch);
    let reference = service.run();
    assert_eq!(full.total_cost.to_bits(), reference.total_cost.to_bits());
    let full_cert = full.gap_certificate.expect("converged runs certify too");
    assert!(!full_cert.truncated);
    assert!(full.total_cost <= degraded.total_cost + 1e-9);
    drop(service.finish());
}
