//! Differential sweeps for the sharded `bestCost` oracle on TPCD BQ4:
//! sharded `bc_many` must be **bit-identical** to the serial path at every
//! thread count and rebase threshold, and both must agree with the
//! full-recomputation ablation to `1e-9` relative. (The root-level
//! `tests/engine_differential.rs` covers the serial incremental/batched
//! paths; this sweep pins the parallel fan-out.)

use std::cell::RefCell;

use mqo_core::batch::BatchDag;
use mqo_core::engine::{BestCostEngine, MqoConfig};
use mqo_submod::bitset::BitSet;
use mqo_submod::prng::{seeded_sweep, Prng};
use mqo_volcano::cost::DiskCostModel;
use mqo_volcano::rules::RuleSet;

const SWEEP_SEED: u64 = 0x5EED_0030;

fn bq4() -> BatchDag {
    let w = mqo_tpcd::batched(4, 1.0);
    BatchDag::build(w.ctx, &w.queries, &RuleSet::default())
}

fn engine(batch: &BatchDag, config: MqoConfig) -> BestCostEngine {
    let cm = DiskCostModel::paper();
    BestCostEngine::with_config(batch.memo(), &cm, batch.root(), batch.shareable(), config)
}

fn random_subset(rng: &mut Prng, n: usize) -> BitSet {
    let density = rng.gen_range(0.05..0.5);
    BitSet::from_iter(n, (0..n).filter(|_| rng.gen_bool(density)))
}

/// A greedy-round-shaped batch (shared base, one extra element per
/// candidate) plus a few arbitrary sets to exercise the far-candidate
/// (uncommitted full solve) path.
fn round_batch(rng: &mut Prng, n: usize) -> Vec<BitSet> {
    let base = random_subset(rng, n);
    let mut sets: Vec<BitSet> = (0..n)
        .filter(|&e| !base.contains(e) && e % 3 == 0)
        .map(|e| base.with(e))
        .collect();
    sets.push(random_subset(rng, n));
    sets.push(random_subset(rng, n));
    sets.push(base);
    sets
}

/// Sharded `bc_many` ≡ serial `bc_many`, exactly (`==` on every value),
/// for threads ∈ {2, 3, 8} across rebase thresholds.
#[test]
fn sharded_bc_many_is_bit_identical_to_serial_on_bq4() {
    let batch = bq4();
    let n = batch.universe_size();
    assert!(n > 0);
    for threshold in [0usize, 4, usize::MAX] {
        let serial = RefCell::new(engine(
            &batch,
            MqoConfig {
                rebase_threshold: threshold,
                threads: 1,
                ..Default::default()
            },
        ));
        for threads in [2usize, 3, 8] {
            let sharded = RefCell::new(engine(
                &batch,
                MqoConfig {
                    rebase_threshold: threshold,
                    threads,
                    ..Default::default()
                },
            ));
            seeded_sweep(
                "sharded_vs_serial",
                SWEEP_SEED + threads as u64 + (threshold as u64 % 101) * 8,
                8,
                |rng| {
                    let sets = round_batch(rng, n);
                    let a = serial.borrow_mut().bc_many(&sets);
                    let b = sharded.borrow_mut().bc_many(&sets);
                    assert_eq!(
                        a, b,
                        "threads {threads}, threshold {threshold}: sharded values \
                         must be bit-identical to serial"
                    );
                },
            );
            // (Incremental-path coverage is asserted by the greedy replay
            // below, whose candidates are exactly one element off base;
            // these batches include arbitrary far sets, so at tight
            // thresholds every candidate may legitimately go full.)
        }
    }
}

/// Sharded `bc_many` ≡ `force_full` to 1e-9 relative on the same batches.
#[test]
fn sharded_bc_many_matches_force_full_on_bq4() {
    let batch = bq4();
    let n = batch.universe_size();
    let full = RefCell::new(engine(
        &batch,
        MqoConfig {
            force_full: true,
            ..Default::default()
        },
    ));
    for threads in [2usize, 8] {
        let sharded = RefCell::new(engine(
            &batch,
            MqoConfig {
                threads,
                ..Default::default()
            },
        ));
        seeded_sweep(
            "sharded_vs_force_full",
            SWEEP_SEED + 40 + threads as u64,
            6,
            |rng| {
                let sets = round_batch(rng, n);
                let many = sharded.borrow_mut().bc_many(&sets);
                for (s, &v) in sets.iter().zip(&many) {
                    let expect = full.borrow_mut().bc(s);
                    assert!(
                        (v - expect).abs() < 1e-9 * (1.0 + expect.abs()),
                        "threads {threads}: sharded {v} vs full {expect}"
                    );
                }
            },
        );
    }
}

/// A full greedy-run replay (growing base, every remaining element probed
/// per round) is bit-identical between serial and sharded engines — the
/// exact schedule the strategies execute.
#[test]
fn greedy_replay_is_bit_identical_across_thread_counts() {
    let batch = bq4();
    let n = batch.universe_size();
    let mut serial = engine(
        &batch,
        MqoConfig {
            threads: 1,
            ..Default::default()
        },
    );
    let mut sharded = engine(
        &batch,
        MqoConfig {
            threads: 8,
            ..Default::default()
        },
    );
    let mut base = BitSet::empty(n);
    for round in 0..12.min(n) {
        let candidates: Vec<BitSet> = (0..n)
            .filter(|&e| !base.contains(e))
            .map(|e| base.with(e))
            .collect();
        let a = serial.bc_many(&candidates);
        let b = sharded.bc_many(&candidates);
        assert_eq!(a, b, "round {round}");
        // Commit the argmin (the greedy pick) and continue.
        let pick = a
            .iter()
            .enumerate()
            .min_by(|(_, x), (_, y)| x.total_cmp(y))
            .map(|(i, _)| i)
            .unwrap();
        let elem = candidates[pick]
            .symmetric_difference_iter(&base)
            .next()
            .unwrap();
        base.insert(elem);
    }
    let (_, inc) = sharded.eval_counts();
    assert!(
        inc > 0,
        "round-shaped candidates must take the sharded incremental path"
    );
}
