//! Differential suite for the Theorem 4 universe-reduction pre-pass:
//! under a **fixed** decomposition and cardinality cap, reduction-on must
//! return exactly the same answer as reduction-off — same materialized
//! set, bit-identical total cost, identical consolidated plan — at every
//! thread count. The generated workloads sweep all four generator shapes
//! plus a mid-size chain where the pre-pass actually prunes (under the
//! materialization-cost decomposition; the canonical decomposition is
//! provably vacuous and must never prune).

use mqo_core::config::{DecompositionKind, MqoConfig};
use mqo_core::session::{OptimizedBatch, Session};
use mqo_core::strategies::Strategy;
use mqo_tpcd::workloads::{generate, Shape, WorkloadSpec};
use mqo_volcano::cost::DiskCostModel;

fn build(spec: &WorkloadSpec) -> OptimizedBatch {
    let w = generate(spec);
    Session::builder()
        .context(w.ctx)
        .queries(w.queries)
        .cost_model(DiskCostModel::paper())
        .build()
}

fn mid_chain(seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        shape: Shape::Chain,
        tables: 32,
        queries: 24,
        span: (4, 6),
        overlap: 0.3,
        select_prob: 0.4,
        base_rows: 500.0,
        seed,
    }
}

/// Runs the on/off pair for one (decomposition, k, threads) cell and
/// asserts output identity. Returns whether the pre-pass pruned anything.
fn assert_reduction_identity(
    session: &OptimizedBatch,
    decomposition: DecompositionKind,
    k: usize,
    threads: usize,
    ctx: &str,
) -> bool {
    let base = MqoConfig {
        decomposition,
        max_materializations: Some(k),
        threads,
        ..MqoConfig::default()
    };
    let off = session.run_with(
        Strategy::MarginalGreedy,
        MqoConfig {
            universe_reduction: false,
            ..base
        },
    );
    let on = session.run_with(
        Strategy::MarginalGreedy,
        MqoConfig {
            universe_reduction: true,
            ..base
        },
    );
    assert_eq!(off.materialized, on.materialized, "{ctx}: materialized set");
    assert_eq!(
        off.total_cost.to_bits(),
        on.total_cost.to_bits(),
        "{ctx}: total cost must be bit-identical"
    );
    assert_eq!(
        format!("{:?}", off.plan),
        format!("{:?}", on.plan),
        "{ctx}: consolidated plan"
    );
    assert_eq!(off.candidates, off.universe, "{ctx}: off ranks everything");
    assert!(
        on.candidates <= off.candidates,
        "{ctx}: reduction can only shrink the ranked universe"
    );
    // Note: no vacuity assertion for the canonical decomposition here. On
    // *exactly* submodular functions it provably never prunes (pinned by
    // the submod crate's unit suite); the engine's `mb`, however, carries
    // the sort-order coupling's small submodularity deviations, so a
    // singleton marginal can genuinely dip below its top-of-lattice
    // marginal and prune — which Theorem 4 still keeps answer-preserving,
    // exactly what the assertions above pin.
    on.candidates < on.universe
}

#[test]
fn reduction_is_identity_across_shapes_ks_decompositions_and_threads() {
    for shape in Shape::ALL {
        let spec = WorkloadSpec::smoke(shape, 0xA4B1);
        let session = build(&spec);
        for decomposition in [
            DecompositionKind::Canonical,
            DecompositionKind::MaterializationCost,
        ] {
            for k in [1usize, 3, 8] {
                for threads in [1usize, 4] {
                    let ctx = format!(
                        "{}, {:?}, k {k}, threads {threads}",
                        shape.name(),
                        decomposition
                    );
                    assert_reduction_identity(&session, decomposition, k, threads, &ctx);
                }
            }
        }
    }
}

#[test]
fn reduction_prunes_and_stays_identical_on_mid_chain() {
    let session = build(&mid_chain(0x0C8A_117E));
    let mut pruned_somewhere = false;
    for k in [1usize, 4, 12] {
        for threads in [1usize, 4] {
            let ctx = format!("mid-chain, MaterializationCost, k {k}, threads {threads}");
            pruned_somewhere |= assert_reduction_identity(
                &session,
                DecompositionKind::MaterializationCost,
                k,
                threads,
                &ctx,
            );
        }
    }
    assert!(
        pruned_somewhere,
        "the materialization-cost decomposition must actually prune on the \
         mid-size chain — a vacuous sweep would pin nothing"
    );
}

#[test]
fn uncapped_reduction_is_a_no_op_with_no_oracle_cost() {
    // `max_materializations: None` resolves k to the universe size, where
    // Theorem 4's Case 1 keeps every element — the pre-pass must
    // short-circuit (same report, same ranked universe).
    let session = build(&WorkloadSpec::smoke(Shape::Chain, 77));
    let base = MqoConfig {
        decomposition: DecompositionKind::MaterializationCost,
        max_materializations: None,
        ..MqoConfig::default()
    };
    let off = session.run_with(
        Strategy::MarginalGreedy,
        MqoConfig {
            universe_reduction: false,
            ..base
        },
    );
    let on = session.run_with(
        Strategy::MarginalGreedy,
        MqoConfig {
            universe_reduction: true,
            ..base
        },
    );
    assert_eq!(off.materialized, on.materialized);
    assert_eq!(on.candidates, on.universe);
    assert_eq!(off.bc_calls, on.bc_calls, "the short-circuit must be free");
}
