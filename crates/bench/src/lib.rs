//! Benchmark harness: runs the paper's experiments and prints the tables
//! behind every figure.
//!
//! * Experiment 1 (Figure 4a/4b/4c): batched TPCD queries BQ1..BQ6 at SF 1
//!   and SF 100 — plan costs, number of materialized nodes, optimization
//!   times.
//! * Experiment 2 (Figure 5a/5b/5c): stand-alone Q2, Q2-D, Q11, Q15.
//! * Ablations: lazy vs eager, incremental vs full `bestCost`, §5.1
//!   pruning, Theorem 4 universe reduction, decomposition choice, cleanup.

#![forbid(unsafe_code)]

pub mod timing;

use std::time::Duration;

use mqo_core::session::Session;
use mqo_core::strategies::{RunReport, Strategy};
use mqo_tpcd::Workload;
use mqo_volcano::cost::{CostModel, DiskCostModel};
use mqo_volcano::rules::RuleSet;

/// The three contenders of the paper's figures.
pub const PAPER_STRATEGIES: [Strategy; 3] = [
    Strategy::Volcano,
    Strategy::Greedy,
    Strategy::MarginalGreedy,
];

/// One row of an experiment table: a workload optimized by every strategy.
pub struct ExperimentRow {
    /// Workload name (`BQ3`, `Q11`, ...).
    pub workload: String,
    /// Shareable-universe size.
    pub universe: usize,
    /// Memo size after expansion (groups, exprs).
    pub dag_size: (usize, usize),
    /// One report per strategy, in the caller-provided strategy order.
    pub reports: Vec<RunReport>,
}

/// Builds a `Session` for a workload and optimizes it with each strategy.
pub fn run_workload(
    w: Workload,
    cm: impl CostModel + 'static,
    strategies: &[Strategy],
) -> ExperimentRow {
    let session = Session::builder()
        .context(w.ctx)
        .queries(w.queries)
        .rules(RuleSet::default())
        .cost_model(cm)
        .build();
    let reports = session.run_all(strategies);
    ExperimentRow {
        workload: w.name,
        universe: session.universe_size(),
        dag_size: (
            session.batch().expansion().groups,
            session.batch().expansion().exprs,
        ),
        reports,
    }
}

/// Runs Experiment 1 (Figure 4) at the given scale factor.
pub fn experiment1(sf: f64, strategies: &[Strategy]) -> Vec<ExperimentRow> {
    (1..=6)
        .map(|i| run_workload(mqo_tpcd::batched(i, sf), DiskCostModel::paper(), strategies))
        .collect()
}

/// Runs Experiment 2 (Figure 5) at the given scale factor.
pub fn experiment2(sf: f64, strategies: &[Strategy]) -> Vec<ExperimentRow> {
    mqo_tpcd::STANDALONE_NAMES
        .iter()
        .map(|name| {
            run_workload(
                mqo_tpcd::standalone(name, sf),
                DiskCostModel::paper(),
                strategies,
            )
        })
        .collect()
}

/// Formats a duration as milliseconds with three decimals.
pub fn fmt_ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// Prints the cost table of an experiment (the bar heights of Figures 4a/4b
/// and 5a/5b: estimated plan cost per strategy, with the number of
/// materialized nodes annotated as in the paper).
pub fn print_cost_table(title: &str, rows: &[ExperimentRow]) {
    println!("\n{title}");
    print!("{:<10} {:>9}", "workload", "universe");
    for r in &rows[0].reports {
        print!(" {:>26}", r.strategy);
    }
    println!();
    for row in rows {
        print!("{:<10} {:>9}", row.workload, row.universe);
        for r in &row.reports {
            print!(" {:>17.0} ({:>3} mat)", r.total_cost, r.materialized.len());
        }
        println!();
    }
    println!("improvement over stand-alone Volcano:");
    for row in rows {
        print!("{:<10} {:>9}", row.workload, "");
        for r in &row.reports {
            print!(" {:>25.1}%", r.improvement_pct());
        }
        println!();
    }
}

/// Prints the optimization-time table (Figures 4c and 5c; the paper plots
/// these in log scale because Greedy and MarginalGreedy nearly coincide).
pub fn print_time_table(title: &str, rows: &[ExperimentRow]) {
    println!("\n{title} (optimization time, ms)");
    print!("{:<10} {:>9}", "workload", "universe");
    for r in &rows[0].reports {
        print!(" {:>20}", r.strategy);
    }
    println!();
    for row in rows {
        print!("{:<10} {:>9}", row.workload, row.universe);
        for r in &row.reports {
            print!(" {:>20}", fmt_ms(r.opt_time));
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment1_bq1_runs() {
        let row = run_workload(
            mqo_tpcd::batched(1, 1.0),
            DiskCostModel::paper(),
            &PAPER_STRATEGIES,
        );
        assert_eq!(row.workload, "BQ1");
        assert_eq!(row.reports.len(), 3);
        // MQO strategies never exceed Volcano.
        let volcano = row.reports[0].total_cost;
        for r in &row.reports[1..] {
            assert!(r.total_cost <= volcano + 1e-6);
        }
    }

    #[test]
    fn experiment2_q15_halves_cost() {
        let row = run_workload(
            mqo_tpcd::standalone("Q15", 1.0),
            DiskCostModel::paper(),
            &PAPER_STRATEGIES,
        );
        let volcano = row.reports[0].total_cost;
        let greedy = row.reports[1].total_cost;
        assert!(
            greedy < 0.6 * volcano,
            "Q15's shared revenue view must roughly halve the cost"
        );
    }
}
