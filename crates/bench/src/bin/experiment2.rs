//! Experiment 2 (Section 6.2, Figure 5): stand-alone TPCD queries.
//!
//! Regenerates the data behind Figure 5a (plan costs at 1 GB), Figure 5b
//! (plan costs at 100 GB), and Figure 5c (optimization times). The
//! workloads are single queries with common subexpressions *within*
//! themselves: Q2 (correlated nested subquery), Q2-D (its decorrelated
//! batch), Q11 and Q15 (views referenced twice).
//!
//! Usage: `experiment2 [--sf <scale factor>]` (default: both 1 and 100).

use mqo_bench::{experiment2, print_cost_table, print_time_table, PAPER_STRATEGIES};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sf_arg = args
        .iter()
        .position(|a| a == "--sf")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse::<f64>().expect("--sf takes a number"));

    let sfs: Vec<f64> = match sf_arg {
        Some(sf) => vec![sf],
        None => vec![1.0, 100.0],
    };

    for sf in sfs {
        let label = if sf == 1.0 {
            "1GB Total Size (Figure 5a)".to_string()
        } else if sf == 100.0 {
            "100GB Total Size (Figure 5b)".to_string()
        } else {
            format!("SF {sf}")
        };
        let rows = experiment2(sf, &PAPER_STRATEGIES);
        print_cost_table(&format!("Experiment 2 — {label}"), &rows);
        print_time_table("Experiment 2 — Figure 5c", &rows);
    }
}
