// mqo-lint: allow-file(wall-clock) -- measurement code: raw Instant reads are this file's
// entire purpose; optimization decisions never depend on them.
//! Ablations of the design choices called out in DESIGN.md.
//!
//! 1. **Lazy vs eager** (Section 5.2): identical answers, fewer candidate
//!    evaluations for the lazy variants.
//! 2. **Incremental vs full `bestCost`** (Section 5.1 / Pyro's third
//!    optimization): identical answers, large speed difference.
//! 3. **§5.1 ratio pruning**: identical answers, less work.
//! 4. **Theorem 4 universe reduction**: identical answers under a
//!    cardinality constraint.
//! 5. **Decomposition choice** (Proposition 2): the canonical decomposition
//!    vs an inflated one — achieved benefit comparison.
//! 6. **Cleanup extension**: how far the workload's `mb` deviates from the
//!    submodularity assumption.
//! 7. **Rebase threshold** (`MqoConfig`): identical answers across
//!    thresholds; the default of 4 balances overlay size against full
//!    recomputations.

use std::time::Instant;

use mqo_core::batch::BatchDag;
use mqo_core::benefit::MbFunction;
use mqo_core::engine::{BestCostEngine, MqoConfig};
use mqo_core::session::Session;
use mqo_core::strategies::Strategy;
use mqo_submod::algorithms::lazy::lazy_marginal_greedy;
use mqo_submod::algorithms::marginal_greedy::{marginal_greedy, Config};
use mqo_submod::bitset::BitSet;
use mqo_submod::decompose::Decomposition;
use mqo_submod::function::SetFunction;
use mqo_volcano::cost::DiskCostModel;
use mqo_volcano::rules::RuleSet;

fn main() {
    let cm = DiskCostModel::paper();

    println!("== 1+3. Lazy vs eager MarginalGreedy, with/without §5.1 pruning ==");
    for i in [3usize, 5] {
        let w = mqo_tpcd::batched(i, 1.0);
        let batch = BatchDag::build(w.ctx, &w.queries, &RuleSet::default());
        let engine = BestCostEngine::new(batch.memo(), &cm, batch.root(), batch.shareable());
        let mb = MbFunction::new(engine);
        let n = mb.universe();
        let d = mb.canonical_decomposition();
        let full = BitSet::full(n);

        let eager = marginal_greedy(&mb, &d, &full, Config::default());
        let lazy = lazy_marginal_greedy(&mb, &d, &full, Config::default());
        let no_prune = marginal_greedy(
            &mb,
            &d,
            &full,
            Config {
                prune_ratio_below_one: false,
                ..Default::default()
            },
        );
        assert_eq!(eager.set, lazy.set);
        assert_eq!(eager.set, no_prune.set);
        println!(
            "BQ{i} (n={n}): eager {} evals | lazy {} evals | eager-no-pruning {} evals (same answer)",
            eager.evaluations, lazy.evaluations, no_prune.evaluations
        );
    }

    println!("\n== 2. Incremental vs full bestCost recomputation ==");
    for i in [3usize, 5] {
        let w = mqo_tpcd::batched(i, 1.0);
        let batch = BatchDag::build(w.ctx, &w.queries, &RuleSet::default());
        let mut times = Vec::new();
        let mut costs = Vec::new();
        for force_full in [false, true] {
            let config = MqoConfig {
                force_full,
                ..Default::default()
            };
            let engine = BestCostEngine::with_config(
                batch.memo(),
                &cm,
                batch.root(),
                batch.shareable(),
                config,
            );
            let mb = MbFunction::new(engine);
            let n = mb.universe();
            let d = mb.canonical_decomposition();
            let t0 = Instant::now();
            let out = marginal_greedy(&mb, &d, &BitSet::full(n), Config::default());
            times.push(t0.elapsed());
            costs.push(out.value);
        }
        assert!((costs[0] - costs[1]).abs() < 1e-6);
        println!(
            "BQ{i}: incremental {:?} vs full {:?} ({}x, same answer)",
            times[0],
            times[1],
            (times[1].as_secs_f64() / times[0].as_secs_f64()).round()
        );
    }

    println!("\n== 4. Theorem 4 universe reduction under cardinality constraints ==");
    for k in [2usize, 4] {
        let w = mqo_tpcd::batched(4, 1.0);
        let session = Session::builder()
            .context(w.ctx)
            .queries(w.queries)
            .cost_model(cm)
            .build();
        let with = session.run(Strategy::CardinalityMarginalGreedy {
            k,
            reduce_universe: true,
        });
        let without = session.run(Strategy::CardinalityMarginalGreedy {
            k,
            reduce_universe: false,
        });
        assert_eq!(with.materialized, without.materialized);
        println!(
            "BQ4, k={k}: cost {:.0} with reduction == {:.0} without (Theorem 4 verified)",
            with.total_cost, without.total_cost
        );
    }

    println!("\n== 5. Decomposition choice (Proposition 2) ==");
    {
        let w = mqo_tpcd::batched(4, 1.0);
        let batch = BatchDag::build(w.ctx, &w.queries, &RuleSet::default());
        let engine = BestCostEngine::new(batch.memo(), &cm, batch.root(), batch.shareable());
        let mb = MbFunction::new(engine);
        let n = mb.universe();
        let full = BitSet::full(n);
        let canonical = mb.canonical_decomposition();
        // An inflated decomposition: canonical costs plus a positive linear
        // term (the paper's example of a strictly worse choice).
        let inflated =
            Decomposition::from_costs((0..n).map(|e| canonical.cost(e).abs() + 1.0e5).collect());
        let canon_out = marginal_greedy(&mb, &canonical, &full, Config::default());
        let infl_out = marginal_greedy(&mb, &inflated, &full, Config::default());
        println!(
            "BQ4: canonical decomposition benefit {:.0} vs inflated {:.0}",
            canon_out.value, infl_out.value
        );
    }

    println!("\n== 6. Cleanup extension (submodularity-violation probe) ==");
    for name in ["Q11", "Q15"] {
        let w = mqo_tpcd::standalone(name, 1.0);
        let session = Session::builder()
            .context(w.ctx)
            .queries(w.queries)
            .cost_model(cm)
            .build();
        let plain = session.run(Strategy::MarginalGreedy);
        let cleaned = session.run(Strategy::MarginalGreedyCleanup);
        println!(
            "{name}: MarginalGreedy {:.0} → +cleanup {:.0} ({} → {} materialized)",
            plain.total_cost,
            cleaned.total_cost,
            plain.materialized.len(),
            cleaned.materialized.len()
        );
    }

    println!("\n== 7. Rebase threshold (MqoConfig) ==");
    {
        let w = mqo_tpcd::batched(4, 1.0);
        let session = Session::builder()
            .context(w.ctx)
            .queries(w.queries)
            .cost_model(cm)
            .build();
        let reference = session.run(Strategy::Greedy);
        for threshold in [0usize, 2, 8, usize::MAX] {
            // threads pinned to 1: this ablation isolates the rebase
            // threshold, so an exported MQO_THREADS must not confound the
            // timings with thread-spawn overhead.
            let config = MqoConfig {
                rebase_threshold: threshold,
                force_full: false,
                threads: 1,
                ..Default::default()
            };
            let t0 = Instant::now();
            let r = session.run_with(Strategy::Greedy, config);
            let dt = t0.elapsed();
            assert!((r.total_cost - reference.total_cost).abs() < 1e-6);
            assert_eq!(r.materialized, reference.materialized);
            let label = if threshold == usize::MAX {
                "∞ (never rebase)".to_string()
            } else {
                threshold.to_string()
            };
            println!(
                "BQ4, threshold {label}: cost {:.0} in {dt:?} (same answer as default)",
                r.total_cost
            );
        }
    }
}
