//! Example 1 / Figure 1 of the paper, reproduced exactly.
//!
//! Two queries — `A ⋈ B ⋈ C` and `B ⋈ C ⋈ D` — under the illustrative unit
//! cost model (10 per base-relation access, 100 per join, 10 per
//! materialization write and per re-read). The locally optimal plans cost
//! 460 in total; sharing `B ⋈ C` brings the consolidated cost to 370.

use mqo_catalog::{Catalog, TableBuilder};
use mqo_core::session::Session;
use mqo_core::strategies::Strategy;
use mqo_volcano::cost::UnitCostModel;
use mqo_volcano::rules::RuleSet;
use mqo_volcano::{DagContext, PlanNode, Predicate};

fn main() {
    let mut cat = Catalog::new();
    for (name, rows) in [("a", 1000.0), ("b", 1000.0), ("c", 1000.0), ("d", 1000.0)] {
        cat.add_table(
            TableBuilder::new(name, rows)
                .key_column(format!("{name}_key"), 8)
                .column(format!("{name}_fk"), rows, (0, rows as i64 - 1), 8)
                .primary_key(&[&format!("{name}_key")])
                .build(),
        );
    }
    let mut ctx = DagContext::new(cat);
    let a = ctx.instance_by_name("a", 0);
    let b = ctx.instance_by_name("b", 0);
    let c = ctx.instance_by_name("c", 0);
    let d = ctx.instance_by_name("d", 0);
    let p_ab = Predicate::join(ctx.col(a, "a_key"), ctx.col(b, "b_fk"));
    let p_bc = Predicate::join(ctx.col(b, "b_key"), ctx.col(c, "c_fk"));
    let p_bd = Predicate::join(ctx.col(b, "b_key"), ctx.col(d, "d_fk"));

    let q1 = PlanNode::scan(a)
        .join(PlanNode::scan(b), p_ab)
        .join(PlanNode::scan(c), p_bc.clone());
    let q2 = PlanNode::scan(b)
        .join(PlanNode::scan(c), p_bc)
        .join(PlanNode::scan(d), p_bd);

    let session = Session::builder()
        .context(ctx)
        .queries([q1, q2])
        .rules(RuleSet::joins_only())
        .cost_model(UnitCostModel)
        .build();

    let volcano = session.run(Strategy::Volcano);
    let marginal = session.run(Strategy::MarginalGreedy);

    println!("Example 1 (Figure 1):");
    println!(
        "  no sharing (locally optimal plans): {:>5.0}",
        volcano.total_cost
    );
    println!(
        "  sharing B ⋈ C (consolidated plan):  {:>5.0}",
        marginal.total_cost
    );
    assert_eq!(volcano.total_cost, 460.0);
    assert_eq!(marginal.total_cost, 370.0);
    assert_eq!(marginal.materialized.len(), 1);

    println!(
        "\nConsolidated plan:\n{}",
        marginal.plan.render(session.batch())
    );
}
