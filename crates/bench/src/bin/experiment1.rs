//! Experiment 1 (Section 6.1, Figure 4): batched TPCD queries.
//!
//! Regenerates the data behind Figure 4a (plan costs at 1 GB), Figure 4b
//! (plan costs at 100 GB), and Figure 4c (optimization times, which the
//! paper plots in log scale). Composite query `BQi` consists of the first
//! `i` of Q3, Q5, Q7, Q8, Q9, Q10, each repeated twice with different
//! selection constants.
//!
//! Usage: `experiment1 [--sf <scale factor>]` (default: both 1 and 100).

use mqo_bench::{experiment1, print_cost_table, print_time_table, PAPER_STRATEGIES};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sf_arg = args
        .iter()
        .position(|a| a == "--sf")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse::<f64>().expect("--sf takes a number"));

    let sfs: Vec<f64> = match sf_arg {
        Some(sf) => vec![sf],
        None => vec![1.0, 100.0],
    };

    for sf in sfs {
        let label = if sf == 1.0 {
            "1GB Total Size (Figure 4a)".to_string()
        } else if sf == 100.0 {
            "100GB Total Size (Figure 4b)".to_string()
        } else {
            format!("SF {sf}")
        };
        let rows = experiment1(sf, &PAPER_STRATEGIES);
        print_cost_table(&format!("Experiment 1 — {label}"), &rows);
        print_time_table("Experiment 1 — Figure 4c", &rows);
    }
}
