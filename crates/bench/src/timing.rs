//! A tiny zero-dependency timing harness for the `harness = false` bench
//! targets.
//!
//! The build environment is offline, so the workspace cannot pull in
//! criterion; this module provides the subset the benches need: named
//! groups, per-benchmark warmup, N timed samples, and a median report.
//! Bench IDs keep criterion's `group/function/parameter` shape so existing
//! tooling that greps bench output keeps working.
//!
//! Environment knobs:
//!
//! * `MQO_BENCH_SAMPLES` — timed samples per benchmark (default 5; the
//!   reported figure is their median). Set to 1 for a smoke run.
//! * `MQO_BENCH_WARMUP` — warmup iterations per benchmark (default 1;
//!   0 is honored, timing the cold first iteration).

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] for benchmark bodies.
pub use std::hint::black_box;

fn env_usize(name: &str, default: usize, min: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= min)
        .unwrap_or(default)
}

/// A named group of benchmarks, the criterion `benchmark_group`
/// equivalent.
pub struct BenchGroup {
    name: String,
    samples: usize,
    warmup: usize,
}

impl BenchGroup {
    /// Creates a group; sample and warmup counts come from the
    /// `MQO_BENCH_SAMPLES` / `MQO_BENCH_WARMUP` environment variables.
    pub fn new(name: impl Into<String>) -> Self {
        BenchGroup {
            name: name.into(),
            // At least one sample (a median needs data); warmup may be 0
            // to time the cold first iteration.
            samples: env_usize("MQO_BENCH_SAMPLES", 5, 1),
            warmup: env_usize("MQO_BENCH_WARMUP", 1, 0),
        }
    }

    /// Sets the number of timed samples (criterion's `sample_size`).
    /// `MQO_BENCH_SAMPLES`, when set to a valid count, wins — so smoke
    /// runs can force 1 sample everywhere regardless of per-group tuning.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = env_usize("MQO_BENCH_SAMPLES", n.max(1), 1);
        self
    }

    /// Times `f` (warmup, then the configured number of samples) and
    /// prints the median under `group/id`. Each sample is one call of `f`;
    /// the return value is routed through [`black_box`] so the work is not
    /// optimized away.
    pub fn bench<R>(&mut self, id: impl std::fmt::Display, mut f: impl FnMut() -> R) {
        for _ in 0..self.warmup {
            black_box(f());
        }
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                black_box(f());
                start.elapsed()
            })
            .collect();
        times.sort_unstable();
        let median = times[times.len() / 2];
        println!(
            "{}/{id}: median {} over {} sample(s)  [min {}, max {}]",
            self.name,
            fmt_duration(median),
            times.len(),
            fmt_duration(times[0]),
            fmt_duration(times[times.len() - 1]),
        );
    }

    /// Ends the group (prints a separating blank line, mirroring
    /// criterion's `finish`).
    pub fn finish(self) {
        println!();
    }
}

/// Formats a criterion-style `function/parameter` bench ID.
pub fn bench_id(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> String {
    format!("{function}/{parameter}")
}

fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_at_least_once_and_reports() {
        let mut calls = 0usize;
        let mut g = BenchGroup::new("timing_smoke");
        g.sample_size(2);
        g.bench(bench_id("count", 1), || {
            calls += 1;
            calls
        });
        g.finish();
        // warmup (>= 1) + samples (>= 1)
        assert!(calls >= 2, "{calls}");
    }

    #[test]
    fn id_has_criterion_shape() {
        assert_eq!(bench_id("eager", 32), "eager/32");
    }
}
