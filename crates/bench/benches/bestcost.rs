//! Ablation bench for the `bestCost` oracle: incremental recomputation
//! (the Pyro optimization inherited in Section 5.1) vs full bottom-up DP
//! per evaluation, measured as full greedy runs on real batched workloads.
//!
//! Runs under the in-repo timing harness (`mqo_bench::timing`), not
//! criterion — the build is offline.

use mqo_bench::timing::{bench_id, BenchGroup};
use mqo_core::batch::BatchDag;
use mqo_core::benefit::MbFunction;
use mqo_core::engine::{BestCostEngine, MqoConfig};
use mqo_submod::algorithms::greedy::{greedy, Config as GreedyConfig};
use mqo_submod::bitset::BitSet;
use mqo_submod::function::SetFunction;
use mqo_volcano::cost::DiskCostModel;
use mqo_volcano::rules::RuleSet;

fn bench_incremental_vs_full() {
    let mut group = BenchGroup::new("bestcost_incremental_vs_full");
    group.sample_size(10);
    for i in [3usize, 5] {
        let w = mqo_tpcd::batched(i, 1.0);
        let batch = BatchDag::build(w.ctx, &w.queries, &RuleSet::default());
        let cm = DiskCostModel::paper();
        for force_full in [false, true] {
            let label = if force_full { "full" } else { "incremental" };
            group.bench(bench_id(label, format!("BQ{i}")), || {
                let engine =
                    BestCostEngine::new(batch.memo(), &cm, batch.root(), batch.shareable());
                let mb = MbFunction::new(engine);
                mb.set_force_full(force_full);
                let n = mb.universe();
                greedy(&mb, &BitSet::full(n), GreedyConfig::default())
            });
        }
    }
    group.finish();
}

fn bench_engine_compile() {
    let mut group = BenchGroup::new("engine_compile");
    group.sample_size(10);
    for i in [3usize, 6] {
        let w = mqo_tpcd::batched(i, 1.0);
        let batch = BatchDag::build(w.ctx, &w.queries, &RuleSet::default());
        let cm = DiskCostModel::paper();
        // Fresh: every compile rebuilds the TopoView and its own scratch.
        group.bench(bench_id("fresh", format!("BQ{i}")), || {
            BestCostEngine::new(batch.memo(), &cm, batch.root(), batch.shareable())
        });
        // Cached: recompiles through the batch's shared CompileCache — the
        // arena-reuse path every `OptimizedBatch::run` takes (the TopoView
        // is computed once and all compile scratch buffers are recycled).
        group.bench(bench_id("cached", format!("BQ{i}")), || {
            batch.compile_engine(&cm, MqoConfig::default())
        });
    }
    group.finish();
}

fn main() {
    bench_incremental_vs_full();
    bench_engine_compile();
}
