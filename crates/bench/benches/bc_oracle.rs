// mqo-lint: allow-file(wall-clock) -- measurement code: raw Instant reads are this file's
// entire purpose; optimization decisions never depend on them.
//! Microbenchmark of the `bestCost` oracle itself: raw `bc(S)` evaluation
//! throughput (evals/sec) on the TPCD 4-query batch, comparing
//!
//! * `full` — every evaluation runs the full bottom-up DP (`force_full`),
//! * `incremental` — the overlay path relative to the committed base
//!   (Section 5.1 / Roy et al.'s incremental recomputation),
//! * `batched` — `bc_many`, evaluating a whole greedy round's candidates
//!   against one shared base,
//! * `sharded` — `bc_many` with `MqoConfig::threads` ∈ {1, 2, 4, 8}:
//!   the same batched schedule fanned out over scoped worker threads,
//!   each with its own `EngineScratch` over the shared arenas
//!   (bit-identical values; only the wall-clock changes).
//!
//! The evaluation schedule replays what the greedy strategies actually do:
//! a growing base set `X`, and per round one `bc(X ∪ {x})` probe for every
//! remaining candidate `x`. All modes see the identical schedule, so
//! evals/sec is directly comparable.
//!
//! Set `MQO_BENCH_JSON=<path>` to additionally record the results as a JSON
//! baseline (`scripts/verify.sh --bench-smoke` writes
//! `BENCH_bc_oracle.json` at the repo root this way).

use std::time::Instant;

use mqo_core::batch::BatchDag;
use mqo_core::engine::{BestCostEngine, MqoConfig};
use mqo_submod::bitset::BitSet;
use mqo_volcano::cost::DiskCostModel;
use mqo_volcano::rules::RuleSet;

/// One measured mode.
struct ModeResult {
    mode: &'static str,
    /// Worker threads (sharded modes only; 0 elsewhere).
    threads: usize,
    evals: u64,
    secs: f64,
}

impl ModeResult {
    fn evals_per_sec(&self) -> f64 {
        self.evals as f64 / self.secs.max(1e-12)
    }

    fn label(&self) -> String {
        if self.threads > 0 {
            format!("{}@{}", self.mode, self.threads)
        } else {
            self.mode.to_string()
        }
    }
}

/// The greedy-round evaluation schedule: for each round, the base set and
/// the candidate elements probed on top of it.
fn schedule(n: usize) -> Vec<(BitSet, Vec<usize>)> {
    let mut rounds = Vec::new();
    let mut base = BitSet::empty(n);
    let mut remaining: Vec<usize> = (0..n).collect();
    // Deterministic pick order: keep adding the middle remaining element so
    // the base grows exactly like a greedy run would.
    while !remaining.is_empty() {
        rounds.push((base.clone(), remaining.clone()));
        let pick = remaining.remove(remaining.len() / 2);
        base.insert(pick);
    }
    rounds
}

fn run_sequential(engine: &mut BestCostEngine, rounds: &[(BitSet, Vec<usize>)]) -> u64 {
    let mut evals = 0u64;
    let mut acc = 0.0f64;
    for (base, candidates) in rounds {
        for &e in candidates {
            acc += engine.bc(&base.with(e));
            evals += 1;
        }
    }
    std::hint::black_box(acc);
    evals
}

fn run_batched(engine: &mut BestCostEngine, rounds: &[(BitSet, Vec<usize>)]) -> u64 {
    let mut evals = 0u64;
    let mut acc = 0.0f64;
    for (base, candidates) in rounds {
        let sets: Vec<BitSet> = candidates.iter().map(|&e| base.with(e)).collect();
        for v in engine.bc_many(&sets) {
            acc += v;
            evals += 1;
        }
    }
    std::hint::black_box(acc);
    evals
}

fn main() {
    let w = mqo_tpcd::batched(4, 1.0);
    let batch = BatchDag::build(w.ctx, &w.queries, &RuleSet::default());
    let cm = DiskCostModel::paper();
    let n = batch.universe_size();
    let rounds = schedule(n);
    let total_evals: u64 = rounds.iter().map(|(_, c)| c.len() as u64).sum();
    println!(
        "bc_oracle: TPCD BQ4, universe {n}, {} rounds, {} evals per pass",
        rounds.len(),
        total_evals
    );

    let samples: usize = std::env::var("MQO_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(5);

    // (mode, threads); threads > 0 selects the sharded bc_many fan-out.
    let mut modes: Vec<(&'static str, usize)> =
        vec![("full", 0), ("incremental", 0), ("batched", 0)];
    modes.extend([1usize, 2, 4, 8].map(|t| ("sharded", t)));

    let mut results: Vec<ModeResult> = Vec::new();
    for (mode, threads) in modes {
        let mut engine = BestCostEngine::with_config(
            batch.memo(),
            &cm,
            batch.root(),
            batch.shareable(),
            MqoConfig {
                force_full: mode == "full",
                threads: threads.max(1),
                ..Default::default()
            },
        );
        let batched = mode != "full" && mode != "incremental";
        // Warmup pass (grows scratch buffers to steady state).
        match batched {
            true => run_batched(&mut engine, &rounds),
            false => run_sequential(&mut engine, &rounds),
        };
        let mut best_secs = f64::INFINITY;
        let mut evals = 0u64;
        for _ in 0..samples {
            let t0 = Instant::now();
            evals = match batched {
                true => run_batched(&mut engine, &rounds),
                false => run_sequential(&mut engine, &rounds),
            };
            best_secs = best_secs.min(t0.elapsed().as_secs_f64());
        }
        let r = ModeResult {
            mode,
            threads,
            evals,
            secs: best_secs,
        };
        println!(
            "bc_oracle/{}/BQ4: {:.0} evals/sec ({} evals in {:.3} ms, best of {samples})",
            r.label(),
            r.evals_per_sec(),
            r.evals,
            r.secs * 1e3
        );
        results.push(r);
    }

    let full = results[0].evals_per_sec();
    let inc = results[1].evals_per_sec();
    let bat = results[2].evals_per_sec();
    println!(
        "bc_oracle/speedup: incremental {:.1}x, batched {:.1}x over full",
        inc / full,
        bat / full
    );
    let sharded_base = results
        .iter()
        .find(|r| r.mode == "sharded" && r.threads == 1)
        .map(|r| r.evals_per_sec())
        .unwrap_or(bat);
    for r in results.iter().filter(|r| r.mode == "sharded") {
        println!(
            "bc_oracle/sharded@{}: {:.2}x over sharded@1",
            r.threads,
            r.evals_per_sec() / sharded_base
        );
    }

    if let Ok(path) = std::env::var("MQO_BENCH_JSON") {
        let entries: Vec<String> = results
            .iter()
            .map(|r| {
                format!(
                    "    {{\"mode\": \"{}\", \"threads\": {}, \"evals\": {}, \"secs\": {:.6}, \"evals_per_sec\": {:.1}}}",
                    r.mode,
                    r.threads,
                    r.evals,
                    r.secs,
                    r.evals_per_sec()
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"bench\": \"bc_oracle\",\n  \"workload\": \"BQ4\",\n  \"universe\": {n},\n  \"samples\": {samples},\n  \"results\": [\n{}\n  ]\n}}\n",
            entries.join(",\n")
        );
        std::fs::write(&path, json).expect("write MQO_BENCH_JSON baseline");
        println!("bc_oracle: baseline written to {path}");
    }
}
