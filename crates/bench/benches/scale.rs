//! The scale-tier series: selection + extraction wall-clock as a function
//! of universe size × batch size × threads, on the seeded workload
//! generator (`mqo_tpcd::workloads`).
//!
//! Three tiers:
//!
//! * `smoke` — the four generator shapes at smoke size; the default
//!   (fast) series, exercised by `scripts/verify.sh`'s bench smoke.
//! * `mid` — a few-hundred-element chain batch, the knee between the
//!   TPCD batches and the scale tier.
//! * `scale-10k` — [`WorkloadSpec::scale_10k`]: a chain batch whose
//!   shareable universe exceeds 10 000 materialization candidates, run as
//!   a thread series (1, 2, 4) plus a Theorem 4 universe-reduction
//!   on/off pair under the materialization-cost decomposition at k = 16.
//!   Included when `MQO_BENCH_JSON` is set (a recording run must cover
//!   the flagship instance — the run *fails* if the universe falls under
//!   10k) or when `MQO_BENCH_SCALE_FULL=1`.
//!
//! Set `MQO_BENCH_JSON=<path>` to record the series as a JSON baseline
//! (`scripts/verify.sh --bench-smoke` writes `BENCH_scale.json` at the
//! repo root this way). Every entry carries a `threads` field —
//! `verify.sh` refuses baselines without one. Knobs: `MQO_BENCH_SAMPLES`
//! (zero-dependency harness, no criterion — the build is offline).

use std::time::Duration;

use mqo_core::config::{DecompositionKind, MqoConfig};
use mqo_core::session::{OptimizedBatch, Session};
use mqo_core::strategies::Strategy;
use mqo_tpcd::workloads::{generate, Shape, WorkloadSpec};
use mqo_volcano::cost::DiskCostModel;

struct ScaleResult {
    mode: &'static str,
    tier: &'static str,
    shape: &'static str,
    queries: usize,
    universe: usize,
    candidates: usize,
    threads: usize,
    materializations: usize,
    opt_secs: f64,
    extract_secs: f64,
}

fn samples_from_env(default: usize) -> usize {
    std::env::var("MQO_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(default)
}

fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

fn build(spec: &WorkloadSpec) -> OptimizedBatch {
    let w = generate(spec);
    Session::builder()
        .context(w.ctx)
        .queries(w.queries)
        .cost_model(DiskCostModel::paper())
        .build()
}

/// Runs `samples` measured repetitions (after one warmup) and reports the
/// median internal `opt_time` / `extract_time` — the phase timings the
/// reports measure around node selection and consolidated-plan extraction
/// only, so neither metric contaminates the other.
fn measure(
    session: &OptimizedBatch,
    config: MqoConfig,
    samples: usize,
) -> (Duration, Duration, usize, usize) {
    let _warmup = session.run_with(Strategy::MarginalGreedy, config);
    let mut opts = Vec::with_capacity(samples);
    let mut extracts = Vec::with_capacity(samples);
    let mut report = None;
    for _ in 0..samples {
        let r = session.run_with(Strategy::MarginalGreedy, config);
        opts.push(r.opt_time);
        extracts.push(r.extract_time);
        report = Some(r);
    }
    opts.sort_unstable();
    extracts.sort_unstable();
    let report = report.expect("samples >= 1");
    (
        opts[opts.len() / 2],
        extracts[extracts.len() / 2],
        report.candidates,
        report.materialized.len(),
    )
}

fn record(
    results: &mut Vec<ScaleResult>,
    mode: &'static str,
    tier: &'static str,
    spec: &WorkloadSpec,
    session: &OptimizedBatch,
    config: MqoConfig,
    samples: usize,
) {
    let (opt, extract, candidates, materializations) = measure(session, config, samples);
    let r = ScaleResult {
        mode,
        tier,
        shape: spec.shape.name(),
        queries: spec.queries,
        universe: session.universe_size(),
        candidates,
        threads: config.threads,
        materializations,
        opt_secs: opt.as_secs_f64(),
        extract_secs: extract.as_secs_f64(),
    };
    println!(
        "scale/{mode}/{tier}/{}/q{}/t{}: universe {} candidates {} opt {} extract {} ({} materializations)",
        r.shape,
        r.queries,
        r.threads,
        r.universe,
        r.candidates,
        fmt_duration(opt),
        fmt_duration(extract),
        r.materializations,
    );
    results.push(r);
}

fn mid_spec(seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        shape: Shape::Chain,
        tables: 48,
        queries: 60,
        span: (6, 9),
        overlap: 0.3,
        select_prob: 0.35,
        base_rows: 500.0,
        seed,
    }
}

fn main() {
    let samples = samples_from_env(3);
    let recording = std::env::var("MQO_BENCH_JSON").is_ok();
    let full = recording || std::env::var("MQO_BENCH_SCALE_FULL").is_ok_and(|v| v == "1");
    let mut results = Vec::new();

    for shape in Shape::ALL {
        let spec = WorkloadSpec::smoke(shape, 42);
        let session = build(&spec);
        let config = session.config();
        record(
            &mut results,
            "scale",
            "smoke",
            &spec,
            &session,
            config,
            samples,
        );
    }

    {
        let spec = mid_spec(42);
        let session = build(&spec);
        let config = session.config();
        record(
            &mut results,
            "scale",
            "mid",
            &spec,
            &session,
            config,
            samples,
        );
    }

    if full {
        let spec = WorkloadSpec::scale_10k(7);
        let session = build(&spec);
        assert!(
            session.universe_size() >= 10_000,
            "the scale-10k tier must exceed 10k materialization candidates, got {}",
            session.universe_size()
        );
        // Thread series: same instance, same answer (bit-identical by
        // construction), different work distribution.
        for threads in [1usize, 2, 4] {
            let config = MqoConfig {
                threads,
                ..session.config()
            };
            record(
                &mut results,
                "scale",
                "scale-10k",
                &spec,
                &session,
                config,
                samples,
            );
        }
        // Theorem 4 universe-reduction pre-pass, on vs off, under the
        // materialization-cost decomposition at k = 16 (the pre-pass's
        // `opt_time` includes the reduction itself — end-to-end honest).
        for (mode, reduction) in [("reduction-off", false), ("reduction-on", true)] {
            let config = MqoConfig {
                decomposition: DecompositionKind::MaterializationCost,
                universe_reduction: reduction,
                max_materializations: Some(16),
                ..session.config()
            };
            record(
                &mut results,
                mode,
                "scale-10k",
                &spec,
                &session,
                config,
                samples,
            );
        }
        // The paper's capped provable workflow (Section 5.3 greedy +
        // Theorem 4 reduction under the canonical decomposition) — the
        // series the kernels are measured on across PRs, since the same
        // strategy exists in every tree.
        for (mode, reduction) in [
            ("capped-canonical-off", false),
            ("capped-canonical-on", true),
        ] {
            let config = MqoConfig {
                universe_reduction: reduction,
                max_materializations: Some(16),
                ..session.config()
            };
            record(
                &mut results,
                mode,
                "scale-10k",
                &spec,
                &session,
                config,
                samples,
            );
        }
    } else {
        println!("scale: scale-10k tier skipped (set MQO_BENCH_SCALE_FULL=1 or record with MQO_BENCH_JSON)");
    }
    println!();

    if let Ok(path) = std::env::var("MQO_BENCH_JSON") {
        let entries: Vec<String> = results
            .iter()
            .map(|r| {
                format!(
                    "    {{\"mode\": \"{}\", \"tier\": \"{}\", \"shape\": \"{}\", \"queries\": {}, \"universe\": {}, \"candidates\": {}, \"threads\": {}, \"materializations\": {}, \"opt_secs\": {:.9}, \"extract_secs\": {:.9}}}",
                    r.mode,
                    r.tier,
                    r.shape,
                    r.queries,
                    r.universe,
                    r.candidates,
                    r.threads,
                    r.materializations,
                    r.opt_secs,
                    r.extract_secs,
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"bench\": \"scale\",\n  \"samples\": {samples},\n  \"results\": [\n{}\n  ]\n}}\n",
            entries.join(",\n")
        );
        std::fs::write(&path, json).expect("write MQO_BENCH_JSON baseline");
        println!("scale: baseline written to {path}");
    }
}
