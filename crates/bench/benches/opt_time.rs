// mqo-lint: allow-file(wall-clock) -- measurement code: raw Instant reads are this file's
// entire purpose; optimization decisions never depend on them.
//! Benchmark behind Figures 4c and 5c: optimization time of stand-alone
//! Volcano, Greedy, and MarginalGreedy per workload — plus the `extract`
//! series measuring consolidated-plan extraction off the compiled engine
//! arenas.
//!
//! The paper plots the opt-time figures in log scale to show Greedy and
//! MarginalGreedy nearly coinciding; the groups here measure the same
//! quantity (DAG construction is excluded — the paper measures the
//! node-selection phase on an already-built DAG). Every `RunReport` also
//! carries `extract_time`, the wall-clock of reading the consolidated
//! physical plan straight from the engine's dense arenas; the `extract`
//! series records it per workload.
//!
//! Set `MQO_BENCH_JSON=<path>` to record the extract series as a JSON
//! baseline (`scripts/verify.sh --bench-smoke` writes
//! `BENCH_opt_time.json` at the repo root this way). Every entry carries a
//! `threads` field — `verify.sh` refuses baselines without one.
//!
//! Both series report the phase timings the reports measure internally
//! (`opt_time`, `extract_time`) rather than closure wall-clock, so
//! neither metric contaminates the other; knobs: `MQO_BENCH_SAMPLES`
//! (zero-dependency harness, no criterion — the build is offline).

use std::time::{Duration, Instant};

use mqo_core::session::{OptimizedBatch, Session};
use mqo_core::strategies::Strategy;
use mqo_volcano::cost::DiskCostModel;
use mqo_volcano::rules::RuleSet;

fn build(i: usize) -> OptimizedBatch {
    let w = mqo_tpcd::batched(i, 1.0);
    Session::builder()
        .context(w.ctx)
        .queries(w.queries)
        .rules(RuleSet::default())
        .cost_model(DiskCostModel::paper())
        .build()
}

fn samples_from_env(default: usize) -> usize {
    std::env::var("MQO_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(default)
}

fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

/// Times `session.run(s)` repeatedly but reports the report's own
/// `opt_time` — the node-selection phase only, the Figure 4c/5c metric
/// (each run also extracts the consolidated plan, which must not leak
/// into this series; the extraction wall-clock is the separate `extract`
/// series below).
fn bench_opt_series(
    group: &str,
    id: String,
    session: &OptimizedBatch,
    s: Strategy,
    samples: usize,
) {
    let _warmup = session.run(s);
    let mut times: Vec<Duration> = (0..samples).map(|_| session.run(s).opt_time).collect();
    times.sort_unstable();
    let median = times[times.len() / 2];
    println!(
        "{group}/{id}: median {} over {} sample(s)  [min {}, max {}]",
        fmt_duration(median),
        times.len(),
        fmt_duration(times[0]),
        fmt_duration(times[times.len() - 1]),
    );
}

fn bench_batched(samples: usize) {
    for i in [2usize, 4, 6] {
        let session = build(i);
        for s in [
            Strategy::Volcano,
            Strategy::Greedy,
            Strategy::MarginalGreedy,
        ] {
            bench_opt_series(
                "figure4c_opt_time",
                format!("{}/BQ{i}", s.name()),
                &session,
                s,
                samples,
            );
        }
    }
    println!();
}

fn bench_standalone(samples: usize) {
    for name in mqo_tpcd::STANDALONE_NAMES {
        let w = mqo_tpcd::standalone(name, 1.0);
        let session = Session::builder()
            .context(w.ctx)
            .queries(w.queries)
            .rules(RuleSet::default())
            .cost_model(DiskCostModel::paper())
            .build();
        for s in [
            Strategy::Volcano,
            Strategy::Greedy,
            Strategy::MarginalGreedy,
        ] {
            bench_opt_series(
                "figure5c_opt_time",
                format!("{}/{name}", s.name()),
                &session,
                s,
                samples,
            );
        }
    }
    println!();
}

struct ExtractResult {
    workload: String,
    strategy: &'static str,
    threads: usize,
    materializations: usize,
    secs: f64,
}

/// The `extract` series: per workload, the minimum observed
/// consolidated-plan extraction time (each `run` measures it internally
/// around the arena extractor only, excluding selection and engine
/// compilation).
fn bench_extract(samples: usize) -> Vec<ExtractResult> {
    let mut results = Vec::new();
    for i in [2usize, 4, 6] {
        let session = build(i);
        let threads = session.config().threads;
        for s in [Strategy::Greedy, Strategy::MarginalGreedy] {
            // Warmup run (also sizes the compile cache).
            let mut report = session.run(s);
            let mut best = report.extract_time;
            for _ in 0..samples {
                report = session.run(s);
                best = best.min(report.extract_time);
            }
            let r = ExtractResult {
                workload: format!("BQ{i}"),
                strategy: s.name(),
                threads,
                materializations: report.materialized.len(),
                secs: best.as_secs_f64(),
            };
            println!(
                "extract/{}/{}: {:.1} µs ({} materializations + {} query plans, best of {samples})",
                r.strategy,
                r.workload,
                r.secs * 1e6,
                r.materializations,
                report.plan.query_plans.len(),
            );
            results.push(r);
        }
    }
    println!();
    results
}

struct EvolveResult {
    workload: String,
    op: &'static str,
    threads: usize,
    secs: f64,
}

/// The `session_evolve` series: per batch BQ3..BQ6, the median time to
/// `add_query` the batch's last query onto a live session of the others,
/// to `retire_query` it again (restoring the base via the savepoint fast
/// path), and — the comparison baseline — to rebuild the full batch from
/// scratch with `Session::build` (insertion + fixpoint expansion +
/// universe computation, i.e. everything the incremental add avoids
/// repeating). An add/retire cycle leaves the session in its base state,
/// so the cycles repeat on one long-lived session, exactly the serving
/// pattern the evolvable API exists for.
fn bench_session_evolve(samples: usize) -> Vec<EvolveResult> {
    fn median(mut times: Vec<Duration>) -> f64 {
        times.sort_unstable();
        times[times.len() / 2].as_secs_f64()
    }
    let mut results = Vec::new();
    for i in [3usize, 4, 5, 6] {
        let w = mqo_tpcd::batched(i, 1.0);
        let base: Vec<_> = w.queries[..w.queries.len() - 1].to_vec();
        let last = w.queries.last().expect("non-empty batch").clone();
        let mut session = Session::builder()
            .context(w.ctx)
            .queries(base)
            .rules(RuleSet::default())
            .cost_model(DiskCostModel::paper())
            .build();
        let threads = session.config().threads;
        // Warmup cycle (also faults in the allocator's arenas).
        let t = session.add_query(last.clone());
        session.retire_query(t);
        let (mut add_times, mut retire_times) = (Vec::new(), Vec::new());
        for _ in 0..samples {
            let start = Instant::now();
            let t = session.add_query(last.clone());
            add_times.push(start.elapsed());
            let start = Instant::now();
            session.retire_query(t);
            retire_times.push(start.elapsed());
        }
        let rebuild_times: Vec<Duration> = (0..samples)
            .map(|_| {
                let w = mqo_tpcd::batched(i, 1.0);
                let start = Instant::now();
                let full = Session::builder()
                    .context(w.ctx)
                    .queries(w.queries)
                    .rules(RuleSet::default())
                    .cost_model(DiskCostModel::paper())
                    .build();
                let elapsed = start.elapsed();
                drop(full);
                elapsed
            })
            .collect();
        let (add, retire, rebuild) = (
            median(add_times),
            median(retire_times),
            median(rebuild_times),
        );
        println!(
            "session_evolve/BQ{i}: add {} retire {} rebuild {} (add is {:.1}x faster than rebuild)",
            fmt_duration(Duration::from_secs_f64(add)),
            fmt_duration(Duration::from_secs_f64(retire)),
            fmt_duration(Duration::from_secs_f64(rebuild)),
            rebuild / add.max(1e-12),
        );
        for (op, secs) in [("add", add), ("retire", retire), ("rebuild", rebuild)] {
            results.push(EvolveResult {
                workload: format!("BQ{i}"),
                op,
                threads,
                secs,
            });
        }
    }
    println!();
    results
}

fn main() {
    let samples = samples_from_env(5);
    bench_batched(samples);
    bench_standalone(samples);
    let extract = bench_extract(samples);
    let evolve = bench_session_evolve(samples);

    if let Ok(path) = std::env::var("MQO_BENCH_JSON") {
        let mut entries: Vec<String> = extract
            .iter()
            .map(|r| {
                format!(
                    "    {{\"mode\": \"extract\", \"workload\": \"{}\", \"strategy\": \"{}\", \"threads\": {}, \"materializations\": {}, \"secs\": {:.9}}}",
                    r.workload, r.strategy, r.threads, r.materializations, r.secs
                )
            })
            .collect();
        entries.extend(evolve.iter().map(|r| {
            format!(
                "    {{\"mode\": \"session_evolve\", \"workload\": \"{}\", \"op\": \"{}\", \"threads\": {}, \"secs\": {:.9}}}",
                r.workload, r.op, r.threads, r.secs
            )
        }));
        let json = format!(
            "{{\n  \"bench\": \"opt_time\",\n  \"samples\": {samples},\n  \"results\": [\n{}\n  ]\n}}\n",
            entries.join(",\n")
        );
        std::fs::write(&path, json).expect("write MQO_BENCH_JSON baseline");
        println!("opt_time: baseline written to {path}");
    }
}
