//! Benchmark behind Figures 4c and 5c: optimization time of stand-alone
//! Volcano, Greedy, and MarginalGreedy per workload.
//!
//! The paper plots these in log scale to show Greedy and MarginalGreedy
//! nearly coinciding; the groups here measure the same quantity (DAG
//! construction is excluded — the paper measures the node-selection phase
//! on an already-built DAG).
//!
//! Runs under the in-repo timing harness (`mqo_bench::timing`), not
//! criterion — the build is offline.

use mqo_bench::timing::{bench_id, BenchGroup};
use mqo_core::batch::BatchDag;
use mqo_core::strategies::{optimize, Strategy};
use mqo_volcano::cost::DiskCostModel;
use mqo_volcano::rules::RuleSet;

fn build(i: usize) -> BatchDag {
    let w = mqo_tpcd::batched(i, 1.0);
    BatchDag::build(w.ctx, &w.queries, &RuleSet::default())
}

fn bench_batched() {
    let mut group = BenchGroup::new("figure4c_opt_time");
    group.sample_size(10);
    for i in [2usize, 4, 6] {
        let batch = build(i);
        let cm = DiskCostModel::paper();
        for s in [
            Strategy::Volcano,
            Strategy::Greedy,
            Strategy::MarginalGreedy,
        ] {
            group.bench(bench_id(s.name(), format!("BQ{i}")), || {
                optimize(&batch, &cm, s)
            });
        }
    }
    group.finish();
}

fn bench_standalone() {
    let mut group = BenchGroup::new("figure5c_opt_time");
    group.sample_size(10);
    for name in mqo_tpcd::STANDALONE_NAMES {
        let w = mqo_tpcd::standalone(name, 1.0);
        let batch = BatchDag::build(w.ctx, &w.queries, &RuleSet::default());
        let cm = DiskCostModel::paper();
        for s in [
            Strategy::Volcano,
            Strategy::Greedy,
            Strategy::MarginalGreedy,
        ] {
            group.bench(bench_id(s.name(), name), || optimize(&batch, &cm, s));
        }
    }
    group.finish();
}

fn main() {
    bench_batched();
    bench_standalone();
}
