// mqo-lint: allow-file(wall-clock) -- measurement code: raw Instant reads are this file's
// entire purpose; optimization decisions never depend on them.
//! Benchmark of the memo-expansion pipeline: end-to-end `BatchDag::build`
//! wall time (query insertion + rule fixpoint + shareable-universe scan)
//! and raw expansion throughput (live expressions produced per second) on
//! the TPCD batched workloads.
//!
//! Series:
//!
//! * `build@t` for `t ∈ {1, 2, 4}` — `BatchDag::build_with_threads`: the
//!   frontier fixpoint's candidate generation fanned out over `t` scoped
//!   worker threads (the commit phase is always serial and deterministic,
//!   so the resulting memo is bit-identical at every `t`; see
//!   `crates/volcano/tests/memo_differential.rs`).
//!
//! Set `MQO_BENCH_JSON=<path>` to record the results as a JSON baseline
//! (`scripts/verify.sh --bench-smoke` writes `BENCH_memo_expand.json` at
//! the repo root this way). Every entry carries a `threads` field —
//! `verify.sh` refuses baselines without one.

use std::time::Instant;

use mqo_core::batch::BatchDag;
use mqo_volcano::rules::RuleSet;

struct SeriesResult {
    workload: String,
    threads: usize,
    /// Live expressions in the expanded memo (throughput denominator).
    exprs: usize,
    groups: usize,
    secs: f64,
}

impl SeriesResult {
    fn expansions_per_sec(&self) -> f64 {
        self.exprs as f64 / self.secs.max(1e-12)
    }
}

fn run_series(i: usize, threads: usize, samples: usize) -> SeriesResult {
    // The context is consumed by `build`, so each sample re-creates the
    // workload outside the timed section.
    let mut best_secs = f64::INFINITY;
    let mut exprs = 0usize;
    let mut groups = 0usize;
    // One untimed warmup build.
    let w = mqo_tpcd::batched(i, 1.0);
    std::hint::black_box(BatchDag::build_with_threads(
        w.ctx,
        &w.queries,
        &RuleSet::default(),
        threads,
    ));
    for _ in 0..samples {
        let w = mqo_tpcd::batched(i, 1.0);
        let t0 = Instant::now();
        let batch = BatchDag::build_with_threads(w.ctx, &w.queries, &RuleSet::default(), threads);
        best_secs = best_secs.min(t0.elapsed().as_secs_f64());
        exprs = batch.expansion().exprs;
        groups = batch.expansion().groups;
        std::hint::black_box(batch);
    }
    SeriesResult {
        workload: format!("BQ{i}"),
        threads,
        exprs,
        groups,
        secs: best_secs,
    }
}

fn main() {
    let samples: usize = std::env::var("MQO_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(5);

    let mut results: Vec<SeriesResult> = Vec::new();
    for i in [3usize, 4] {
        for threads in [1usize, 2, 4] {
            let r = run_series(i, threads, samples);
            println!(
                "memo_expand/build@{}/{}: {:.3} ms ({} exprs, {} groups, {:.0} expansions/sec, best of {samples})",
                r.threads,
                r.workload,
                r.secs * 1e3,
                r.exprs,
                r.groups,
                r.expansions_per_sec()
            );
            results.push(r);
        }
    }

    if let Some(base) = results
        .iter()
        .find(|r| r.workload == "BQ4" && r.threads == 1)
    {
        for r in results.iter().filter(|r| r.workload == "BQ4") {
            println!(
                "memo_expand/build@{}: {:.2}x over build@1 on BQ4",
                r.threads,
                base.secs / r.secs.max(1e-12)
            );
        }
    }

    if let Ok(path) = std::env::var("MQO_BENCH_JSON") {
        let entries: Vec<String> = results
            .iter()
            .map(|r| {
                format!(
                    "    {{\"mode\": \"build\", \"workload\": \"{}\", \"threads\": {}, \"exprs\": {}, \"groups\": {}, \"secs\": {:.6}, \"expansions_per_sec\": {:.1}}}",
                    r.workload,
                    r.threads,
                    r.exprs,
                    r.groups,
                    r.secs,
                    r.expansions_per_sec()
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"bench\": \"memo_expand\",\n  \"samples\": {samples},\n  \"results\": [\n{}\n  ]\n}}\n",
            entries.join(",\n")
        );
        std::fs::write(&path, json).expect("write MQO_BENCH_JSON baseline");
        println!("memo_expand: baseline written to {path}");
    }
}
