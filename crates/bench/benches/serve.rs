// mqo-lint: allow-file(wall-clock) -- measurement code: raw Instant reads are this file's
// entire purpose; optimization decisions never depend on them.
//! Serving-layer benchmark: what does it cost to keep a live MQO service
//! hot, versus rebuilding the batch per arrival?
//!
//! Series, each at engine thread counts 1 and 4 (the `threads` field):
//!
//! - `admission` — median wall-clock of `submit_query` admitting one
//!   query into a warm BQ4-scale service: queue push, writer election,
//!   seeded incremental expansion, snapshot compile, publish. The number
//!   the serving layer exists for: it must beat `rebuild` by a wide
//!   margin (the recorded `speedup_vs_rebuild` is the gate; ≥3× at
//!   `threads: 1`).
//! - `rebuild` — the per-arrival alternative: `Session::build` over the
//!   full query set plus the first snapshot compile.
//! - `round` — seconds per optimization round under `threads` concurrent
//!   submitters hammering submit/retire cycles (flat-combining coalescing
//!   makes this diverge from `admission` under contention); the printed
//!   rounds/sec is `1/secs`.
//! - `snapshot_clone` — cost of a reader grabbing the published
//!   `Arc<EngineState>` (lock + `Arc` clone; amortized over a tight
//!   loop).
//! - `engine_spinup` — cost of turning a held snapshot into a private
//!   `BestCostEngine` handle (two base-vector copies, no DP re-solve).
//! - `degraded_round` — the fault-tolerance path: wall-clock of one
//!   admission followed by a deadline-hit `run_class(Interactive)` read
//!   (zero Interactive budget, so the optimization degrades to the
//!   certified no-sharing answer immediately). The entry also records
//!   `certified_gap`: the certified approximation ratio of a
//!   deterministic degraded run (marginal floor `f64::MAX` — one full
//!   observation round, then cut), which is machine-independent, finite,
//!   and what `verify.sh` checks against the recorded baseline.
//!
//! Set `MQO_BENCH_JSON=<path>` to record the series as a JSON baseline
//! (`scripts/verify.sh --bench-smoke` writes `BENCH_serve.json` at the
//! repo root this way). Every entry carries a `threads` field —
//! `verify.sh` refuses baselines without one. Knobs: `MQO_BENCH_SAMPLES`
//! (zero-dependency harness, no criterion — the build is offline).

use std::time::{Duration, Instant};

use mqo_core::session::{OptimizedBatch, Session};
use mqo_core::strategies::Strategy;
use mqo_core::{MqoConfig, PriorityClass, ServeConfig};
use mqo_volcano::cost::DiskCostModel;
use mqo_volcano::rules::RuleSet;
use mqo_volcano::PlanNode;

fn samples_from_env(default: usize) -> usize {
    std::env::var("MQO_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(default)
}

fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

fn median(mut times: Vec<Duration>) -> f64 {
    times.sort_unstable();
    times[times.len() / 2].as_secs_f64()
}

/// BQ4 minus its last query (the base the warm service holds), plus that
/// last query (the arrival every series admits).
fn build_base(threads: usize) -> (OptimizedBatch, PlanNode) {
    let w = mqo_tpcd::batched(4, 1.0);
    let mut queries = w.queries;
    let extra = queries.pop().expect("BQ4 is non-empty");
    let batch = Session::builder()
        .context(w.ctx)
        .queries(queries)
        .rules(RuleSet::default())
        .cost_model(DiskCostModel::paper())
        .threads(threads)
        .build();
    (batch, extra)
}

struct ServeResult {
    series: &'static str,
    threads: usize,
    secs: f64,
    /// Only set on the `admission` series: rebuild ÷ admission.
    speedup_vs_rebuild: Option<f64>,
    /// Only set on the `degraded_round` series: the certified
    /// approximation ratio of the deterministic floored run.
    certified_gap: Option<f64>,
}

fn bench_threads(threads: usize, samples: usize, results: &mut Vec<ServeResult>) {
    let (batch, extra) = build_base(threads);
    let service = batch.serve();
    // Warm cycle: faults in the compile cache, arenas, and allocator.
    let t = service.submit_query(extra.clone());
    service.retire_query(t);

    // admission: one arrival into the warm service (retire outside the
    // timed region restores the base for the next sample).
    let admission = median(
        (0..samples)
            .map(|_| {
                let start = Instant::now();
                let t = service.submit_query(extra.clone());
                let elapsed = start.elapsed();
                service.retire_query(t);
                elapsed
            })
            .collect(),
    );

    // rebuild: the per-arrival alternative — full batch build plus the
    // first snapshot compile.
    let rebuild = median(
        (0..samples)
            .map(|_| {
                let w = mqo_tpcd::batched(4, 1.0);
                let start = Instant::now();
                let full = Session::builder()
                    .context(w.ctx)
                    .queries(w.queries)
                    .rules(RuleSet::default())
                    .cost_model(DiskCostModel::paper())
                    .threads(threads)
                    .build();
                let _ = full.snapshot();
                let elapsed = start.elapsed();
                drop(full);
                elapsed
            })
            .collect(),
    );

    // round: `threads` concurrent submitters doing submit/retire cycles;
    // flat combining coalesces them into fewer (bigger) rounds.
    let cycles_per_thread = (4 * samples).max(8);
    let rounds_before = service.stats().rounds;
    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads {
            let service = &service;
            let extra = &extra;
            s.spawn(move || {
                for _ in 0..cycles_per_thread {
                    let t = service.submit_query(extra.clone());
                    service.retire_query(t);
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let rounds = (service.stats().rounds - rounds_before).max(1);
    let secs_per_round = elapsed / rounds as f64;

    // snapshot_clone: amortized over a tight loop (it is an Arc clone).
    const CLONES: usize = 4096;
    let snapshot_clone = median(
        (0..samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..CLONES {
                    std::hint::black_box(service.snapshot());
                }
                start.elapsed() / CLONES as u32
            })
            .collect(),
    );

    // engine_spinup: held snapshot → private engine handle.
    let config = MqoConfig {
        threads,
        ..MqoConfig::default()
    };
    let state = service.snapshot();
    let engine_spinup = median(
        (0..samples)
            .map(|_| {
                let start = Instant::now();
                std::hint::black_box(state.engine(config));
                start.elapsed()
            })
            .collect(),
    );
    let batch = service.finish();

    // degraded_round: admission plus a deadline-hit Interactive read on a
    // service with a zero Interactive budget — the latency a
    // latency-critical caller pays for a certified partial answer while
    // the batch keeps evolving.
    let service = batch.serve_with(ServeConfig {
        class_budgets: [Some(Duration::ZERO), None, None],
        ..ServeConfig::default()
    });
    let degraded_round = median(
        (0..samples)
            .map(|_| {
                let start = Instant::now();
                let t = service.submit_query(extra.clone());
                let report = service.run_class(PriorityClass::Interactive);
                let elapsed = start.elapsed();
                assert!(
                    report
                        .gap_certificate
                        .is_some_and(|c| c.truncated && c.ratio >= 1.0),
                    "zero-budget read must come back certified-truncated"
                );
                service.retire_query(t);
                elapsed
            })
            .collect(),
    );
    // The machine-independent certified gap of a deterministic degraded
    // run: the floor cuts after one full observation round, so the
    // certificate is finite and bit-stable across hosts and thread
    // counts (unlike wall-clock deadline truncation).
    let floored = MqoConfig {
        threads,
        marginal_floor: f64::MAX,
        ..MqoConfig::default()
    };
    let certified_gap = {
        let cert = service
            .snapshot()
            .run(Strategy::MarginalGreedy, floored)
            .gap_certificate
            .expect("greedy strategies certify");
        assert!(cert.truncated && cert.ratio.is_finite());
        cert.ratio
    };
    drop(service.finish());

    let speedup = rebuild / admission.max(1e-12);
    println!(
        "serve/BQ4 threads={threads}: admission {} rebuild {} ({speedup:.1}x) \
         round {} ({:.0} rounds/s) snapshot_clone {} engine_spinup {}",
        fmt_duration(Duration::from_secs_f64(admission)),
        fmt_duration(Duration::from_secs_f64(rebuild)),
        fmt_duration(Duration::from_secs_f64(secs_per_round)),
        1.0 / secs_per_round.max(1e-12),
        fmt_duration(Duration::from_secs_f64(snapshot_clone)),
        fmt_duration(Duration::from_secs_f64(engine_spinup)),
    );
    println!(
        "serve/BQ4 threads={threads}: degraded_round {} (certified gap {certified_gap:.4})",
        fmt_duration(Duration::from_secs_f64(degraded_round)),
    );
    if threads == 1 && speedup < 3.0 {
        println!(
            "serve/BQ4 threads={threads}: WARNING admission speedup {speedup:.2}x \
             below the 3x acceptance bar"
        );
    }
    for (series, secs, speedup_vs_rebuild, gap) in [
        ("admission", admission, Some(speedup), None),
        ("rebuild", rebuild, None, None),
        ("round", secs_per_round, None, None),
        ("snapshot_clone", snapshot_clone, None, None),
        ("engine_spinup", engine_spinup, None, None),
        ("degraded_round", degraded_round, None, Some(certified_gap)),
    ] {
        results.push(ServeResult {
            series,
            threads,
            secs,
            speedup_vs_rebuild,
            certified_gap: gap,
        });
    }
}

fn main() {
    let samples = samples_from_env(5);
    let mut results = Vec::new();
    for threads in [1usize, 4] {
        bench_threads(threads, samples, &mut results);
    }

    if let Ok(path) = std::env::var("MQO_BENCH_JSON") {
        let entries: Vec<String> = results
            .iter()
            .map(|r| {
                let speedup = r
                    .speedup_vs_rebuild
                    .map(|s| format!(", \"speedup_vs_rebuild\": {s:.3}"))
                    .unwrap_or_default();
                let gap = r
                    .certified_gap
                    .map(|g| format!(", \"certified_gap\": {g:.6}"))
                    .unwrap_or_default();
                format!(
                    "    {{\"series\": \"{}\", \"workload\": \"BQ4\", \"threads\": {}, \"secs\": {:.9}{speedup}{gap}}}",
                    r.series, r.threads, r.secs
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"bench\": \"serve\",\n  \"samples\": {samples},\n  \"results\": [\n{}\n  ]\n}}\n",
            entries.join(",\n")
        );
        std::fs::write(&path, json).expect("write MQO_BENCH_JSON baseline");
        println!("serve: baseline written to {path}");
    }
}
