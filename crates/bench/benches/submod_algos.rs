//! Microbenchmarks of the UNSM algorithms (Section 5 ablations at the
//! abstract level): eager vs lazy MarginalGreedy, the §5.1 ratio pruning,
//! and the Greedy/LazyGreedy pair, on Profitted Max Coverage and random
//! coverage-minus-cost instances.
//!
//! Runs under the in-repo timing harness (`mqo_bench::timing`), not
//! criterion — the build is offline.

use mqo_bench::timing::{bench_id, BenchGroup};
use mqo_submod::algorithms::greedy::{greedy, lazy_greedy, Config as GreedyConfig};
use mqo_submod::algorithms::lazy::lazy_marginal_greedy;
use mqo_submod::algorithms::marginal_greedy::{marginal_greedy, Config};
use mqo_submod::bitset::BitSet;
use mqo_submod::decompose::Decomposition;
use mqo_submod::function::SetFunction;
use mqo_submod::instances::profitted::ProfittedMaxCoverage;
use mqo_submod::instances::random::{random_coverage_minus_cost, CoverageParams};

fn bench_marginal_variants() {
    let mut group = BenchGroup::new("marginal_greedy_variants");
    for n_sets in [32usize, 96, 192] {
        let f = random_coverage_minus_cost(
            CoverageParams {
                n_sets,
                n_items: 4 * n_sets,
                density: 0.1,
                ..Default::default()
            },
            1.0,
            7,
        );
        let d = Decomposition::canonical(&f);
        let full = BitSet::full(n_sets);
        group.bench(bench_id("eager", n_sets), || {
            marginal_greedy(&f, &d, &full, Config::default())
        });
        group.bench(bench_id("lazy", n_sets), || {
            lazy_marginal_greedy(&f, &d, &full, Config::default())
        });
        group.bench(bench_id("eager_no_pruning", n_sets), || {
            marginal_greedy(
                &f,
                &d,
                &full,
                Config {
                    prune_ratio_below_one: false,
                    ..Default::default()
                },
            )
        });
    }
    group.finish();
}

fn bench_greedy_variants() {
    let mut group = BenchGroup::new("greedy_variants");
    for n_sets in [32usize, 96] {
        let f = random_coverage_minus_cost(
            CoverageParams {
                n_sets,
                n_items: 4 * n_sets,
                density: 0.1,
                ..Default::default()
            },
            1.0,
            11,
        );
        let full = BitSet::full(n_sets);
        group.bench(bench_id("eager", n_sets), || {
            greedy(&f, &full, GreedyConfig::default())
        });
        group.bench(bench_id("lazy", n_sets), || {
            lazy_greedy(&f, &full, GreedyConfig::default())
        });
    }
    group.finish();
}

fn bench_profitted() {
    let mut group = BenchGroup::new("profitted_max_coverage");
    for blocks in [8usize, 16] {
        let inst = ProfittedMaxCoverage::hard_instance(blocks, 6, 3, 2.0);
        let n = inst.universe();
        let d = Decomposition::canonical(&inst);
        let full = BitSet::full(n);
        group.bench(bench_id("marginal_greedy", n), || {
            marginal_greedy(&inst, &d, &full, Config::default())
        });
    }
    group.finish();
}

fn main() {
    bench_marginal_variants();
    bench_greedy_variants();
    bench_profitted();
}
