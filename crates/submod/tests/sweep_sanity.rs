//! Sanity tests for the seeded-sweep property-test runner: every case
//! executes, failures report the exact offending seed, and that seed
//! reproduces the case stream.

use mqo_submod::prng::{seeded_sweep, Prng};
use std::sync::atomic::{AtomicU64, Ordering};

#[test]
fn sweep_runs_all_cases() {
    static COUNT: AtomicU64 = AtomicU64::new(0);
    seeded_sweep("counter", 123, 64, |_rng| {
        COUNT.fetch_add(1, Ordering::SeqCst);
    });
    assert_eq!(COUNT.load(Ordering::SeqCst), 64);
}

#[test]
#[should_panic(expected = "reproduce with seed")]
fn sweep_reports_offending_seed() {
    seeded_sweep("failing", 7, 64, |rng| {
        let x = rng.gen_range(0u64..100);
        assert!(x < 90, "drew {x}");
    });
}

#[test]
fn derived_rng_matches_reported_seed() {
    // The printed seed must reproduce the case's stream exactly.
    let seed = Prng::derive_seed(0xABCD, 5);
    let mut a = Prng::seed_from_u64(seed);
    let first = a.next_u64();
    let mut b = Prng::seed_from_u64(seed);
    assert_eq!(b.next_u64(), first);
}
