//! Property-based tests for the UNSM toolkit: the structural theorems of the
//! paper checked on randomized instances.

use proptest::prelude::*;

use mqo_submod::algorithms::cardinality::cardinality_marginal_greedy;
use mqo_submod::algorithms::exhaustive::exhaustive_max;
use mqo_submod::algorithms::greedy::{greedy, lazy_greedy, Config as GreedyConfig};
use mqo_submod::algorithms::lazy::lazy_marginal_greedy;
use mqo_submod::algorithms::marginal_greedy::{marginal_greedy, Config};
use mqo_submod::bitset::{all_subsets, BitSet};
use mqo_submod::bounds::theorem1_lower_bound;
use mqo_submod::decompose::Decomposition;
use mqo_submod::function::{is_monotone, is_submodular, SetFunction};
use mqo_submod::instances::random::{
    random_coverage_minus_cost, random_cut_minus_cost, CoverageParams,
};

/// Strategy: a seeded coverage-minus-cost instance with n in [4, 10].
fn instance_params() -> impl Strategy<Value = (usize, usize, f64, f64, u64)> {
    (
        4usize..=10,          // n_sets
        5usize..=16,          // n_items
        0.15f64..0.6,         // density
        0.4f64..2.0,          // cost scale
        any::<u64>(),         // seed
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Proposition 1: f = f*_M − c* exactly, on every subset.
    #[test]
    fn prop_decomposition_identity((n_sets, n_items, density, scale, seed) in instance_params()) {
        let f = random_coverage_minus_cost(
            CoverageParams { n_sets, n_items, density, ..Default::default() },
            scale,
            seed,
        );
        let d = Decomposition::canonical(&f);
        for s in all_subsets(n_sets) {
            let recomposed = d.monotone_value(&f, &s) - d.cost_of(&s);
            prop_assert!((recomposed - f.eval(&s)).abs() < 1e-9);
        }
    }

    /// Proposition 1: the canonical monotone part is monotone and submodular.
    #[test]
    fn prop_canonical_monotone_part((n_sets, n_items, density, scale, seed) in instance_params()) {
        let f = random_coverage_minus_cost(
            CoverageParams { n_sets, n_items, density, ..Default::default() },
            scale,
            seed,
        );
        let d = Decomposition::canonical(&f);
        let fm = d.monotone_part(&f);
        prop_assert!(is_monotone(&fm));
        prop_assert!(is_submodular(&fm));
    }

    /// Proposition 2: the improvement procedure fixes the canonical
    /// decomposition.
    #[test]
    fn prop_improvement_fixpoint((n_sets, n_items, density, scale, seed) in instance_params()) {
        let f = random_coverage_minus_cost(
            CoverageParams { n_sets, n_items, density, ..Default::default() },
            scale,
            seed,
        );
        let d = Decomposition::canonical(&f);
        let improved = d.improve(&f);
        for e in 0..n_sets {
            prop_assert!((d.cost(e) - improved.cost(e)).abs() < 1e-9);
        }
    }

    /// Theorem 1 on submodular instances: MarginalGreedy with the canonical
    /// decomposition meets its guarantee relative to the exhaustive optimum.
    #[test]
    fn prop_theorem1_bound((n_sets, n_items, density, scale, seed) in instance_params()) {
        let f = random_coverage_minus_cost(
            CoverageParams { n_sets, n_items, density, ..Default::default() },
            scale,
            seed,
        );
        let d = Decomposition::canonical(&f);
        let full = BitSet::full(n_sets);
        let out = marginal_greedy(&f, &d, &full, Config::default());
        let (opt_set, opt_val) = exhaustive_max(&f, &full);
        // Theorem 1 is stated under the paper's convention that the additive
        // part is positive everywhere except ∅ (remark after Proposition 1);
        // skip optima containing non-positively-priced elements.
        prop_assume!(opt_set.iter().all(|e| d.cost(e) > 0.0));
        let bound = theorem1_lower_bound(opt_val, d.cost_of(&opt_set));
        prop_assert!(
            out.value >= bound - 1e-7,
            "value {} < bound {} (opt {})", out.value, bound, opt_val
        );
    }

    /// Lazy and eager MarginalGreedy agree, and lazy never does more work.
    #[test]
    fn prop_lazy_marginal_equals_eager((n_sets, n_items, density, scale, seed) in instance_params()) {
        let f = random_coverage_minus_cost(
            CoverageParams { n_sets, n_items, density, ..Default::default() },
            scale,
            seed,
        );
        let d = Decomposition::canonical(&f);
        let full = BitSet::full(n_sets);
        let eager = marginal_greedy(&f, &d, &full, Config::default());
        let lazy = lazy_marginal_greedy(&f, &d, &full, Config::default());
        prop_assert_eq!(&eager.set, &lazy.set);
        prop_assert!(lazy.evaluations <= eager.evaluations);
    }

    /// Lazy and eager Greedy (Algorithm 1) agree on submodular instances.
    #[test]
    fn prop_lazy_greedy_equals_eager((n_sets, n_items, density, scale, seed) in instance_params()) {
        let f = random_coverage_minus_cost(
            CoverageParams { n_sets, n_items, density, ..Default::default() },
            scale,
            seed,
        );
        let full = BitSet::full(n_sets);
        let eager = greedy(&f, &full, GreedyConfig::default());
        let lazy = lazy_greedy(&f, &full, GreedyConfig::default());
        prop_assert_eq!(&eager.set, &lazy.set);
        prop_assert!(lazy.evaluations <= eager.evaluations);
    }

    /// Theorem 4: cardinality-constrained MarginalGreedy returns the same
    /// answer with and without universe reduction.
    #[test]
    fn prop_theorem4_reduction_same_answer(
        (n_sets, n_items, density, scale, seed) in instance_params(),
        k in 1usize..=5,
    ) {
        let f = random_coverage_minus_cost(
            CoverageParams { n_sets, n_items, density, ..Default::default() },
            scale,
            seed,
        );
        let d = Decomposition::canonical(&f);
        let full = BitSet::full(n_sets);
        let with = cardinality_marginal_greedy(&f, &d, &full, k, true);
        let without = cardinality_marginal_greedy(&f, &d, &full, k, false);
        prop_assert_eq!(with.set, without.set);
    }

    /// Normalization invariant: every algorithm returns f(X) >= 0 on
    /// normalized inputs (each accepted step strictly improves).
    #[test]
    fn prop_outputs_nonnegative((n_sets, n_items, density, scale, seed) in instance_params()) {
        let f = random_coverage_minus_cost(
            CoverageParams { n_sets, n_items, density, ..Default::default() },
            scale,
            seed,
        );
        let d = Decomposition::canonical(&f);
        let full = BitSet::full(n_sets);
        prop_assert!(marginal_greedy(&f, &d, &full, Config::default()).value >= -1e-9);
        prop_assert!(greedy(&f, &full, GreedyConfig::default()).value >= -1e-9);
    }

    /// Cut-minus-cost instances (non-monotone, often negative): lazy ≡ eager
    /// and the Theorem 1 bound holds.
    #[test]
    fn prop_cuts_bound_and_lazy(n in 5usize..=9, p in 0.2f64..0.7, seed in any::<u64>()) {
        let f = random_cut_minus_cost(n, p, seed);
        let d = Decomposition::canonical(&f);
        let full = BitSet::full(n);
        let eager = marginal_greedy(&f, &d, &full, Config::default());
        let lazy = lazy_marginal_greedy(&f, &d, &full, Config::default());
        prop_assert_eq!(&eager.set, &lazy.set);
        let (opt_set, opt_val) = exhaustive_max(&f, &full);
        prop_assume!(opt_set.iter().all(|e| d.cost(e) > 0.0));
        let bound = theorem1_lower_bound(opt_val, d.cost_of(&opt_set));
        prop_assert!(eager.value >= bound - 1e-7);
    }

    /// BitSet sanity under random element sequences.
    #[test]
    fn prop_bitset_roundtrip(elems in proptest::collection::vec(0usize..64, 0..32)) {
        let s = BitSet::from_iter(64, elems.iter().copied());
        let mut sorted: Vec<usize> = elems.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let collected: Vec<usize> = s.iter().collect();
        prop_assert_eq!(collected, sorted);
        prop_assert_eq!(s.complement().complement(), s);
    }
}
