//! Property-based tests for the UNSM toolkit: the structural theorems of the
//! paper checked on randomized instances.
//!
//! The build is offline, so instead of proptest these run as deterministic
//! seeded sweeps: each property draws its inputs from a [`Prng`] seeded per
//! case, and a failing case panics with the exact seed to reproduce it.

use mqo_submod::algorithms::cardinality::cardinality_marginal_greedy;
use mqo_submod::algorithms::exhaustive::exhaustive_max;
use mqo_submod::algorithms::greedy::{greedy, lazy_greedy, Config as GreedyConfig};
use mqo_submod::algorithms::lazy::lazy_marginal_greedy;
use mqo_submod::algorithms::marginal_greedy::{marginal_greedy, Config};
use mqo_submod::bitset::{all_subsets, BitSet};
use mqo_submod::bounds::theorem1_lower_bound;
use mqo_submod::decompose::Decomposition;
use mqo_submod::function::{is_monotone, is_submodular, SetFunction};
use mqo_submod::instances::random::{
    random_coverage_minus_cost, random_cut_minus_cost, CoverageMinusCost, CoverageParams,
};
use mqo_submod::prng::{seeded_sweep, Prng};

use std::sync::atomic::{AtomicU64, Ordering};

const CASES: u64 = 64;
const SWEEP_SEED: u64 = 0x5EED_0001;

/// A seeded coverage-minus-cost instance with n_sets in [4, 10] — the
/// proptest strategy of the original suite, drawn from the case's PRNG.
fn draw_instance(rng: &mut Prng) -> (usize, CoverageMinusCost) {
    let n_sets = rng.gen_range(4usize..=10);
    let n_items = rng.gen_range(5usize..=16);
    let density = rng.gen_range(0.15f64..0.6);
    let scale = rng.gen_range(0.4f64..2.0);
    let seed = rng.next_u64();
    let f = random_coverage_minus_cost(
        CoverageParams {
            n_sets,
            n_items,
            density,
            ..Default::default()
        },
        scale,
        seed,
    );
    (n_sets, f)
}

/// Proposition 1: f = f*_M − c* exactly, on every subset.
#[test]
fn prop_decomposition_identity() {
    seeded_sweep("decomposition_identity", SWEEP_SEED, CASES, |rng| {
        let (n_sets, f) = draw_instance(rng);
        let d = Decomposition::canonical(&f);
        for s in all_subsets(n_sets) {
            let recomposed = d.monotone_value(&f, &s) - d.cost_of(&s);
            assert!(
                (recomposed - f.eval(&s)).abs() < 1e-9,
                "recomposed {recomposed} != f {} on {s:?}",
                f.eval(&s)
            );
        }
    });
}

/// Proposition 1: the canonical monotone part is monotone and submodular.
#[test]
fn prop_canonical_monotone_part() {
    seeded_sweep("canonical_monotone_part", SWEEP_SEED + 1, CASES, |rng| {
        let (_, f) = draw_instance(rng);
        let d = Decomposition::canonical(&f);
        let fm = d.monotone_part(&f);
        assert!(is_monotone(&fm), "canonical monotone part not monotone");
        assert!(is_submodular(&fm), "canonical monotone part not submodular");
    });
}

/// Proposition 2: the improvement procedure fixes the canonical
/// decomposition.
#[test]
fn prop_improvement_fixpoint() {
    seeded_sweep("improvement_fixpoint", SWEEP_SEED + 2, CASES, |rng| {
        let (n_sets, f) = draw_instance(rng);
        let d = Decomposition::canonical(&f);
        let improved = d.improve(&f);
        for e in 0..n_sets {
            assert!(
                (d.cost(e) - improved.cost(e)).abs() < 1e-9,
                "element {e}: cost moved {} -> {}",
                d.cost(e),
                improved.cost(e)
            );
        }
    });
}

/// Theorem 1 on submodular instances: MarginalGreedy with the canonical
/// decomposition meets its guarantee relative to the exhaustive optimum.
#[test]
fn prop_theorem1_bound() {
    let effective = AtomicU64::new(0);
    seeded_sweep("theorem1_bound", SWEEP_SEED + 3, CASES, |rng| {
        let (n_sets, f) = draw_instance(rng);
        let d = Decomposition::canonical(&f);
        let full = BitSet::full(n_sets);
        let out = marginal_greedy(&f, &d, &full, Config::default());
        let (opt_set, opt_val) = exhaustive_max(&f, &full);
        // Theorem 1 is stated under the paper's convention that the additive
        // part is positive everywhere except ∅ (remark after Proposition 1);
        // skip optima containing non-positively-priced elements.
        if !opt_set.iter().all(|e| d.cost(e) > 0.0) {
            return;
        }
        effective.fetch_add(1, Ordering::Relaxed);
        let bound = theorem1_lower_bound(opt_val, d.cost_of(&opt_set));
        assert!(
            out.value >= bound - 1e-7,
            "value {} < bound {} (opt {})",
            out.value,
            bound,
            opt_val
        );
    });
    // Guard against the skip path silently eating the sweep (proptest
    // errored on excessive discards; this is the equivalent floor).
    let eff = effective.load(Ordering::Relaxed);
    assert!(
        eff >= CASES / 4,
        "only {eff}/{CASES} cases checked the bound"
    );
}

/// Lazy and eager MarginalGreedy agree, and lazy never does more work.
#[test]
fn prop_lazy_marginal_equals_eager() {
    seeded_sweep("lazy_marginal_equals_eager", SWEEP_SEED + 4, CASES, |rng| {
        let (n_sets, f) = draw_instance(rng);
        let d = Decomposition::canonical(&f);
        let full = BitSet::full(n_sets);
        let eager = marginal_greedy(&f, &d, &full, Config::default());
        let lazy = lazy_marginal_greedy(&f, &d, &full, Config::default());
        assert_eq!(eager.set, lazy.set);
        assert!(
            lazy.evaluations <= eager.evaluations,
            "lazy did more work: {} > {}",
            lazy.evaluations,
            eager.evaluations
        );
    });
}

/// Lazy and eager Greedy (Algorithm 1) agree on submodular instances.
#[test]
fn prop_lazy_greedy_equals_eager() {
    seeded_sweep("lazy_greedy_equals_eager", SWEEP_SEED + 5, CASES, |rng| {
        let (n_sets, f) = draw_instance(rng);
        let full = BitSet::full(n_sets);
        let eager = greedy(&f, &full, GreedyConfig::default());
        let lazy = lazy_greedy(&f, &full, GreedyConfig::default());
        assert_eq!(eager.set, lazy.set);
        assert!(
            lazy.evaluations <= eager.evaluations,
            "lazy did more work: {} > {}",
            lazy.evaluations,
            eager.evaluations
        );
    });
}

/// Theorem 4: cardinality-constrained MarginalGreedy returns the same
/// answer with and without universe reduction.
#[test]
fn prop_theorem4_reduction_same_answer() {
    seeded_sweep("theorem4_reduction", SWEEP_SEED + 6, CASES, |rng| {
        let (n_sets, f) = draw_instance(rng);
        let k = rng.gen_range(1usize..=5);
        let d = Decomposition::canonical(&f);
        let full = BitSet::full(n_sets);
        let with = cardinality_marginal_greedy(&f, &d, &full, k, true);
        let without = cardinality_marginal_greedy(&f, &d, &full, k, false);
        assert_eq!(with.set, without.set, "k = {k}");
    });
}

/// Normalization invariant: every algorithm returns f(X) >= 0 on
/// normalized inputs (each accepted step strictly improves).
#[test]
fn prop_outputs_nonnegative() {
    seeded_sweep("outputs_nonnegative", SWEEP_SEED + 7, CASES, |rng| {
        let (n_sets, f) = draw_instance(rng);
        let d = Decomposition::canonical(&f);
        let full = BitSet::full(n_sets);
        let mg = marginal_greedy(&f, &d, &full, Config::default()).value;
        assert!(mg >= -1e-9, "marginal_greedy value {mg} < 0");
        let g = greedy(&f, &full, GreedyConfig::default()).value;
        assert!(g >= -1e-9, "greedy value {g} < 0");
    });
}

/// Cut-minus-cost instances (non-monotone, often negative): lazy ≡ eager
/// and the Theorem 1 bound holds.
#[test]
fn prop_cuts_bound_and_lazy() {
    let effective = AtomicU64::new(0);
    seeded_sweep("cuts_bound_and_lazy", SWEEP_SEED + 8, CASES, |rng| {
        let n = rng.gen_range(5usize..=9);
        let p = rng.gen_range(0.2f64..0.7);
        let seed = rng.next_u64();
        let f = random_cut_minus_cost(n, p, seed);
        let d = Decomposition::canonical(&f);
        let full = BitSet::full(n);
        let eager = marginal_greedy(&f, &d, &full, Config::default());
        let lazy = lazy_marginal_greedy(&f, &d, &full, Config::default());
        assert_eq!(eager.set, lazy.set);
        let (opt_set, opt_val) = exhaustive_max(&f, &full);
        if !opt_set.iter().all(|e| d.cost(e) > 0.0) {
            return;
        }
        effective.fetch_add(1, Ordering::Relaxed);
        let bound = theorem1_lower_bound(opt_val, d.cost_of(&opt_set));
        assert!(
            eager.value >= bound - 1e-7,
            "value {} < bound {bound} (opt {opt_val})",
            eager.value
        );
    });
    let eff = effective.load(Ordering::Relaxed);
    assert!(
        eff >= CASES / 4,
        "only {eff}/{CASES} cases checked the bound"
    );
}

/// BitSet sanity under random element sequences.
#[test]
fn prop_bitset_roundtrip() {
    seeded_sweep("bitset_roundtrip", SWEEP_SEED + 9, CASES, |rng| {
        let len = rng.gen_range(0usize..32);
        let elems: Vec<usize> = (0..len).map(|_| rng.gen_range(0usize..64)).collect();
        let s = BitSet::from_iter(64, elems.iter().copied());
        let mut sorted: Vec<usize> = elems.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let collected: Vec<usize> = s.iter().collect();
        assert_eq!(collected, sorted);
        assert_eq!(s.complement().complement(), s);
    });
}
