//! The Theorem 1 approximation factor and its hardness counterpart.
//!
//! Theorem 1: MarginalGreedy's output `X` satisfies
//! `f(X) >= [1 − (c(Θ)/f(Θ)) · ln(1 + f(Θ)/c(Θ))] · f(Θ)` where `Θ` is an
//! optimal solution and `c` the additive part of the decomposition in use.
//!
//! Theorem 2 shows the same factor (with `γ = f(Θ)/c*(Θ)`) is NP-hard to
//! beat, so under the canonical decomposition the algorithm is optimal.

/// The Theorem 1 factor `1 − (1/γ)·ln(1 + γ)` where `γ = f(Θ)/c(Θ)`.
///
/// Limits: as `γ → 0⁺` the factor tends to 0 (hardness rules out constant
/// factors); as `γ → ∞` it tends to 1. Returns 0 for non-positive `γ` (the
/// guarantee is vacuous when the optimum's benefit does not exceed zero) and
/// handles small `γ` via a series expansion for numerical stability.
pub fn theorem1_factor_gamma(gamma: f64) -> f64 {
    if !gamma.is_finite() {
        return if gamma > 0.0 { 1.0 } else { 0.0 };
    }
    if gamma <= 0.0 {
        return 0.0;
    }
    if gamma < 1e-4 {
        // ln(1+γ)/γ = 1 − γ/2 + γ²/3 − ... so the factor is γ/2 − γ²/3 + ...
        return gamma / 2.0 - gamma * gamma / 3.0;
    }
    1.0 - (1.0 + gamma).ln() / gamma
}

/// The Theorem 1 factor expressed with the values at optimum:
/// `1 − (c_opt/f_opt)·ln(1 + f_opt/c_opt)`.
///
/// `f_opt` must be the (non-negative) optimal value of the normalized
/// function and `c_opt` the additive cost of the optimal set. If `c_opt <= 0`
/// the factor degenerates to 1 (the greedy's final phase adds all
/// non-positively-priced elements for free).
pub fn theorem1_factor(f_opt: f64, c_opt: f64) -> f64 {
    if f_opt <= 0.0 {
        // Guarantee is vacuous: any normalized output achieves f >= 0.
        return 0.0;
    }
    if c_opt <= 0.0 {
        return 1.0;
    }
    theorem1_factor_gamma(f_opt / c_opt)
}

/// The guaranteed lower bound on the greedy's value: `factor × f_opt`.
pub fn theorem1_lower_bound(f_opt: f64, c_opt: f64) -> f64 {
    theorem1_factor(f_opt, c_opt) * f_opt
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_is_monotone_in_gamma() {
        let mut prev = 0.0;
        for i in 1..200 {
            let gamma = i as f64 * 0.25;
            let f = theorem1_factor_gamma(gamma);
            assert!(f >= prev, "factor must increase with γ (γ={gamma})");
            assert!((0.0..=1.0).contains(&f));
            prev = f;
        }
    }

    #[test]
    fn known_values() {
        // γ = e − 1 gives 1 − 1/(e−1) ≈ 0.4180.
        let g = std::f64::consts::E - 1.0;
        assert!((theorem1_factor_gamma(g) - (1.0 - 1.0 / g)).abs() < 1e-12);
        // γ = 1: 1 − ln 2 ≈ 0.3069.
        assert!((theorem1_factor_gamma(1.0) - (1.0 - std::f64::consts::LN_2)).abs() < 1e-12);
    }

    #[test]
    fn small_gamma_series_is_continuous() {
        // The series branch and the direct branch must agree near the cutoff.
        let at_cutoff = theorem1_factor_gamma(1e-4);
        let just_above = 1.0 - (1.0f64 + 1.0001e-4).ln() / 1.0001e-4;
        assert!((at_cutoff - just_above).abs() < 1e-8);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(theorem1_factor(0.0, 5.0), 0.0);
        assert_eq!(theorem1_factor(-1.0, 5.0), 0.0);
        assert_eq!(theorem1_factor(3.0, 0.0), 1.0);
        assert_eq!(theorem1_factor(3.0, -2.0), 1.0);
        assert_eq!(theorem1_factor_gamma(f64::INFINITY), 1.0);
        assert_eq!(theorem1_factor_gamma(f64::NAN), 0.0);
    }

    #[test]
    fn lower_bound_scales() {
        let lb = theorem1_lower_bound(10.0, 10.0);
        assert!((lb - 10.0 * (1.0 - std::f64::consts::LN_2)).abs() < 1e-9);
    }
}
