//! Seeded random instance generators for tests and benches.
//!
//! Every generator takes an explicit seed so property tests and benches are
//! reproducible.

use crate::instances::coverage::WeightedCoverage;
use crate::instances::cut::{CutFunction, CutMinusCost};
use crate::instances::profitted::ProfittedMaxCoverage;
use crate::prng::Prng;

/// Parameters for random coverage-minus-cost instances.
#[derive(Clone, Copy, Debug)]
pub struct CoverageParams {
    /// Number of universe elements (sets).
    pub n_sets: usize,
    /// Number of ground items.
    pub n_items: usize,
    /// Probability that a set covers each item.
    pub density: f64,
    /// Item weights drawn uniformly from this range.
    pub weight_range: (f64, f64),
}

impl Default for CoverageParams {
    fn default() -> Self {
        CoverageParams {
            n_sets: 8,
            n_items: 20,
            density: 0.3,
            weight_range: (0.5, 2.0),
        }
    }
}

/// A random weighted coverage function (monotone, submodular, normalized).
pub fn random_coverage(params: CoverageParams, seed: u64) -> WeightedCoverage {
    let mut rng = Prng::seed_from_u64(seed);
    let sets = (0..params.n_sets)
        .map(|_| {
            (0..params.n_items)
                .filter(|_| rng.gen_bool(params.density))
                .collect()
        })
        .collect();
    let (lo, hi) = params.weight_range;
    let weights = (0..params.n_items).map(|_| rng.gen_range(lo..hi)).collect();
    WeightedCoverage::new(params.n_items, sets, weights)
}

/// A random coverage function paired with element costs, packaged as the
/// normalized (generally non-monotone) difference `coverage(S) − cost(S)`.
///
/// The cost scale controls how deep into negative territory the function
/// goes; `cost_scale` around 1.0 produces instances where roughly half the
/// elements are individually unprofitable.
pub struct CoverageMinusCost {
    coverage: WeightedCoverage,
    costs: Vec<f64>,
}

impl CoverageMinusCost {
    /// The per-element additive costs.
    pub fn costs(&self) -> &[f64] {
        &self.costs
    }

    /// The underlying coverage function.
    pub fn coverage(&self) -> &WeightedCoverage {
        &self.coverage
    }
}

impl crate::function::SetFunction for CoverageMinusCost {
    fn universe(&self) -> usize {
        self.coverage.universe()
    }
    fn eval(&self, set: &crate::bitset::BitSet) -> f64 {
        self.coverage.eval(set) - set.iter().map(|e| self.costs[e]).sum::<f64>()
    }
    fn marginal(&self, e: usize, set: &crate::bitset::BitSet) -> f64 {
        self.coverage.marginal(e, set) - self.costs[e]
    }
}

/// Generates a random [`CoverageMinusCost`] instance.
pub fn random_coverage_minus_cost(
    params: CoverageParams,
    cost_scale: f64,
    seed: u64,
) -> CoverageMinusCost {
    let coverage = random_coverage(params, seed);
    let mut rng = Prng::seed_from_u64(seed.wrapping_add(0x9E3779B97F4A7C15));
    // Mean marginal weight of a set is density * n_items * mean_weight; scale
    // costs relative to that so instances straddle profitability.
    let mean_w = (params.weight_range.0 + params.weight_range.1) / 2.0;
    let base = params.density * params.n_items as f64 * mean_w;
    let costs = (0..params.n_sets)
        .map(|_| rng.gen_range(0.1..1.0) * base * cost_scale)
        .collect();
    CoverageMinusCost { coverage, costs }
}

/// A random Erdős–Rényi cut-minus-cost instance.
pub fn random_cut_minus_cost(n: usize, edge_prob: f64, seed: u64) -> CutMinusCost {
    let mut rng = Prng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(edge_prob) {
                edges.push((u, v, rng.gen_range(0.5..3.0)));
            }
        }
    }
    let costs = (0..n).map(|_| rng.gen_range(0.0..2.0)).collect();
    CutFunction::new(n, &edges).with_vertex_costs(costs)
}

/// A random Profitted Max Coverage instance with a planted covering
/// collection (optimal value 1 by the completeness argument).
pub fn random_profitted(
    blocks: usize,
    block_size: usize,
    redundant: usize,
    gamma: f64,
) -> ProfittedMaxCoverage {
    ProfittedMaxCoverage::hard_instance(blocks, block_size, redundant, gamma)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::{is_normalized, is_submodular, SetFunction};

    #[test]
    fn random_coverage_is_deterministic_per_seed() {
        let a = random_coverage(CoverageParams::default(), 42);
        let b = random_coverage(CoverageParams::default(), 42);
        let s = crate::bitset::BitSet::from_iter(8, [0, 3, 5]);
        assert_eq!(a.eval(&s), b.eval(&s));
        let c = random_coverage(CoverageParams::default(), 43);
        // Overwhelmingly likely to differ.
        let full = crate::bitset::BitSet::full(8);
        assert_ne!(a.eval(&full), c.eval(&full));
    }

    #[test]
    fn coverage_minus_cost_is_normalized_submodular() {
        for seed in 0..5 {
            let params = CoverageParams {
                n_sets: 7,
                n_items: 12,
                ..Default::default()
            };
            let f = random_coverage_minus_cost(params, 1.0, seed);
            assert!(is_normalized(&f));
            assert!(is_submodular(&f));
        }
    }

    #[test]
    fn cut_minus_cost_random_is_submodular() {
        for seed in 0..5 {
            let f = random_cut_minus_cost(7, 0.5, seed);
            assert!(is_normalized(&f));
            assert!(is_submodular(&f));
        }
    }
}
