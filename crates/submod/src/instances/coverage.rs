//! Weighted coverage functions.
//!
//! The coverage function `f(A) = |⋃_{S∈A} S|` is the canonical monotone
//! submodular function; the paper's hardness reduction (Section 4) is built
//! on Max Coverage instances. [`WeightedCoverage`] generalizes to weighted
//! ground elements.

use crate::bitset::BitSet;
use crate::function::SetFunction;

/// A weighted coverage function over a ground set of *items*; universe
/// elements are *subsets* of items, and `f(A)` is the total weight of items
/// covered by the chosen subsets.
#[derive(Clone, Debug)]
pub struct WeightedCoverage {
    /// Per-universe-element membership bitmaps over items.
    sets: Vec<BitSet>,
    /// Per-item weights.
    weights: Vec<f64>,
    n_items: usize,
}

impl WeightedCoverage {
    /// `n_items` ground items, `sets[j]` listing the items covered by
    /// universe element `j`, and per-item `weights`.
    ///
    /// Panics if a set references an item out of range or if
    /// `weights.len() != n_items`.
    pub fn new(n_items: usize, sets: Vec<Vec<usize>>, weights: Vec<f64>) -> Self {
        assert_eq!(weights.len(), n_items, "one weight per item required");
        let bitmaps = sets
            .into_iter()
            .map(|items| BitSet::from_iter(n_items, items))
            .collect();
        WeightedCoverage {
            sets: bitmaps,
            weights,
            n_items,
        }
    }

    /// Unit-weight coverage.
    pub fn unweighted(n_items: usize, sets: Vec<Vec<usize>>) -> Self {
        let weights = vec![1.0; n_items];
        Self::new(n_items, sets, weights)
    }

    /// Number of ground items.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// The items covered by choosing the universe elements in `chosen`.
    pub fn covered(&self, chosen: &BitSet) -> BitSet {
        let mut covered = BitSet::empty(self.n_items);
        for j in chosen.iter() {
            covered.union_with(&self.sets[j]);
        }
        covered
    }

    /// Items covered by a single universe element.
    pub fn set(&self, j: usize) -> &BitSet {
        &self.sets[j]
    }
}

impl SetFunction for WeightedCoverage {
    fn universe(&self) -> usize {
        self.sets.len()
    }

    fn eval(&self, chosen: &BitSet) -> f64 {
        self.covered(chosen).iter().map(|i| self.weights[i]).sum()
    }

    fn marginal(&self, e: usize, chosen: &BitSet) -> f64 {
        let covered = self.covered(chosen);
        self.sets[e]
            .difference(&covered)
            .iter()
            .map(|i| self.weights[i])
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::{is_monotone, is_normalized, is_submodular};

    fn sample() -> WeightedCoverage {
        WeightedCoverage::unweighted(
            6,
            vec![vec![0, 1, 2], vec![2, 3], vec![3, 4, 5], vec![0, 5]],
        )
    }

    #[test]
    fn eval_counts_union() {
        let f = sample();
        assert_eq!(f.eval(&BitSet::from_iter(4, [0])), 3.0);
        assert_eq!(f.eval(&BitSet::from_iter(4, [0, 1])), 4.0);
        assert_eq!(f.eval(&BitSet::from_iter(4, [0, 1, 2])), 6.0);
        assert_eq!(f.eval(&BitSet::full(4)), 6.0);
    }

    #[test]
    fn structural_properties() {
        let f = sample();
        assert!(is_submodular(&f));
        assert!(is_monotone(&f));
        assert!(is_normalized(&f));
    }

    #[test]
    fn marginal_matches_default() {
        let f = sample();
        for s in crate::bitset::all_subsets(4) {
            for e in 0..4 {
                if !s.contains(e) {
                    let fast = f.marginal(e, &s);
                    let slow = f.eval(&s.with(e)) - f.eval(&s);
                    assert!((fast - slow).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn weighted_items() {
        let f = WeightedCoverage::new(3, vec![vec![0], vec![1, 2]], vec![5.0, 1.0, 2.0]);
        assert_eq!(f.eval(&BitSet::from_iter(2, [0])), 5.0);
        assert_eq!(f.eval(&BitSet::from_iter(2, [1])), 3.0);
        assert_eq!(f.eval(&BitSet::full(2)), 8.0);
    }
}
