//! Instance families: the functions the algorithms are exercised on.

pub mod coverage;
pub mod cut;
pub mod profitted;
pub mod random;
