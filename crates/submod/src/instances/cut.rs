//! Graph cut functions — the classic *non-monotone* submodular family.
//!
//! `f(S) = Σ w(u,v)` over edges with exactly one endpoint in `S`. Cut
//! functions are normalized and symmetric but not monotone, which makes them
//! a good adversarial family for UNSM algorithms (the paper's setting allows
//! `f` to take negative values once an additive cost is subtracted).

use crate::bitset::BitSet;
use crate::function::SetFunction;

/// An undirected weighted graph whose cut function is exposed as a
/// [`SetFunction`] over vertices.
#[derive(Clone, Debug)]
pub struct CutFunction {
    n: usize,
    /// Adjacency: for each vertex, (neighbor, weight).
    adj: Vec<Vec<(usize, f64)>>,
}

impl CutFunction {
    /// Builds a cut function over `n` vertices from weighted edges.
    /// Self-loops are rejected; parallel edges accumulate.
    pub fn new(n: usize, edges: &[(usize, usize, f64)]) -> Self {
        let mut adj = vec![Vec::new(); n];
        for &(u, v, w) in edges {
            assert!(u < n && v < n, "edge endpoint out of range");
            assert_ne!(u, v, "self-loops contribute nothing to a cut");
            adj[u].push((v, w));
            adj[v].push((u, w));
        }
        CutFunction { n, adj }
    }

    /// Cut minus an additive vertex cost: `f(S) = cut(S) − Σ_{v∈S} cost[v]`.
    /// Normalized and submodular, generally non-monotone and possibly
    /// negative — exactly the UNSM setting.
    pub fn with_vertex_costs(self, costs: Vec<f64>) -> CutMinusCost {
        assert_eq!(costs.len(), self.n);
        CutMinusCost { cut: self, costs }
    }
}

impl SetFunction for CutFunction {
    fn universe(&self) -> usize {
        self.n
    }

    fn eval(&self, set: &BitSet) -> f64 {
        let mut total = 0.0;
        for u in set.iter() {
            for &(v, w) in &self.adj[u] {
                if !set.contains(v) {
                    total += w;
                }
            }
        }
        total
    }

    fn marginal(&self, e: usize, set: &BitSet) -> f64 {
        // Adding e: edges from e to outside get cut, edges from e into S stop
        // being cut.
        let mut delta = 0.0;
        for &(v, w) in &self.adj[e] {
            if set.contains(v) {
                delta -= w;
            } else {
                delta += w;
            }
        }
        delta
    }
}

/// `cut(S) − Σ_{v∈S} cost(v)`: a non-monotone normalized submodular function
/// with possibly negative values.
#[derive(Clone, Debug)]
pub struct CutMinusCost {
    cut: CutFunction,
    costs: Vec<f64>,
}

impl SetFunction for CutMinusCost {
    fn universe(&self) -> usize {
        self.cut.universe()
    }

    fn eval(&self, set: &BitSet) -> f64 {
        self.cut.eval(set) - set.iter().map(|v| self.costs[v]).sum::<f64>()
    }

    fn marginal(&self, e: usize, set: &BitSet) -> f64 {
        self.cut.marginal(e, set) - self.costs[e]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::{is_normalized, is_submodular};

    fn triangle() -> CutFunction {
        CutFunction::new(3, &[(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)])
    }

    #[test]
    fn cut_values() {
        let f = triangle();
        assert_eq!(f.eval(&BitSet::empty(3)), 0.0);
        assert_eq!(f.eval(&BitSet::from_iter(3, [0])), 4.0);
        assert_eq!(f.eval(&BitSet::from_iter(3, [1])), 3.0);
        assert_eq!(f.eval(&BitSet::from_iter(3, [0, 1])), 5.0);
        assert_eq!(f.eval(&BitSet::full(3)), 0.0);
    }

    #[test]
    fn cut_is_submodular_not_monotone() {
        let f = triangle();
        assert!(is_submodular(&f));
        assert!(is_normalized(&f));
        assert!(!crate::function::is_monotone(&f));
    }

    #[test]
    fn marginal_matches_eval_difference() {
        let f = triangle();
        for s in crate::bitset::all_subsets(3) {
            for e in 0..3 {
                if !s.contains(e) {
                    let fast = f.marginal(e, &s);
                    let slow = f.eval(&s.with(e)) - f.eval(&s);
                    assert!((fast - slow).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn cut_minus_cost_takes_negative_values() {
        let f = triangle().with_vertex_costs(vec![10.0, 10.0, 10.0]);
        assert!(f.eval(&BitSet::from_iter(3, [0])) < 0.0);
        assert!(is_submodular(&f));
        assert!(is_normalized(&f));
    }
}
