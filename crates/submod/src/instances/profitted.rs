//! The Profitted Max Coverage problem (Problem 1 in the paper).
//!
//! Given a Max Coverage instance `(X, S, l)` and a constant `γ`, maximize
//!
//! ```text
//! f(A) = (γ+1)/γ · |⋃_{S∈A} S| / n  −  1/γ · |A| / l
//! ```
//!
//! This is the family on which the Theorem 2 hardness is proved: instances
//! whose Max Coverage optimum covers the whole ground set with `l` sets have
//! `f(Θ) = 1` and `f(Θ)/c(Θ) = γ`, matching the Theorem 1 factor. It also
//! makes an excellent stress workload for the algorithms, so it doubles here
//! as a test/bench instance family.

use crate::bitset::BitSet;
use crate::function::SetFunction;
use crate::instances::coverage::WeightedCoverage;

/// A Profitted Max Coverage instance.
#[derive(Clone, Debug)]
pub struct ProfittedMaxCoverage {
    coverage: WeightedCoverage,
    /// Coverage budget `l` of the underlying Max Coverage instance.
    budget: usize,
    /// The constant `γ`.
    gamma: f64,
}

impl ProfittedMaxCoverage {
    /// Builds the instance from ground items, sets, budget `l`, and `γ`.
    pub fn new(n_items: usize, sets: Vec<Vec<usize>>, budget: usize, gamma: f64) -> Self {
        assert!(budget >= 1, "budget l must be at least 1");
        assert!(gamma > 0.0, "γ must be positive");
        assert!(n_items >= 1, "ground set must be non-empty");
        ProfittedMaxCoverage {
            coverage: WeightedCoverage::unweighted(n_items, sets),
            budget,
            gamma,
        }
    }

    /// The constant `γ`.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The coverage budget `l`.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// The underlying coverage structure.
    pub fn coverage(&self) -> &WeightedCoverage {
        &self.coverage
    }

    /// `f_M(A) = (γ+1)/γ · |⋃ A| / n` — the monotone part as defined in
    /// Problem 1.
    pub fn monotone_part(&self, chosen: &BitSet) -> f64 {
        let n = self.coverage.n_items() as f64;
        (self.gamma + 1.0) / self.gamma * self.coverage.eval(chosen) / n
    }

    /// `c(A) = (1/γ) · |A| / l` — the additive part as defined in Problem 1.
    pub fn cost_part(&self, chosen: &BitSet) -> f64 {
        chosen.len() as f64 / (self.gamma * self.budget as f64)
    }

    /// Per-element cost `c({e}) = 1/(γ·l)` (uniform).
    pub fn element_cost(&self) -> f64 {
        1.0 / (self.gamma * self.budget as f64)
    }

    /// A "hard-style" instance: `k` disjoint blocks each fully covered by one
    /// of `l = k` "good" sets, plus `redundant` overlapping decoy sets per
    /// block. Every item is covered by multiple sets (the property the
    /// soundness argument of Theorem 2 uses to show `c*(Θ) = c(Θ)`).
    pub fn hard_instance(blocks: usize, block_size: usize, redundant: usize, gamma: f64) -> Self {
        assert!(blocks >= 1 && block_size >= 2);
        let n_items = blocks * block_size;
        let mut sets = Vec::with_capacity(blocks * (1 + redundant));
        for b in 0..blocks {
            let items: Vec<usize> = (b * block_size..(b + 1) * block_size).collect();
            // The good set covering the whole block.
            sets.push(items.clone());
            // Decoys: each covers the block minus one item plus one item of
            // the next block, so no item is uniquely covered.
            for r in 0..redundant {
                let mut decoy: Vec<usize> = items
                    .iter()
                    .copied()
                    .filter(|&i| i % block_size != r % block_size)
                    .collect();
                decoy.push(((b + 1) % blocks) * block_size + (r % block_size));
                sets.push(decoy);
            }
        }
        Self::new(n_items, sets, blocks, gamma)
    }
}

impl SetFunction for ProfittedMaxCoverage {
    fn universe(&self) -> usize {
        self.coverage.universe()
    }

    fn eval(&self, chosen: &BitSet) -> f64 {
        self.monotone_part(chosen) - self.cost_part(chosen)
    }

    fn marginal(&self, e: usize, chosen: &BitSet) -> f64 {
        let n = self.coverage.n_items() as f64;
        (self.gamma + 1.0) / self.gamma * self.coverage.marginal(e, chosen) / n
            - self.element_cost()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::{is_normalized, is_submodular};

    /// The completeness instance: l disjoint sets covering everything.
    fn complete_instance(gamma: f64) -> ProfittedMaxCoverage {
        ProfittedMaxCoverage::new(
            6,
            vec![vec![0, 1], vec![2, 3], vec![4, 5], vec![0, 2], vec![1, 4]],
            3,
            gamma,
        )
    }

    #[test]
    fn completeness_value_is_one() {
        // Choosing exactly the covering collection G gives f(G) = 1
        // (the [Completeness] step in the proof of Theorem 2).
        let inst = complete_instance(2.0);
        let g = BitSet::from_iter(5, [0, 1, 2]);
        assert!((inst.eval(&g) - 1.0).abs() < 1e-12);
        assert!((inst.eval(&g) / inst.cost_part(&g) - inst.gamma()).abs() < 1e-12);
    }

    #[test]
    fn is_normalized_and_submodular() {
        let inst = complete_instance(1.5);
        assert!(is_normalized(&inst));
        assert!(is_submodular(&inst));
    }

    #[test]
    fn too_many_sets_go_negative() {
        // Soundness: choosing more than (γ+1)·l sets forces f < 0 when they
        // add no coverage.
        let inst = ProfittedMaxCoverage::new(
            4,
            vec![
                vec![0],
                vec![0],
                vec![0],
                vec![0],
                vec![0],
                vec![0],
                vec![0],
            ],
            1,
            1.0,
        );
        let all = BitSet::full(7);
        assert!(inst.eval(&all) < 0.0);
    }

    #[test]
    fn hard_instance_shape() {
        let inst = ProfittedMaxCoverage::hard_instance(3, 4, 2, 2.0);
        assert_eq!(inst.budget(), 3);
        assert_eq!(inst.universe(), 3 * 3); // 1 good + 2 decoys per block
                                            // The three good sets cover everything with value exactly 1.
        let good = BitSet::from_iter(inst.universe(), [0, 3, 6]);
        assert!((inst.eval(&good) - 1.0).abs() < 1e-12);
        // Every item is covered by at least two sets.
        let n_items = inst.coverage().n_items();
        for item in 0..n_items {
            let mut count = 0;
            for j in 0..inst.universe() {
                if inst.coverage().set(j).contains(item) {
                    count += 1;
                }
            }
            assert!(count >= 2, "item {item} covered only {count} times");
        }
    }

    #[test]
    fn canonical_cost_matches_problem_cost_on_hard_instance() {
        // The final step of the Theorem 2 proof: on hard-style instances
        // (every item multiply covered), c*(e) = c(e) for every element,
        // because dropping any single set leaves the union intact.
        let inst = ProfittedMaxCoverage::hard_instance(3, 4, 2, 2.0);
        let d = crate::decompose::Decomposition::canonical(&inst);
        for e in 0..inst.universe() {
            assert!(
                (d.cost(e) - inst.element_cost()).abs() < 1e-12,
                "c*({e}) != c({e})"
            );
        }
    }
}
