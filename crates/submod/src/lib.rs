//! Unconstrained normalized submodular maximization (UNSM).
//!
//! This crate implements the algorithmic core of *"Efficient and Provable
//! Multi-Query Optimization"* (Kathuria & Sudarshan, PODS 2017) in its
//! abstract form: maximizing a normalized submodular function `f` (which
//! may take **negative** values) over all subsets of a ground set.
//!
//! * [`function::SetFunction`] — the oracle interface (`bc`/`mb` in the MQO
//!   setting are instances of it; see the `mqo-core` crate).
//! * [`decompose::Decomposition`] — Proposition 1's canonical decomposition
//!   `f = f*_M − c*` (and Proposition 2's improvement procedure).
//! * [`algorithms::marginal_greedy`] — Algorithm 2 (MarginalGreedy) with its
//!   Theorem 1 guarantee under the canonical decomposition.
//! * [`algorithms::lazy`] — the LazyMarginalGreedy acceleration (§5.2).
//! * [`algorithms::greedy`] — Algorithm 1, the Greedy heuristic of Roy et
//!   al. \[23], plus its LazyGreedy acceleration.
//! * [`algorithms::cardinality`] — the §5.3 cardinality-constrained variant
//!   with the Theorem 4 universe reduction.
//! * [`algorithms::double_greedy`] — Buchbinder et al.'s 1/2-approximation
//!   for the non-negative case (baseline).
//! * [`bounds`] — the Theorem 1 factor `1 − (c/f)·ln(1 + f/c)`.
//! * [`instances`] — coverage, Profitted Max Coverage (Problem 1, the
//!   hardness family of Theorem 2), graph cuts, seeded random generators.
//!
//! # Example
//!
//! ```
//! use mqo_submod::bitset::BitSet;
//! use mqo_submod::decompose::Decomposition;
//! use mqo_submod::algorithms::marginal_greedy::{marginal_greedy, Config};
//! use mqo_submod::instances::profitted::ProfittedMaxCoverage;
//!
//! let inst = ProfittedMaxCoverage::hard_instance(3, 4, 2, 2.0);
//! let decomp = Decomposition::canonical(&inst);
//! let out = marginal_greedy(&inst, &decomp, &BitSet::full(9), Config::default());
//! assert!(out.value > 0.0);
//! ```

#![forbid(unsafe_code)]

pub mod algorithms;
pub mod bitset;
pub mod bounds;
pub mod decompose;
pub mod function;
pub mod instances;
pub mod prng;

pub use bitset::BitSet;
pub use decompose::Decomposition;
pub use function::SetFunction;
