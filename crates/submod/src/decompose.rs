//! Decompositions of normalized submodular functions (Propositions 1 and 2).
//!
//! Every normalized (possibly non-monotone, possibly negative) submodular
//! function `f` can be written as `f = f_M − c` with `f_M` monotone
//! submodular and `c` additive. The *canonical* decomposition of
//! Proposition 1 uses
//!
//! ```text
//! c*(e)   = f(U \ {e}) − f(U)
//! f*_M(S) = f(S) + Σ_{e∈S} c*(e)
//! ```
//!
//! and is the decomposition under which the MarginalGreedy guarantee of
//! Theorem 1 matches the hardness of Theorem 2. Computing it takes exactly
//! `n + 1` oracle calls (for `U` and each `U \ {e}`), as noted in Section 3.

use crate::bitset::BitSet;
use crate::function::{Additive, SetFunction};

/// A decomposition `f(S) = f_M(S) − c(S)` of a normalized submodular
/// function: the monotone part is represented implicitly as `f(S) + c(S)`.
#[derive(Clone, Debug)]
pub struct Decomposition {
    costs: Vec<f64>,
}

impl Decomposition {
    /// Builds the canonical decomposition of Proposition 1 from oracle
    /// access to `f`, using `n + 1` evaluations.
    pub fn canonical<F: SetFunction>(f: &F) -> Self {
        let n = f.universe();
        let full = BitSet::full(n);
        let f_full = f.eval(&full);
        let costs = (0..n).map(|e| f.eval(&full.without(e)) - f_full).collect();
        Decomposition { costs }
    }

    /// Builds a decomposition from explicit per-element costs. The caller
    /// must ensure `f(S) + Σ_{e∈S} costs[e]` is monotone for the pairing to
    /// be a valid decomposition.
    pub fn from_costs(costs: Vec<f64>) -> Self {
        Decomposition { costs }
    }

    /// Ground-set size.
    pub fn universe(&self) -> usize {
        self.costs.len()
    }

    /// The additive cost of a single element, `c({e})`.
    #[inline]
    pub fn cost(&self, e: usize) -> f64 {
        self.costs[e]
    }

    /// The additive part as a standalone [`Additive`] function.
    pub fn additive(&self) -> Additive {
        Additive::new(self.costs.clone())
    }

    /// `c(S) = Σ_{e∈S} c(e)`.
    pub fn cost_of(&self, set: &BitSet) -> f64 {
        set.iter().map(|e| self.costs[e]).sum()
    }

    /// `f_M(S) = f(S) + c(S)` for the provided `f`.
    pub fn monotone_value<F: SetFunction>(&self, f: &F, set: &BitSet) -> f64 {
        f.eval(set) + self.cost_of(set)
    }

    /// Marginal of the monotone part: `f'_M(e, S) = f'(e, S) + c(e)`.
    pub fn monotone_marginal<F: SetFunction>(&self, f: &F, e: usize, set: &BitSet) -> f64 {
        f.marginal(e, set) + self.costs[e]
    }

    /// Applies the improvement procedure of Proposition 2: subtracts the
    /// linear term `d(e) = f_M(U) − f_M(U \ {e})` from both `f_M` and `c`,
    /// producing a decomposition whose Theorem-1 factor is no worse.
    ///
    /// For the canonical decomposition this is a fixpoint (the second half of
    /// Proposition 2): the returned decomposition equals `self`.
    pub fn improve<F: SetFunction>(&self, f: &F) -> Self {
        let n = self.costs.len();
        let full = BitSet::full(n);
        let fm_full = self.monotone_value(f, &full);
        let costs = (0..n)
            .map(|e| {
                let d = fm_full - self.monotone_value(f, &full.without(e));
                self.costs[e] - d
            })
            .collect();
        Decomposition { costs }
    }

    /// The monotone part `f*_M` as an owned [`SetFunction`] borrowing `f`.
    pub fn monotone_part<'a, F: SetFunction>(&'a self, f: &'a F) -> MonotonePart<'a, F> {
        MonotonePart { decomp: self, f }
    }
}

/// The monotone component `f_M = f + c` of a [`Decomposition`], exposed as a
/// [`SetFunction`] (used by property tests and by the generic algorithms).
pub struct MonotonePart<'a, F: SetFunction> {
    decomp: &'a Decomposition,
    f: &'a F,
}

impl<F: SetFunction> SetFunction for MonotonePart<'_, F> {
    fn universe(&self) -> usize {
        self.f.universe()
    }
    fn eval(&self, set: &BitSet) -> f64 {
        self.decomp.monotone_value(self.f, set)
    }
    fn marginal(&self, e: usize, set: &BitSet) -> f64 {
        self.decomp.monotone_marginal(self.f, e, set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitset::all_subsets;
    use crate::function::{is_monotone, is_normalized, is_submodular, FnSetFunction, EPS};
    use crate::instances::coverage::WeightedCoverage;

    /// A small non-monotone normalized submodular function:
    /// coverage minus additive cost.
    fn sample() -> impl SetFunction {
        // 4 subsets over 5 ground elements, unit weights, costs pushing the
        // function negative for large sets.
        let cover = WeightedCoverage::new(
            5,
            vec![vec![0, 1, 2], vec![2, 3], vec![3, 4], vec![0, 4]],
            vec![1.0; 5],
        );
        FnSetFunction::new(4, move |s| {
            let c: f64 = s.iter().map(|e| 0.8 + 0.2 * e as f64).sum();
            cover.eval(s) - c
        })
    }

    #[test]
    fn canonical_decomposition_identity() {
        let f = sample();
        let d = Decomposition::canonical(&f);
        for s in all_subsets(4) {
            let recomposed = d.monotone_value(&f, &s) - d.cost_of(&s);
            assert!((recomposed - f.eval(&s)).abs() < EPS);
        }
    }

    #[test]
    fn canonical_monotone_part_is_monotone_submodular() {
        let f = sample();
        assert!(is_normalized(&f));
        assert!(is_submodular(&f));
        let d = Decomposition::canonical(&f);
        let fm = d.monotone_part(&f);
        assert!(is_monotone(&fm), "f*_M must be monotone (Proposition 1)");
        assert!(
            is_submodular(&fm),
            "f*_M must be submodular (Proposition 1)"
        );
    }

    #[test]
    fn improvement_is_fixpoint_on_canonical() {
        let f = sample();
        let d = Decomposition::canonical(&f);
        let improved = d.improve(&f);
        for e in 0..4 {
            assert!(
                (d.cost(e) - improved.cost(e)).abs() < EPS,
                "Proposition 2: improving the canonical decomposition must not change it"
            );
        }
    }

    #[test]
    fn improvement_improves_inflated_decomposition() {
        // Start from the canonical decomposition shifted by a positive
        // linear function (the paper's example of a worse decomposition);
        // `improve` must recover exactly the canonical one because the shift
        // d(e) = f_M(U) - f_M(U\{e}) picks up the inflation.
        let f = sample();
        let canon = Decomposition::canonical(&f);
        let inflated =
            Decomposition::from_costs((0..4).map(|e| canon.cost(e) + 1.5 + e as f64).collect());
        let improved = inflated.improve(&f);
        for e in 0..4 {
            assert!(
                (improved.cost(e) - canon.cost(e)).abs() < EPS,
                "improvement must strip the linear inflation"
            );
        }
    }

    #[test]
    fn canonical_costs_match_definition() {
        let f = sample();
        let d = Decomposition::canonical(&f);
        let full = BitSet::full(4);
        for e in 0..4 {
            let expect = f.eval(&full.without(e)) - f.eval(&full);
            assert!((d.cost(e) - expect).abs() < EPS);
        }
    }
}
