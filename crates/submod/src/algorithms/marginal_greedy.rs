//! The MarginalGreedy algorithm (Algorithm 2) with the Section 5.1
//! optimizations.
//!
//! Given a decomposition `f = f_M − c`, the algorithm repeatedly picks the
//! element maximizing the marginal-benefit to cost ratio
//! `r(x, X) = f'_M(x, X) / c({x})` and stops as soon as the best ratio drops
//! to 1 or below (at which point adding any element could not increase `f`).
//! Elements with non-positive cost are added in a final phase: `f_M` is
//! monotone, so they can only raise the value of `f`.
//!
//! Under the canonical decomposition of Proposition 1 the output satisfies
//! the Theorem 1 guarantee, which Theorem 2 shows optimal unless P = NP.

use std::time::Instant;

use crate::bitset::BitSet;
use crate::decompose::Decomposition;
use crate::function::SetFunction;

use super::{past_deadline, Outcome, Pick};

/// Configuration for [`marginal_greedy`] (and
/// [`crate::algorithms::lazy::lazy_marginal_greedy`], which shares it).
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Section 5.1: while scanning candidates, permanently drop any element
    /// whose current ratio is ≤ 1 — by submodularity of `f_M` its ratio can
    /// only decrease in later iterations, so it would never be picked.
    /// Changing this flag never changes the output, only the work done.
    pub prune_ratio_below_one: bool,
    /// Optional cardinality constraint `k` (Section 5.3): stop after `k`
    /// elements have been selected (free-element additions count too).
    pub max_picks: Option<usize>,
    /// Anytime mode: stop before any round (or lazy refresh) that would
    /// start past this instant, marking the outcome
    /// [`Outcome::truncated`]; [`Outcome::remaining_bound`] certifies the
    /// headroom left unexplored.
    pub deadline: Option<Instant>,
    /// Benefit floor: an accepted pick's marginal `f'_M(e, X)` must exceed
    /// this in addition to the ratio rule (default `0.0`, the paper's
    /// stopping rule — a ratio above 1 already implies a positive
    /// marginal). Stopping on the floor marks the outcome truncated.
    pub benefit_floor: f64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            prune_ratio_below_one: true,
            max_picks: None,
            deadline: None,
            benefit_floor: 0.0,
        }
    }
}

/// Runs MarginalGreedy over the candidate elements in `candidates`
/// (a subset of the ground set of `f`; pass `BitSet::full(n)` for the whole
/// universe).
///
/// `decomp` supplies the additive costs `c` and thereby the monotone part
/// `f_M = f + c`. Use [`Decomposition::canonical`] for the guarantee of
/// Theorem 1; any valid decomposition yields a correct (if possibly weaker)
/// algorithm.
pub fn marginal_greedy<F: SetFunction>(
    f: &F,
    decomp: &Decomposition,
    candidates: &BitSet,
    config: Config,
) -> Outcome {
    let n = f.universe();
    debug_assert_eq!(decomp.universe(), n);
    debug_assert_eq!(candidates.universe(), n);

    let mut out = Outcome::new(n);
    let mut value = f.eval(&out.set);
    out.evaluations += 1;

    // Elements whose additive cost is non-positive are handled by the final
    // phase; the ratio is meaningless (division by c ≤ 0).
    let mut free: Vec<usize> = Vec::new();
    let mut active: Vec<usize> = Vec::new();
    for e in candidates.iter() {
        if decomp.cost(e) > 0.0 {
            active.push(e);
        } else {
            free.push(e);
        }
    }

    let budget = config.max_picks.unwrap_or(usize::MAX);
    // Last observed marginal per element; feeds the headroom certificate
    // (see `greedy`). Pruned elements record their final (non-positive)
    // marginal, so pruning never inflates the bound.
    let mut gain = vec![f64::INFINITY; n];

    while out.picks.len() < budget && !active.is_empty() {
        if past_deadline(config.deadline) {
            out.truncated = true;
            break;
        }
        // One marginal_many batch per round: functions with a specialized
        // `marginal` keep it (the default is a marginal loop), while batched
        // oracles like the bestCost engine answer the whole round against
        // one shared base. The ratio arithmetic is exactly
        // `decomp.monotone_marginal / cost`.
        let marginals = f.marginal_many(&active, &out.set);
        // (pos in kept, element, ratio, marginal)
        let mut best: Option<(usize, usize, f64, f64)> = None;
        let mut kept = Vec::with_capacity(active.len());
        for (&e, &m) in active.iter().zip(&marginals) {
            let ratio = (m + decomp.cost(e)) / decomp.cost(e);
            out.evaluations += 1;
            gain[e] = m;
            if config.prune_ratio_below_one && ratio <= 1.0 {
                // Permanently pruned (Section 5.1): by submodularity of f_M
                // the ratio only decreases as X grows, so e can never win.
                continue;
            }
            kept.push(e);
            if best.is_none_or(|(_, be, r, _)| super::better_score(ratio, e, r, be)) {
                best = Some((kept.len() - 1, e, ratio, m));
            }
        }
        active = kept;

        match best {
            Some((pos, e, ratio, m)) if ratio > 1.0 && m > config.benefit_floor => {
                out.set.insert(e);
                // The winner's marginal was already evaluated in the round's
                // batch; no extra oracle call.
                value += m;
                out.picks.push(Pick {
                    element: e,
                    score: ratio,
                    value_after: value,
                });
                active.swap_remove(pos);
            }
            Some((_, _, ratio, _)) if ratio > 1.0 => {
                // Still profitable by the ratio rule, but below the floor.
                out.truncated = true;
                break;
            }
            _ => break,
        }
    }

    // Final phase: add the elements with non-positive additive cost. Under
    // the submodularity assumption this "can only raise the value of f"
    // (monotone f_M minus a non-positive c); on functions that violate the
    // assumption — real materialization-benefit functions may — a blind add
    // could lower f, so each element is admitted only if its actual
    // marginal is non-negative. When f is submodular the check always
    // passes and the output matches Algorithm 2 exactly.
    for e in free {
        if out.set.len() >= budget {
            break;
        }
        if past_deadline(config.deadline) {
            // Unevaluated free elements stay at gain = +∞: the headroom
            // bound degrades to vacuous rather than silently excluding
            // them.
            out.truncated = true;
            break;
        }
        let delta = f.marginal(e, &out.set);
        out.evaluations += 1;
        gain[e] = delta;
        if delta >= 0.0 {
            out.set.insert(e);
            value += delta;
            out.free_elements.push(e);
        }
    }

    out.remaining_bound = candidates
        .iter()
        .filter(|&e| !out.set.contains(e))
        .map(|e| gain[e].max(0.0))
        .sum();
    out.value = value;
    out
}

/// Convenience wrapper: canonical decomposition + full universe + defaults.
pub fn marginal_greedy_canonical<F: SetFunction>(f: &F) -> Outcome {
    let decomp = Decomposition::canonical(f);
    marginal_greedy(f, &decomp, &BitSet::full(f.universe()), Config::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::exhaustive::exhaustive_max;
    use crate::bounds::theorem1_lower_bound;
    use crate::function::{FnSetFunction, SetFunction};
    use crate::instances::profitted::ProfittedMaxCoverage;
    use crate::instances::random::{random_coverage_minus_cost, CoverageParams};

    #[test]
    fn empty_universe() {
        let f = FnSetFunction::new(0, |_s: &BitSet| 0.0);
        let out = marginal_greedy_canonical(&f);
        assert!(out.set.is_empty());
        assert_eq!(out.value, 0.0);
    }

    #[test]
    fn picks_obviously_profitable_elements() {
        // f(S) = 10·|S ∩ {0}| + 1·|S ∩ {1}| − tiny costs: both elements
        // profitable, 0 picked first.
        let f = FnSetFunction::new(2, |s: &BitSet| {
            let mut v = 0.0;
            if s.contains(0) {
                v += 10.0;
            }
            if s.contains(1) {
                v += 1.0;
            }
            v
        });
        let decomp = Decomposition::from_costs(vec![1.0, 0.5]);
        let out = marginal_greedy(&f, &decomp, &BitSet::full(2), Config::default());
        assert!(out.set.contains(0) && out.set.contains(1));
        assert_eq!(out.picks[0].element, 0);
        assert_eq!(out.value, 11.0);
    }

    #[test]
    fn rejects_unprofitable_elements() {
        // Element 1 has marginal f_M below its cost: ratio < 1, never added.
        let f = FnSetFunction::new(2, |s: &BitSet| {
            let mut v = 0.0;
            if s.contains(0) {
                v += 5.0;
            }
            if s.contains(1) {
                v -= 3.0;
            }
            v
        });
        let decomp = Decomposition::from_costs(vec![1.0, 1.0]);
        let out = marginal_greedy(&f, &decomp, &BitSet::full(2), Config::default());
        assert!(out.set.contains(0));
        assert!(!out.set.contains(1));
        assert_eq!(out.value, 5.0);
    }

    #[test]
    fn free_elements_added_at_end() {
        let f = FnSetFunction::new(2, |s: &BitSet| s.len() as f64);
        let decomp = Decomposition::from_costs(vec![0.5, -1.0]);
        let out = marginal_greedy(&f, &decomp, &BitSet::full(2), Config::default());
        assert!(out.set.contains(1), "negative-cost element must be added");
        assert_eq!(out.free_elements, vec![1]);
    }

    #[test]
    fn respects_candidate_restriction() {
        let f = FnSetFunction::new(3, |s: &BitSet| 10.0 * s.len() as f64);
        let decomp = Decomposition::from_costs(vec![1.0; 3]);
        let candidates = BitSet::from_iter(3, [0, 2]);
        let out = marginal_greedy(&f, &decomp, &candidates, Config::default());
        assert!(!out.set.contains(1));
        assert_eq!(out.set.len(), 2);
    }

    #[test]
    fn respects_cardinality() {
        let f = FnSetFunction::new(5, |s: &BitSet| 10.0 * s.len() as f64);
        let decomp = Decomposition::from_costs(vec![1.0; 5]);
        let out = marginal_greedy(
            &f,
            &decomp,
            &BitSet::full(5),
            Config {
                max_picks: Some(2),
                ..Default::default()
            },
        );
        assert_eq!(out.set.len(), 2);
    }

    #[test]
    fn pruning_does_not_change_result() {
        for seed in 0..20 {
            let f = random_coverage_minus_cost(
                CoverageParams {
                    n_sets: 10,
                    n_items: 16,
                    ..Default::default()
                },
                1.0,
                seed,
            );
            let decomp = Decomposition::canonical(&f);
            let full = BitSet::full(10);
            let pruned = marginal_greedy(&f, &decomp, &full, Config::default());
            let unpruned = marginal_greedy(
                &f,
                &decomp,
                &full,
                Config {
                    prune_ratio_below_one: false,
                    ..Default::default()
                },
            );
            assert_eq!(pruned.set, unpruned.set, "seed {seed}");
            assert!(
                pruned.evaluations <= unpruned.evaluations,
                "pruning must not increase work (seed {seed})"
            );
        }
    }

    #[test]
    fn value_never_negative_on_normalized_input() {
        // Each accepted pick strictly increases f and the free phase cannot
        // decrease it, so f(X) >= f(∅) = 0.
        for seed in 0..20 {
            let f = random_coverage_minus_cost(CoverageParams::default(), 1.5, seed);
            let out = marginal_greedy_canonical(&f);
            assert!(out.value >= -1e-9, "seed {seed}: value {}", out.value);
        }
    }

    #[test]
    fn theorem1_bound_holds_on_profitted_instances() {
        for (blocks, size, redundant, gamma) in [
            (2, 3, 1, 1.0),
            (3, 3, 2, 2.0),
            (2, 4, 3, 0.5),
            (4, 2, 1, 4.0),
        ] {
            let inst = ProfittedMaxCoverage::hard_instance(blocks, size, redundant, gamma);
            let n = inst.universe();
            if n > 14 {
                continue;
            }
            let decomp = Decomposition::canonical(&inst);
            let out = marginal_greedy(&inst, &decomp, &BitSet::full(n), Config::default());
            let (opt_set, opt_val) = exhaustive_max(&inst, &BitSet::full(n));
            let c_opt = decomp.cost_of(&opt_set);
            let bound = theorem1_lower_bound(opt_val, c_opt);
            assert!(
                out.value >= bound - 1e-9,
                "Theorem 1 violated: got {}, bound {bound}, opt {opt_val} \
                 (blocks={blocks}, size={size}, redundant={redundant}, gamma={gamma})",
                out.value
            );
        }
    }

    #[test]
    fn picks_are_recorded_in_order_with_increasing_sets() {
        let f = random_coverage_minus_cost(CoverageParams::default(), 0.8, 7);
        let out = marginal_greedy_canonical(&f);
        let mut running = BitSet::empty(f.universe());
        for p in &out.picks {
            assert!(running.insert(p.element), "element picked twice");
            assert!(p.score > 1.0);
        }
        for e in &out.free_elements {
            running.insert(*e);
        }
        assert_eq!(running, out.set);
    }
}
