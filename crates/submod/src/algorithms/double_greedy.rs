//! The deterministic double greedy of Buchbinder et al. \[2].
//!
//! A linear-time 1/2-approximation for unconstrained *non-negative*
//! submodular maximization. Included as the baseline the paper contrasts
//! with: its guarantee requires `f ≥ 0` everywhere, which fails in the MQO
//! setting where the materialization benefit can be negative — the gap
//! motivating the paper's MarginalGreedy. Running it after an additive shift
//! (footnote 1 of the paper) illustrates why that route loses the
//! multiplicative guarantee; both modes are exposed for experiments.

use crate::bitset::BitSet;
use crate::function::SetFunction;

use super::{Outcome, Pick};

/// Runs deterministic double greedy over the elements of `candidates`.
///
/// Guarantees `f(X) ≥ max_S f(S) / 2` *when `f` is non-negative on all
/// sets*. For functions that may be negative the output is still a valid
/// set, just without the factor.
pub fn double_greedy<F: SetFunction>(f: &F, candidates: &BitSet) -> Outcome {
    let n = f.universe();
    let mut out = Outcome::new(n);

    // X starts empty (restricted to candidates implicitly), Y starts at the
    // full candidate set.
    let mut y = candidates.clone();
    let mut f_x = f.eval(&out.set);
    let mut f_y = f.eval(&y);
    out.evaluations += 2;

    for e in candidates.iter() {
        // a = gain of adding e to X; b = gain of removing e from Y.
        let x_with = out.set.with(e);
        let y_without = y.without(e);
        let a = f.eval(&x_with) - f_x;
        let b = f.eval(&y_without) - f_y;
        out.evaluations += 2;
        if a >= b {
            out.set = x_with;
            f_x += a;
            out.picks.push(Pick {
                element: e,
                score: a,
                value_after: f_x,
            });
        } else {
            y = y_without;
            f_y += b;
        }
    }

    debug_assert_eq!(out.set, y, "X and Y must coincide at termination");
    out.value = f_x;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::exhaustive::exhaustive_max;
    use crate::function::FnSetFunction;
    use crate::instances::random::random_cut_minus_cost;

    #[test]
    fn half_approximation_on_nonnegative_cuts() {
        // Pure cut functions are non-negative; double greedy must achieve
        // at least half the optimum.
        for seed in 0..15 {
            let cut = crate::instances::cut::CutFunction::new(8, &{
                let mut rng = crate::prng::Prng::seed_from_u64(seed);
                let mut edges = Vec::new();
                for u in 0..8usize {
                    for v in (u + 1)..8 {
                        if rng.gen_bool(0.5) {
                            edges.push((u, v, rng.gen_range(0.5..2.0)));
                        }
                    }
                }
                edges
            });
            let full = BitSet::full(8);
            let out = double_greedy(&cut, &full);
            let (_, opt) = exhaustive_max(&cut, &full);
            assert!(
                out.value >= opt / 2.0 - 1e-9,
                "seed {seed}: {} < {}/2",
                out.value,
                opt
            );
        }
    }

    #[test]
    fn no_guarantee_when_negative_but_still_runs() {
        let f = random_cut_minus_cost(8, 0.5, 3);
        let out = double_greedy(&f, &BitSet::full(8));
        assert!(out.value.is_finite());
    }

    #[test]
    fn trivial_modular_case() {
        // On an additive function, double greedy keeps exactly the
        // positive-weight elements.
        let f = FnSetFunction::new(4, |s: &BitSet| {
            let w = [2.0, -1.0, 3.0, -0.5];
            s.iter().map(|e| w[e]).sum()
        });
        let out = double_greedy(&f, &BitSet::full(4));
        assert_eq!(out.set, BitSet::from_iter(4, [0, 2]));
        assert_eq!(out.value, 5.0);
    }

    #[test]
    fn respects_candidate_restriction() {
        let f = FnSetFunction::new(4, |s: &BitSet| s.len() as f64);
        let candidates = BitSet::from_iter(4, [1, 3]);
        let out = double_greedy(&f, &candidates);
        assert!(out.set.is_subset(&candidates));
        assert_eq!(out.set.len(), 2);
    }
}
