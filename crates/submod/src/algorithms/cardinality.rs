//! Cardinality-constrained selection (Section 5.3) and the Theorem 4
//! universe reduction.
//!
//! A storage budget may cap the number of materialized nodes at `k`. The
//! paper adapts MarginalGreedy by simply stopping after `k` picks, and gives
//! a *pruning* preprocessing step (Theorem 4): order the elements by
//! `f'_M(e, U\{e})/c(e)` descending and keep only
//! `U' = { e : f_M({e})/c(e) ≥ f'_M(e_k, U\{e_k})/c(e_k) }`.
//! The greedy run on `U'` provably returns the same answer as on `U`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::bitset::BitSet;
use crate::decompose::Decomposition;
use crate::function::SetFunction;

/// Total-order f64 wrapper so top-of-lattice ratios can live in a heap.
#[derive(Clone, Copy, PartialEq)]
struct Tot(f64);

impl Eq for Tot {}

impl PartialOrd for Tot {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Tot {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

use super::marginal_greedy::{marginal_greedy, Config};
use super::{Outcome, Pick};

/// The result of the Theorem 4 universe-reduction preprocessing.
#[derive(Clone, Debug)]
pub struct ReducedUniverse {
    /// The kept candidate set `U'`.
    pub kept: BitSet,
    /// Number of elements pruned away.
    pub pruned: usize,
    /// Oracle evaluations spent on the reduction itself.
    pub evaluations: u64,
}

/// Computes the Theorem 4 reduction `U'` for cardinality bound `k`.
///
/// When `k >= n` the check is provably vacuous (Case 1 of the proof shows
/// every element survives), so the full universe is returned without
/// spending any oracle calls — exactly the short-circuit the paper
/// recommends.
pub fn universe_reduction<F: SetFunction>(
    f: &F,
    decomp: &Decomposition,
    candidates: &BitSet,
    k: usize,
) -> ReducedUniverse {
    let n = f.universe();
    let m = candidates.len();
    if k >= m || k == 0 {
        // k >= n: Case 1 of the proof — every element survives, skip the
        // oracle calls. k == 0: the greedy picks nothing regardless, no
        // threshold exists.
        return ReducedUniverse {
            kept: candidates.clone(),
            pruned: 0,
            evaluations: 0,
        };
    }

    let mut evaluations = 0u64;
    let full = {
        // "U" in Theorem 4 is the candidate set itself.
        let mut u = BitSet::empty(n);
        u.union_with(candidates);
        u
    };

    // Elements with non-positive — or numerically negligible — cost are
    // outside the ratio ordering: the greedy loop never ranks them (they
    // are added in the free phase), so they are always kept and do not
    // contribute a threshold. The cost floor matters: a ratio divides
    // value-scale rounding noise by c(e), so a cost below the noise floor
    // of the oracle's values (anchored at |f(U)|) yields a numerically
    // meaningless ratio — excluding such elements from the ranking only
    // ever *lowers* the threshold and keeps more, which Theorem 4 permits.
    let f_full = f.eval(&full);
    let cost_floor = crate::function::EPS * (1.0 + f_full.abs());
    let ranked: Vec<usize> = candidates
        .iter()
        .filter(|&e| decomp.cost(e) > cost_floor)
        .collect();
    if ranked.len() <= k {
        // Fewer rankable elements than the budget: nothing can be pruned,
        // and no per-element oracle calls are needed to know it.
        return ReducedUniverse {
            kept: candidates.clone(),
            pruned: 0,
            evaluations,
        };
    }

    // Singleton ratios f_M({e})/c(e) first — they are both the left-hand
    // side of the keep test and, by submodularity of f_M (marginals shrink
    // as the set grows), an upper bound on the top-of-lattice ratio
    // f'_M(e, U\{e})/c(e) of the same element. Batched: one f(∅)
    // evaluation plus one eval_many over the singletons, whose pooled
    // intersection is ∅ — the cheapest batch an incremental oracle serves.
    let empty = BitSet::empty(n);
    let f_empty = f.eval(&empty);
    let singletons: Vec<BitSet> = ranked.iter().map(|&e| empty.with(e)).collect();
    let singleton_vals = f.eval_many(&singletons);
    evaluations += ranked.len() as u64;
    let singleton_ratios: Vec<f64> = ranked
        .iter()
        .zip(&singleton_vals)
        .map(|(&e, &v)| {
            let cost = decomp.cost(e);
            (v - f_empty + cost) / cost
        })
        .collect();

    // The threshold is only the k-th largest top-of-lattice ratio, so the
    // tops are selected *lazily*: walk the elements in descending
    // singleton-ratio order, maintain a min-heap of the k largest top
    // ratios seen, and stop as soon as the next element's upper bound
    // (its singleton ratio) falls strictly below the running k-th best —
    // no later element can then displace anything in the heap. Each top is
    // the marginal at the top of the lattice, f(U) − f(U\{e}) + c(e):
    // evaluate them one by one right after re-anchoring the oracle at
    // f(U), so every U\{e} is a cheap single-element overlay. (Batching
    // through `eval_many` is exactly wrong here — the pooled intersection
    // of the tops is near-empty, forcing a full recomputation per
    // element.) Where the upper bound is violated by floating-point noise
    // the computed threshold can only come out *lower* than the true k-th
    // ratio, which keeps more elements — the direction Theorem 4 permits.
    let mut order: Vec<usize> = (0..ranked.len()).collect();
    order.sort_by(|&a, &b| {
        singleton_ratios[b]
            .total_cmp(&singleton_ratios[a])
            .then_with(|| ranked[a].cmp(&ranked[b]))
    });
    let _ = f.eval(&full); // re-anchor after the singleton batch
    let mut top_k: BinaryHeap<Reverse<Tot>> = BinaryHeap::with_capacity(k + 1);
    for &i in &order {
        if top_k.len() == k {
            let kth = top_k.peek().expect("heap holds k elements").0 .0;
            if singleton_ratios[i] < kth {
                break;
            }
        }
        let e = ranked[i];
        let v = f.eval(&full.without(e));
        evaluations += 1;
        let ratio = (f_full - v + decomp.cost(e)) / decomp.cost(e);
        top_k.push(Reverse(Tot(ratio)));
        if top_k.len() > k {
            top_k.pop();
        }
    }
    let threshold = top_k.peek().expect("ranked.len() > k").0 .0;

    // Keep e iff its singleton ratio meets the threshold. Elements below
    // the cost floor sit outside the ratio ordering and are always kept.
    let mut kept = BitSet::empty(n);
    for e in candidates.iter() {
        if decomp.cost(e) <= cost_floor {
            kept.insert(e);
        }
    }
    for (&e, &singleton_ratio) in ranked.iter().zip(&singleton_ratios) {
        // `>=` with a relative tolerance: under the canonical decomposition
        // the top-of-lattice ratios are exactly zero in exact arithmetic, and
        // floating-point noise must not prune elements the theorem keeps.
        // Keeping a borderline element is always safe (U' only needs to
        // contain every element the greedy could pick).
        if crate::function::ge_approx(singleton_ratio, threshold) {
            kept.insert(e);
        }
    }

    let pruned = m - kept.len();
    ReducedUniverse {
        kept,
        pruned,
        evaluations,
    }
}

/// MarginalGreedy under a cardinality constraint `k`, optionally preceded by
/// the Theorem 4 universe reduction.
pub fn cardinality_marginal_greedy<F: SetFunction>(
    f: &F,
    decomp: &Decomposition,
    candidates: &BitSet,
    k: usize,
    reduce_universe: bool,
) -> Outcome {
    let cfg = Config {
        max_picks: Some(k),
        ..Default::default()
    };
    if reduce_universe {
        let reduction = universe_reduction(f, decomp, candidates, k);
        let mut out = marginal_greedy(f, decomp, &reduction.kept, cfg);
        out.evaluations += reduction.evaluations;
        out
    } else {
        marginal_greedy(f, decomp, candidates, cfg)
    }
}

/// The classic (1 − 1/e) greedy of Nemhauser–Wolsey–Fisher for *monotone*
/// submodular maximization under a cardinality constraint: pick the largest
/// marginal until `k` elements are chosen.
///
/// Provided as the textbook baseline the paper builds on (\[19]); unlike
/// Algorithm 1 it does not stop early on non-improving steps (marginals of a
/// monotone function are never negative anyway).
pub fn cardinality_greedy_monotone<F: SetFunction>(
    f: &F,
    candidates: &BitSet,
    k: usize,
) -> Outcome {
    let n = f.universe();
    let mut out = Outcome::new(n);
    let mut value = f.eval(&out.set);
    out.evaluations += 1;
    let mut active: Vec<usize> = candidates.iter().collect();

    for _ in 0..k {
        if active.is_empty() {
            break;
        }
        let mut best: Option<(usize, usize, f64)> = None;
        for (pos, &e) in active.iter().enumerate() {
            let gain = f.marginal(e, &out.set);
            out.evaluations += 1;
            if best.is_none_or(|(_, be, g)| super::better_score(gain, e, g, be)) {
                best = Some((pos, e, gain));
            }
        }
        let (pos, e, gain) = best.expect("active is non-empty");
        out.set.insert(e);
        value += gain;
        out.picks.push(Pick {
            element: e,
            score: gain,
            value_after: value,
        });
        active.swap_remove(pos);
    }

    out.value = f.eval(&out.set);
    out.evaluations += 1;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::exhaustive::exhaustive_max_k;
    use crate::instances::coverage::WeightedCoverage;
    use crate::instances::random::{random_coverage_minus_cost, CoverageParams};

    #[test]
    fn reduction_is_identity_when_k_equals_n() {
        let f = random_coverage_minus_cost(CoverageParams::default(), 1.0, 1);
        let d = Decomposition::canonical(&f);
        let full = BitSet::full(8);
        let r = universe_reduction(&f, &d, &full, 8);
        assert_eq!(r.kept, full);
        assert_eq!(r.pruned, 0);
        assert_eq!(r.evaluations, 0, "k = n short-circuit must be free");
    }

    #[test]
    fn theorem4_pruned_equals_unpruned() {
        // The heart of Theorem 4: the constrained greedy returns the same
        // answer with or without the universe reduction.
        for seed in 0..30 {
            let f = random_coverage_minus_cost(
                CoverageParams {
                    n_sets: 12,
                    n_items: 20,
                    ..Default::default()
                },
                1.0,
                seed,
            );
            let d = Decomposition::canonical(&f);
            let full = BitSet::full(12);
            for k in [1, 2, 4, 6] {
                let with = cardinality_marginal_greedy(&f, &d, &full, k, true);
                let without = cardinality_marginal_greedy(&f, &d, &full, k, false);
                assert_eq!(
                    with.set, without.set,
                    "Theorem 4 violated at seed {seed}, k {k}"
                );
            }
        }
    }

    #[test]
    fn canonical_decomposition_never_prunes() {
        // A consequence of Proposition 1 the paper does not spell out: under
        // the canonical decomposition, f'_M(e, U\{e}) = f(U) − f(U\{e}) +
        // c*(e) = 0 for every element, so the Theorem 4 threshold is 0 while
        // singleton ratios are >= 0 by monotonicity of f*_M — the reduction
        // keeps everything. (Consistent with the paper's remark that "this
        // strategy may not always lead to a reduction".)
        for seed in 0..10 {
            let f = random_coverage_minus_cost(
                CoverageParams {
                    n_sets: 14,
                    n_items: 10,
                    density: 0.5,
                    ..Default::default()
                },
                1.2,
                seed,
            );
            let d = Decomposition::canonical(&f);
            let r = universe_reduction(&f, &d, &BitSet::full(14), 2);
            assert_eq!(r.pruned, 0, "seed {seed}");
        }
    }

    #[test]
    fn reduction_can_prune_under_natural_decomposition() {
        // Under the "natural" decomposition (f_M = coverage, c = raw costs)
        // pruning does bite: elements 0..k uniquely cover high-weight items
        // (large top-of-lattice ratio), the rest cover shared cheap items
        // (singleton ratio below the threshold).
        use crate::instances::coverage::WeightedCoverage;
        let k = 2;
        // Items 0,1 weigh 100 and are uniquely covered by sets 0,1; items
        // 2,3 weigh 1 and are covered by all remaining sets.
        let cover = WeightedCoverage::new(
            4,
            vec![vec![0], vec![1], vec![2, 3], vec![2, 3], vec![2, 3]],
            vec![100.0, 100.0, 1.0, 1.0],
        );
        let costs = [1.0, 1.0, 1.0, 1.0, 1.0];
        let f = crate::function::FnSetFunction::new(5, move |s| {
            crate::function::SetFunction::eval(&cover, s) - s.iter().map(|e| costs[e]).sum::<f64>()
        });
        let d = Decomposition::from_costs(vec![1.0; 5]);
        let r = universe_reduction(&f, &d, &BitSet::full(5), k);
        // Top ratios: sets 0,1 keep ratio 100 even at the top (unique
        // items); threshold = 100. Sets 2..4 have singleton ratio 2 < 100.
        assert_eq!(r.pruned, 3);
        assert!(r.kept.contains(0) && r.kept.contains(1));
        // And Theorem 4 still holds: same greedy output either way.
        let with = cardinality_marginal_greedy(&f, &d, &BitSet::full(5), k, true);
        let without = cardinality_marginal_greedy(&f, &d, &BitSet::full(5), k, false);
        assert_eq!(with.set, without.set);
    }

    #[test]
    fn classic_greedy_achieves_1_minus_1_over_e() {
        // On pure coverage (monotone), compare to the exhaustive k-optimum.
        for seed in 0..10 {
            let f = crate::instances::random::random_coverage(
                CoverageParams {
                    n_sets: 10,
                    n_items: 15,
                    ..Default::default()
                },
                seed,
            );
            let k = 3;
            let out = cardinality_greedy_monotone(&f, &BitSet::full(10), k);
            let (_, opt) = exhaustive_max_k(&f, &BitSet::full(10), k);
            let ratio = 1.0 - 1.0 / std::f64::consts::E;
            assert!(
                out.value >= ratio * opt - 1e-9,
                "seed {seed}: {} < (1-1/e)·{opt}",
                out.value
            );
        }
    }

    #[test]
    fn classic_greedy_fills_budget_on_monotone() {
        let f = WeightedCoverage::unweighted(4, vec![vec![0], vec![1], vec![2], vec![3]]);
        let out = cardinality_greedy_monotone(&f, &BitSet::full(4), 2);
        assert_eq!(out.set.len(), 2);
        assert_eq!(out.value, 2.0);
    }
}
