//! Algorithms for unconstrained normalized submodular maximization and the
//! cardinality-constrained variant, as described in Sections 3 and 5 of the
//! paper, plus baselines used in tests and benches.

pub mod cardinality;
pub mod cleanup;
pub mod double_greedy;
pub mod exhaustive;
pub mod greedy;
pub mod knapsack;
pub mod lazy;
pub mod marginal_greedy;

use crate::bitset::BitSet;

/// Whether candidate `(score, elem)` beats the incumbent `(best_score,
/// best_elem)` in an eager argmax scan.
///
/// Scores are compared with [`f64::total_cmp`] — the same total order the
/// lazy variants' heaps use — so eager and lazy selections agree on every
/// input, including `NaN` (ranked above `+∞`, like the heaps rank it) and
/// `-0.0` vs `+0.0` (distinct but deterministically ordered). Ties break
/// toward the smaller element index, again matching the heap ordering;
/// `partial_cmp`-style `>` comparisons would instead leave the winner
/// dependent on scan order (and silently freeze a leading `NaN` in place).
pub(crate) fn better_score(score: f64, elem: usize, best_score: f64, best_elem: usize) -> bool {
    match score.total_cmp(&best_score) {
        std::cmp::Ordering::Greater => true,
        std::cmp::Ordering::Equal => elem < best_elem,
        std::cmp::Ordering::Less => false,
    }
}

/// One accepted pick of a greedy run.
#[derive(Clone, Debug)]
pub struct Pick {
    /// The element added.
    pub element: usize,
    /// The selection score at the time of the pick: the marginal-benefit to
    /// cost ratio for MarginalGreedy, the benefit for Greedy.
    pub score: f64,
    /// Objective value `f(X)` just after the pick.
    pub value_after: f64,
}

/// The result of a greedy run.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// The selected set.
    pub set: BitSet,
    /// `f(set)`.
    pub value: f64,
    /// Accepted picks, in order.
    pub picks: Vec<Pick>,
    /// Elements added in the final phase because their additive cost was
    /// non-positive (MarginalGreedy only; empty for other algorithms).
    pub free_elements: Vec<usize>,
    /// Number of candidate (re-)evaluations performed; lazy variants do
    /// fewer of these than their eager counterparts.
    pub evaluations: u64,
    /// True when the run stopped early — on a wall-clock deadline or a
    /// benefit floor — rather than running its stopping rule to
    /// convergence (anytime mode; see the `deadline` / `benefit_floor`
    /// fields of the greedy configs).
    pub truncated: bool,
    /// Certified headroom: `Σ max(0, m̂(e))` over candidates outside the
    /// selected set, where `m̂(e)` is the last observed marginal of `e`
    /// (stale values are upper bounds under submodularity). Under the
    /// monotonicity heuristic, `value + remaining_bound` upper-bounds the
    /// optimal value over the candidate set — the raw material of a gap
    /// certificate. `+∞` when the run stopped before observing every
    /// candidate at least once (the bound is then vacuous, never wrong).
    pub remaining_bound: f64,
}

impl Outcome {
    pub(crate) fn new(universe: usize) -> Self {
        Outcome {
            set: BitSet::empty(universe),
            value: 0.0,
            picks: Vec::new(),
            free_elements: Vec::new(),
            evaluations: 0,
            truncated: false,
            remaining_bound: 0.0,
        }
    }
}

/// Whether an anytime deadline has passed (`None` never fires).
#[inline]
pub(crate) fn past_deadline(deadline: Option<std::time::Instant>) -> bool {
    // mqo-lint: allow(wall-clock) -- THE sanctioned budget check: every anytime deadline in the workspace routes through here
    deadline.is_some_and(|d| std::time::Instant::now() >= d)
}
