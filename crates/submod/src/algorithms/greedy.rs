//! The Greedy algorithm of Roy et al. (Algorithm 1) and its lazy
//! acceleration.
//!
//! Algorithm 1 iteratively picks the element whose addition yields the
//! largest objective value `f(X ∪ {x})` (equivalently: minimizes
//! `bc(X ∪ {x})` in the MQO setting) and stops as soon as no element
//! strictly improves the objective. Unlike MarginalGreedy it needs no
//! decomposition — it works on the raw benefit — and carries no
//! approximation guarantee; it is the heuristic the paper compares against.
//!
//! [`lazy_greedy`] is the Minoux-style acceleration Pyro used under the
//! "monotonicity heuristic" (supermodularity of `bestCost`, i.e.
//! submodularity of the benefit). When the heuristic holds, stale benefits
//! are upper bounds and lazy ≡ eager; when it does not, lazy may diverge —
//! the paper reports that on their workloads the two produced identical
//! plans, which our TPCD tests confirm for this implementation.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

use crate::bitset::BitSet;
use crate::function::SetFunction;

use super::{past_deadline, Outcome, Pick};

/// Configuration for [`greedy`] / [`lazy_greedy`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Config {
    /// Optional cardinality constraint: stop after `k` picks.
    pub max_picks: Option<usize>,
    /// Anytime mode: stop before any round (or lazy refresh) that would
    /// start past this instant, marking the outcome
    /// [`Outcome::truncated`]. The partial result is valid — greedy
    /// prefixes are themselves greedy solutions — and
    /// [`Outcome::remaining_bound`] certifies the headroom left behind.
    pub deadline: Option<Instant>,
    /// Benefit floor: a pick must improve `f` by strictly more than this
    /// (default `0.0`, the classic stopping rule). A positive floor trades
    /// tail picks of diminishing benefit for fewer oracle rounds; stopping
    /// on the floor marks the outcome truncated.
    pub benefit_floor: f64,
}

/// Runs Algorithm 1: repeatedly add `argmax_x f(X ∪ {x})` while it strictly
/// improves on `f(X)`.
///
/// Each round's candidates are evaluated through one
/// [`SetFunction::eval_many`] batch, so incremental oracles answer the
/// whole round against a single shared base.
pub fn greedy<F: SetFunction>(f: &F, candidates: &BitSet, config: Config) -> Outcome {
    let n = f.universe();
    let mut out = Outcome::new(n);
    let mut value = f.eval(&out.set);
    out.evaluations += 1;

    let mut active: Vec<usize> = candidates.iter().collect();
    let mut round_sets: Vec<BitSet> = Vec::with_capacity(active.len());
    let budget = config.max_picks.unwrap_or(usize::MAX);
    // Last observed improvement per element (`f(X∪e) − f(X)` at the round
    // it was evaluated): stale values upper-bound current ones under
    // submodularity, so summing their positive parts over the unpicked
    // candidates certifies the headroom. +∞ until first observed.
    let mut gain = vec![f64::INFINITY; n];

    while out.picks.len() < budget && !active.is_empty() {
        if past_deadline(config.deadline) {
            out.truncated = true;
            break;
        }
        // Round buffers persist across rounds: each candidate set is the
        // shared base plus one element, rebuilt in place via `copy_from`
        // instead of a fresh clone per candidate per round (the dominant
        // allocation at 10k-candidate universes).
        if round_sets.len() < active.len() {
            round_sets.resize_with(active.len(), || BitSet::empty(n));
        }
        for (buf, &e) in round_sets.iter_mut().zip(&active) {
            buf.copy_from(&out.set);
            buf.insert(e);
        }
        let vals = f.eval_many(&round_sets[..active.len()]);
        out.evaluations += active.len() as u64;
        let mut best: Option<(usize, usize, f64)> = None; // (pos, elem, new value)
        for (pos, (&e, &v)) in active.iter().zip(&vals).enumerate() {
            gain[e] = v - value;
            if best.is_none_or(|(_, be, bv)| super::better_score(v, e, bv, be)) {
                best = Some((pos, e, v));
            }
        }
        match best {
            Some((pos, e, v)) if v > value + config.benefit_floor => {
                out.set.insert(e);
                out.picks.push(Pick {
                    element: e,
                    score: v - value,
                    value_after: v,
                });
                value = v;
                active.swap_remove(pos);
            }
            Some((_, _, v)) if v > value => {
                // A pick would still improve, but below the floor.
                out.truncated = true;
                break;
            }
            _ => break,
        }
    }

    out.remaining_bound = active.iter().map(|&e| gain[e].max(0.0)).sum();
    out.value = value;
    out
}

/// Heap entry for the lazy variant: stale benefit upper bound.
struct Entry {
    bound: f64,
    element: usize,
    epoch: usize,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        // Consistent with `Ord`: IEEE `==` would violate the `Eq` contract
        // for NaN bounds and order ±0.0 differently than `total_cmp`.
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap under the `total_cmp` total order (NaN ranks top and is
        // then rejected by the `> 0.0` acceptance guard); ties break
        // toward the smaller element, matching the eager scan.
        self.bound
            .total_cmp(&other.bound)
            .then_with(|| other.element.cmp(&self.element))
    }
}

/// Runs the lazy (heap-accelerated) version of Algorithm 1.
///
/// Correctness of the acceleration rests on the monotonicity heuristic
/// (`benefit(x, X) ≤ benefit(x, Y)` for `Y ⊆ X`): stale benefits then upper
/// bound current ones. Produces the same result as [`greedy`] whenever the
/// heuristic holds over the visited sets.
pub fn lazy_greedy<F: SetFunction>(f: &F, candidates: &BitSet, config: Config) -> Outcome {
    let n = f.universe();
    let mut out = Outcome::new(n);
    let mut value = f.eval(&out.set);
    out.evaluations += 1;

    let mut heap: BinaryHeap<Entry> = BinaryHeap::new();
    let mut probe = BitSet::empty(n);
    let mut seeded_all = true;
    for e in candidates.iter() {
        if past_deadline(config.deadline) {
            // Unseeded candidates were never observed: the headroom bound
            // below would miss them, so it degrades to +∞ (vacuous, never
            // wrong).
            out.truncated = true;
            seeded_all = false;
            break;
        }
        probe.copy_from(&out.set);
        probe.insert(e);
        let benefit = f.eval(&probe) - value;
        out.evaluations += 1;
        heap.push(Entry {
            bound: benefit,
            element: e,
            epoch: 0,
        });
    }

    let budget = config.max_picks.unwrap_or(usize::MAX);
    let mut epoch = 0usize;

    while seeded_all && out.picks.len() < budget {
        let mut hit_deadline = false;
        let best = loop {
            if past_deadline(config.deadline) {
                // Entries stay in the heap: their stale bounds still feed
                // the headroom certificate.
                hit_deadline = true;
                break None;
            }
            let Some(top) = heap.pop() else { break None };
            if top.epoch == epoch {
                break Some(top);
            }
            probe.copy_from(&out.set);
            probe.insert(top.element);
            let benefit = f.eval(&probe) - value;
            out.evaluations += 1;
            let refreshed = Entry {
                bound: benefit,
                element: top.element,
                epoch,
            };
            if heap.peek().is_none_or(|next| refreshed.cmp(next).is_ge()) {
                break Some(refreshed);
            }
            heap.push(refreshed);
        };

        if hit_deadline {
            out.truncated = true;
            break;
        }
        match best {
            Some(entry) if entry.bound > config.benefit_floor.max(0.0) => {
                out.set.insert(entry.element);
                value += entry.bound;
                out.picks.push(Pick {
                    element: entry.element,
                    score: entry.bound,
                    value_after: value,
                });
                epoch += 1;
            }
            Some(entry) => {
                if entry.bound > 0.0 {
                    // Improving but below the floor: an early stop, and the
                    // entry's bound still counts toward the headroom.
                    out.truncated = true;
                }
                heap.push(entry);
                break;
            }
            None => break,
        }
    }

    out.remaining_bound = if seeded_all {
        heap.iter().map(|e| e.bound.max(0.0)).sum()
    } else {
        f64::INFINITY
    };
    out.value = value;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FnSetFunction;
    use crate::instances::random::{random_coverage_minus_cost, CoverageParams};

    #[test]
    fn greedy_stops_when_no_improvement() {
        // Only element 0 is profitable.
        let f = FnSetFunction::new(3, |s: &BitSet| {
            let mut v = 0.0;
            if s.contains(0) {
                v += 5.0;
            }
            if s.contains(1) {
                v -= 1.0;
            }
            if s.contains(2) {
                v -= 2.0;
            }
            v
        });
        let out = greedy(&f, &BitSet::full(3), Config::default());
        assert_eq!(out.set, BitSet::from_iter(3, [0]));
        assert_eq!(out.value, 5.0);
        assert_eq!(out.picks.len(), 1);
    }

    #[test]
    fn greedy_respects_cardinality() {
        let f = FnSetFunction::new(5, |s: &BitSet| s.len() as f64);
        let out = greedy(
            &f,
            &BitSet::full(5),
            Config {
                max_picks: Some(3),
                ..Config::default()
            },
        );
        assert_eq!(out.set.len(), 3);
    }

    #[test]
    fn lazy_matches_eager_on_submodular_instances() {
        for seed in 0..25 {
            let f = random_coverage_minus_cost(
                CoverageParams {
                    n_sets: 12,
                    n_items: 18,
                    ..Default::default()
                },
                1.0,
                seed,
            );
            let eager = greedy(&f, &BitSet::full(12), Config::default());
            let lazy = lazy_greedy(&f, &BitSet::full(12), Config::default());
            assert_eq!(eager.set, lazy.set, "seed {seed}");
            assert!((eager.value - lazy.value).abs() < 1e-9);
            assert!(lazy.evaluations <= eager.evaluations, "seed {seed}");
        }
    }

    #[test]
    fn greedy_value_never_negative_on_normalized_input() {
        for seed in 0..10 {
            let f = random_coverage_minus_cost(CoverageParams::default(), 2.0, seed);
            let out = greedy(&f, &BitSet::full(8), Config::default());
            assert!(out.value >= 0.0);
        }
    }

    #[test]
    fn nan_values_terminate_eager_and_lazy_identically() {
        // Element 1 poisons its evaluation with NaN. Under the total_cmp
        // ordering NaN ranks top in both the eager scan and the lazy heap,
        // and both acceptance guards (`v > value`, `bound > 0.0`) reject
        // it, so both variants stop without picking anything — no panic,
        // no divergence, no element silently shadowed by a leading NaN.
        let f = FnSetFunction::new(3, |s: &BitSet| {
            if s.contains(1) {
                f64::NAN
            } else {
                s.len() as f64 * 0.0 // all real marginals are 0: nothing improves
            }
        });
        let eager = greedy(&f, &BitSet::full(3), Config::default());
        let lazy = lazy_greedy(&f, &BitSet::full(3), Config::default());
        assert_eq!(eager.set, lazy.set);
        assert!(eager.set.is_empty());
    }

    #[test]
    fn negative_zero_values_tie_break_deterministically() {
        // -0.0 and +0.0 benefits must order the same way in the eager scan
        // and the lazy heap (total_cmp: -0.0 < +0.0), so neither variant's
        // outcome depends on scan or heap-pop order.
        let f = FnSetFunction::new(2, |s: &BitSet| {
            if s.contains(0) && !s.contains(1) {
                -0.0
            } else {
                0.0
            }
        });
        let eager = greedy(&f, &BitSet::full(2), Config::default());
        let lazy = lazy_greedy(&f, &BitSet::full(2), Config::default());
        assert_eq!(eager.set, lazy.set);
    }

    #[test]
    fn greedy_on_empty_candidates() {
        let f = FnSetFunction::new(4, |s: &BitSet| s.len() as f64);
        let out = greedy(&f, &BitSet::empty(4), Config::default());
        assert!(out.set.is_empty());
        assert_eq!(out.value, 0.0);
    }
}
