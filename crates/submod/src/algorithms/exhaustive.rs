//! Exhaustive maximization over subsets — the `O(2^n)` ground truth used by
//! tests and small-scale experiments (the paper's motivation: exhaustive MQO
//! explores an `O(n^n)` space, so guarantees relative to the true optimum
//! can only be validated on small universes).

use crate::bitset::BitSet;
use crate::function::SetFunction;

/// Maximum candidate count accepted by the exhaustive routines.
const MAX_EXHAUSTIVE: usize = 25;

/// Finds `argmax_{S ⊆ candidates} f(S)` by enumeration.
///
/// Ties are broken toward the lexicographically smallest element mask so the
/// result is deterministic. Panics if `candidates` has more than 25
/// elements.
pub fn exhaustive_max<F: SetFunction>(f: &F, candidates: &BitSet) -> (BitSet, f64) {
    exhaustive_max_filtered(f, candidates, |_| true)
}

/// Exhaustive maximum over subsets of size at most `k`.
pub fn exhaustive_max_k<F: SetFunction>(f: &F, candidates: &BitSet, k: usize) -> (BitSet, f64) {
    exhaustive_max_filtered(f, candidates, |s| s.len() <= k)
}

fn exhaustive_max_filtered<F: SetFunction>(
    f: &F,
    candidates: &BitSet,
    admit: impl Fn(&BitSet) -> bool,
) -> (BitSet, f64) {
    let elems: Vec<usize> = candidates.iter().collect();
    let m = elems.len();
    assert!(
        m <= MAX_EXHAUSTIVE,
        "exhaustive search limited to {MAX_EXHAUSTIVE} candidates, got {m}"
    );
    let n = f.universe();
    let mut best_set = BitSet::empty(n);
    let mut best_val = if admit(&best_set) {
        f.eval(&best_set)
    } else {
        f64::NEG_INFINITY
    };
    for mask in 1u64..(1u64 << m) {
        let mut s = BitSet::empty(n);
        for (i, &e) in elems.iter().enumerate() {
            if mask >> i & 1 == 1 {
                s.insert(e);
            }
        }
        if !admit(&s) {
            continue;
        }
        let v = f.eval(&s);
        // total_cmp: deterministic under -0.0; ties keep the
        // lexicographically-first (smallest-mask) maximizer. NaN values
        // are rejected outright — the same convention as the greedy
        // acceptance guards — so a poisoned subset can never displace the
        // true finite optimum.
        if !v.is_nan() && v.total_cmp(&best_val).is_gt() {
            best_val = v;
            best_set = s;
        }
    }
    (best_set, best_val)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::FnSetFunction;

    #[test]
    fn finds_modular_optimum() {
        let f = FnSetFunction::new(5, |s: &BitSet| {
            let w = [3.0, -2.0, 1.0, -4.0, 0.5];
            s.iter().map(|e| w[e]).sum()
        });
        let (set, val) = exhaustive_max(&f, &BitSet::full(5));
        assert_eq!(set, BitSet::from_iter(5, [0, 2, 4]));
        assert_eq!(val, 4.5);
    }

    #[test]
    fn k_constrained_optimum() {
        let f = FnSetFunction::new(4, |s: &BitSet| {
            let w = [3.0, 2.0, 1.0, 0.5];
            s.iter().map(|e| w[e]).sum()
        });
        let (set, val) = exhaustive_max_k(&f, &BitSet::full(4), 2);
        assert_eq!(set, BitSet::from_iter(4, [0, 1]));
        assert_eq!(val, 5.0);
    }

    #[test]
    fn restricted_candidates() {
        let f = FnSetFunction::new(4, |s: &BitSet| s.len() as f64);
        let candidates = BitSet::from_iter(4, [1, 2]);
        let (set, val) = exhaustive_max(&f, &candidates);
        assert_eq!(set, candidates);
        assert_eq!(val, 2.0);
    }

    #[test]
    fn empty_optimum_when_everything_hurts() {
        let f = FnSetFunction::new(3, |s: &BitSet| -(s.len() as f64));
        let (set, val) = exhaustive_max(&f, &BitSet::full(3));
        assert!(set.is_empty());
        assert_eq!(val, 0.0);
    }
}
