//! Removal cleanup — an *extension* beyond the paper's Algorithm 2.
//!
//! When `f` satisfies the submodularity assumption, every element accepted
//! by MarginalGreedy keeps a non-negative marginal forever, so removal can
//! never help. On real materialization-benefit functions the assumption can
//! fail: an element picked early (e.g. a sub-join that accelerated a larger
//! node's production) may become pure overhead once the larger node is
//! itself materialized. This pass greedily drops elements whose removal
//! increases `f`, until no single removal helps — a cheap downward local
//! search that is a no-op on genuinely submodular inputs.
//!
//! Used by the ablation experiments to quantify how far the workload's
//! `mb` deviates from the monotonicity heuristic.

use crate::bitset::BitSet;
use crate::function::SetFunction;

/// Result of a cleanup pass.
#[derive(Clone, Debug)]
pub struct CleanupOutcome {
    /// The reduced set.
    pub set: BitSet,
    /// `f(set)`.
    pub value: f64,
    /// Elements removed, in removal order.
    pub removed: Vec<usize>,
    /// Oracle evaluations spent.
    pub evaluations: u64,
}

/// Greedily removes elements while any single removal strictly increases
/// `f`; always removes the best (largest-gain) removal first.
pub fn cleanup<F: SetFunction>(f: &F, start: &BitSet) -> CleanupOutcome {
    let mut set = start.clone();
    let mut value = f.eval(&set);
    let mut evaluations = 1u64;
    let mut removed = Vec::new();

    loop {
        let mut best: Option<(usize, f64)> = None;
        for e in set.iter().collect::<Vec<_>>() {
            let v = f.eval(&set.without(e));
            evaluations += 1;
            if v > value && best.is_none_or(|(be, bv)| super::better_score(v, e, bv, be)) {
                best = Some((e, v));
            }
        }
        match best {
            Some((e, v)) => {
                set.remove(e);
                value = v;
                removed.push(e);
            }
            None => break,
        }
    }

    CleanupOutcome {
        set,
        value,
        removed,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::marginal_greedy::marginal_greedy_canonical;
    use crate::function::FnSetFunction;
    use crate::instances::random::{random_coverage_minus_cost, CoverageParams};

    #[test]
    fn never_decreases_value() {
        // Even under submodularity a greedy output may admit improving
        // removals (marginals of early picks can turn negative after later
        // additions); cleanup must only ever improve the value.
        for seed in 0..10 {
            let f = random_coverage_minus_cost(CoverageParams::default(), 1.0, seed);
            let out = marginal_greedy_canonical(&f);
            let cleaned = cleanup(&f, &out.set);
            assert!(cleaned.value >= out.value - 1e-9, "seed {seed}");
            assert!(cleaned.set.is_subset(&out.set));
        }
    }

    #[test]
    fn removes_harmful_element() {
        // f rewards {0} but penalizes {0,1} jointly: starting from {0,1}
        // cleanup must drop 1.
        let f = FnSetFunction::new(2, |s: &BitSet| match (s.contains(0), s.contains(1)) {
            (false, false) => 0.0,
            (true, false) => 5.0,
            (false, true) => 1.0,
            (true, true) => 3.0,
        });
        let start = BitSet::full(2);
        let out = cleanup(&f, &start);
        assert_eq!(out.set, BitSet::from_iter(2, [0]));
        assert_eq!(out.value, 5.0);
        assert_eq!(out.removed, vec![1]);
    }

    #[test]
    fn removal_order_is_best_first() {
        // Both removals improve; the larger gain goes first.
        let f = FnSetFunction::new(2, |s: &BitSet| match (s.contains(0), s.contains(1)) {
            (false, false) => 10.0,
            (true, false) => 8.0, // removing 1 from {0,1} gains 8-0
            (false, true) => 3.0, // removing 0 from {0,1} gains 3-0
            (true, true) => 0.0,
        });
        let out = cleanup(&f, &BitSet::full(2));
        assert_eq!(out.removed, vec![1, 0]);
        assert_eq!(out.value, 10.0);
    }

    #[test]
    fn empty_start_is_noop() {
        let f = FnSetFunction::new(3, |s: &BitSet| s.len() as f64);
        let out = cleanup(&f, &BitSet::empty(3));
        assert!(out.set.is_empty());
        assert!(out.removed.is_empty());
    }
}
