//! Monotone submodular maximization under a knapsack constraint —
//! Sviridenko's algorithm \[28], the stated inspiration for MarginalGreedy.
//!
//! The paper remarks (end of Section 3.1) that running the knapsack ratio
//! greedy "for multiple values of the budget ... leads to the same answer
//! [as MarginalGreedy]. Indeed, this is the case with budget being the
//! value of c(Θ)" — but since `c(Θ)` is not known in advance, MarginalGreedy
//! replaces the budget check with the ratio-above-1 stopping rule. Both the
//! plain ratio greedy under a budget ([`knapsack_ratio_greedy`]) and the
//! partial-enumeration variant with the (1 − 1/e) guarantee
//! ([`sviridenko`]) are provided; the relationship to MarginalGreedy is
//! exercised in the tests.

use crate::bitset::BitSet;
use crate::decompose::Decomposition;
use crate::function::SetFunction;

use super::{Outcome, Pick};

/// Ratio greedy under a knapsack budget: repeatedly add the feasible
/// element maximizing `f'_M(e, X)/c(e)`; skip elements that no longer fit.
///
/// `f_m` must be monotone (in the MQO setting: the monotone part of a
/// decomposition); `costs` must be positive for budget semantics.
pub fn knapsack_ratio_greedy<F: SetFunction>(
    f_m: &F,
    decomp: &Decomposition,
    candidates: &BitSet,
    budget: f64,
) -> Outcome {
    let n = f_m.universe();
    let mut out = Outcome::new(n);
    let mut value = f_m.eval(&out.set);
    out.evaluations += 1;
    let mut spent = 0.0;
    let mut active: Vec<usize> = candidates
        .iter()
        .filter(|&e| decomp.cost(e) > 0.0)
        .collect();

    loop {
        let mut best: Option<(usize, usize, f64)> = None;
        let mut feasible = Vec::with_capacity(active.len());
        for &e in &active {
            if spent + decomp.cost(e) > budget + 1e-12 {
                continue; // does not fit; may fit later? no — spent only grows
            }
            feasible.push(e);
            let ratio = f_m.marginal(e, &out.set) / decomp.cost(e);
            out.evaluations += 1;
            if best.is_none_or(|(_, be, r)| super::better_score(ratio, e, r, be)) {
                best = Some((feasible.len() - 1, e, ratio));
            }
        }
        active = feasible;
        match best {
            Some((pos, e, ratio)) if ratio > 0.0 => {
                out.set.insert(e);
                spent += decomp.cost(e);
                value = f_m.eval(&out.set);
                out.evaluations += 1;
                out.picks.push(Pick {
                    element: e,
                    score: ratio,
                    value_after: value,
                });
                active.swap_remove(pos);
            }
            _ => break,
        }
    }
    out.value = value;
    out
}

/// Sviridenko's partial-enumeration algorithm: try every feasible seed set
/// of size at most 3, complete each by the ratio greedy, and return the
/// best completion. Guarantees `(1 − 1/e)` of the optimum for monotone
/// submodular `f_m` under the budget; cubic in `n`, so intended for small
/// universes (≤ 18 enforced).
pub fn sviridenko<F: SetFunction>(
    f_m: &F,
    decomp: &Decomposition,
    candidates: &BitSet,
    budget: f64,
) -> Outcome {
    let n = f_m.universe();
    let elems: Vec<usize> = candidates.iter().collect();
    assert!(
        elems.len() <= 18,
        "partial enumeration limited to 18 candidates"
    );
    let mut best: Option<Outcome> = None;
    let consider = |out: Outcome, best: &mut Option<Outcome>| {
        // total_cmp keeps the winner well-defined under -0.0; ties keep
        // the earlier (smaller-seed) completion. A NaN-valued completion
        // ranks below every finite one (it is only kept while nothing
        // else exists, so the final `expect` cannot fire).
        let better = match best {
            None => true,
            Some(_) if out.value.is_nan() => false,
            Some(b) if b.value.is_nan() => true,
            Some(b) => out.value.total_cmp(&b.value).is_gt(),
        };
        if better {
            *best = Some(out);
        }
    };

    // Seeds of size 0..=3.
    let mut seeds: Vec<Vec<usize>> = vec![vec![]];
    for (i, &a) in elems.iter().enumerate() {
        seeds.push(vec![a]);
        for (j, &b) in elems.iter().enumerate().skip(i + 1) {
            seeds.push(vec![a, b]);
            for &c in elems.iter().skip(j + 1) {
                seeds.push(vec![a, b, c]);
            }
        }
    }

    for seed in seeds {
        let seed_cost: f64 = seed.iter().map(|&e| decomp.cost(e).max(0.0)).sum();
        if seed_cost > budget + 1e-12 {
            continue;
        }
        let seeded = BitSet::from_iter(n, seed.iter().copied());
        // Complete greedily over the remaining candidates and budget.
        let remaining: BitSet = {
            let mut r = candidates.clone();
            r.difference_with(&seeded);
            r
        };
        let completion =
            knapsack_ratio_greedy_from(f_m, decomp, &remaining, budget - seed_cost, &seeded);
        consider(completion, &mut best);
    }
    best.expect("at least the empty seed is feasible")
}

/// Ratio greedy starting from a non-empty base set (helper for the
/// partial-enumeration outer loop).
fn knapsack_ratio_greedy_from<F: SetFunction>(
    f_m: &F,
    decomp: &Decomposition,
    candidates: &BitSet,
    budget: f64,
    base: &BitSet,
) -> Outcome {
    let n = f_m.universe();
    let mut out = Outcome::new(n);
    out.set = base.clone();
    let mut value = f_m.eval(&out.set);
    out.evaluations += 1;
    let mut spent = 0.0;
    let mut active: Vec<usize> = candidates
        .iter()
        .filter(|&e| decomp.cost(e) > 0.0)
        .collect();

    loop {
        let mut best: Option<(usize, usize, f64)> = None;
        let mut feasible = Vec::with_capacity(active.len());
        for &e in &active {
            if spent + decomp.cost(e) > budget + 1e-12 {
                continue;
            }
            feasible.push(e);
            let ratio = f_m.marginal(e, &out.set) / decomp.cost(e);
            out.evaluations += 1;
            if best.is_none_or(|(_, be, r)| super::better_score(ratio, e, r, be)) {
                best = Some((feasible.len() - 1, e, ratio));
            }
        }
        active = feasible;
        match best {
            Some((pos, e, ratio)) if ratio > 0.0 => {
                out.set.insert(e);
                spent += decomp.cost(e);
                value = f_m.eval(&out.set);
                out.evaluations += 1;
                out.picks.push(Pick {
                    element: e,
                    score: ratio,
                    value_after: value,
                });
                active.swap_remove(pos);
            }
            _ => break,
        }
    }
    out.value = value;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::exhaustive::exhaustive_max;
    use crate::algorithms::marginal_greedy::{marginal_greedy, Config};
    use crate::decompose::Decomposition;
    use crate::function::{FnSetFunction, SetFunction};
    use crate::instances::profitted::ProfittedMaxCoverage;
    use crate::instances::random::random_coverage;
    use crate::instances::random::CoverageParams;

    /// The monotone part f*_M of a decomposition as an owned function.
    struct Monotone<'a, F: SetFunction> {
        f: &'a F,
        d: &'a Decomposition,
    }
    impl<F: SetFunction> SetFunction for Monotone<'_, F> {
        fn universe(&self) -> usize {
            self.f.universe()
        }
        fn eval(&self, s: &BitSet) -> f64 {
            self.d.monotone_value(self.f, s)
        }
        fn marginal(&self, e: usize, s: &BitSet) -> f64 {
            self.d.monotone_marginal(self.f, e, s)
        }
    }

    #[test]
    fn respects_budget() {
        let f = random_coverage(
            CoverageParams {
                n_sets: 10,
                n_items: 20,
                ..Default::default()
            },
            5,
        );
        let d = Decomposition::from_costs(vec![1.0; 10]);
        let out = knapsack_ratio_greedy(&f, &d, &BitSet::full(10), 3.0);
        assert!(out.set.len() <= 3);
    }

    #[test]
    fn sviridenko_achieves_1_minus_1_over_e_on_coverage() {
        for seed in 0..5 {
            let f = random_coverage(
                CoverageParams {
                    n_sets: 8,
                    n_items: 14,
                    density: 0.35,
                    ..Default::default()
                },
                seed,
            );
            let costs: Vec<f64> = (0..8).map(|e| 1.0 + (e % 3) as f64).collect();
            let d = Decomposition::from_costs(costs.clone());
            let budget = 4.0;
            let out = sviridenko(&f, &d, &BitSet::full(8), budget);
            // Exhaustive optimum under the budget.
            let mut best = 0.0f64;
            for s in crate::bitset::all_subsets(8) {
                let cost: f64 = s.iter().map(|e| costs[e]).sum();
                if cost <= budget {
                    best = best.max(f.eval(&s));
                }
            }
            let ratio = 1.0 - 1.0 / std::f64::consts::E;
            assert!(
                out.value >= ratio * best - 1e-9,
                "seed {seed}: {} < (1-1/e)·{best}",
                out.value
            );
        }
    }

    #[test]
    fn paper_remark_budget_c_theta_recovers_marginal_greedy() {
        // Section 3.1: the knapsack ratio greedy with budget c(Θ) picks the
        // same set as MarginalGreedy. Verified on Profitted Max Coverage
        // hard instances, where Θ is the planted covering collection with
        // c(Θ) = 1/γ.
        for (blocks, size, redundant, gamma) in [(3usize, 4usize, 2usize, 2.0), (2, 5, 2, 1.0)] {
            let inst = ProfittedMaxCoverage::hard_instance(blocks, size, redundant, gamma);
            let n = inst.universe();
            let d = Decomposition::canonical(&inst);
            let full = BitSet::full(n);
            let (theta, _) = exhaustive_max(&inst, &full);
            let budget = d.cost_of(&theta);

            let mg = marginal_greedy(&inst, &d, &full, Config::default());
            let fm = Monotone { f: &inst, d: &d };
            let ks = knapsack_ratio_greedy(&fm, &d, &full, budget);
            assert_eq!(
                mg.set, ks.set,
                "γ={gamma}: budget c(Θ) must recover the MarginalGreedy set"
            );
        }
    }

    #[test]
    fn zero_budget_returns_empty() {
        let f = FnSetFunction::new(4, |s: &BitSet| s.len() as f64);
        let d = Decomposition::from_costs(vec![1.0; 4]);
        let out = knapsack_ratio_greedy(&f, &d, &BitSet::full(4), 0.0);
        assert!(out.set.is_empty());
    }

    #[test]
    fn sviridenko_at_least_as_good_as_plain_greedy() {
        // The classic knapsack-greedy failure mode: one big item the plain
        // ratio greedy skips. Partial enumeration must not lose to plain.
        for seed in 0..8 {
            let f = random_coverage(
                CoverageParams {
                    n_sets: 9,
                    n_items: 16,
                    density: 0.3,
                    ..Default::default()
                },
                seed,
            );
            let costs: Vec<f64> = (0..9).map(|e| 1.0 + (e * 7 % 5) as f64).collect();
            let d = Decomposition::from_costs(costs);
            let budget = 6.0;
            let full = BitSet::full(9);
            let plain = knapsack_ratio_greedy(&f, &d, &full, budget);
            let enumerated = sviridenko(&f, &d, &full, budget);
            assert!(
                enumerated.value >= plain.value - 1e-9,
                "seed {seed}: {} < {}",
                enumerated.value,
                plain.value
            );
        }
    }
}
