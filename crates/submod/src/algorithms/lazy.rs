//! The LazyMarginalGreedy algorithm (Section 5.2).
//!
//! In each iteration MarginalGreedy needs the element maximizing the
//! marginal-benefit to cost ratio `f'_M(e, X)/c(e)`. The cost denominator is
//! fixed and, by submodularity of `f_M`, the numerator is nonincreasing over
//! iterations — so a stale ratio is always an *upper bound* on the current
//! one. The lazy variant keeps those stale bounds in a max-heap and only
//! recomputes the ratio of the popped element; if the refreshed value still
//! dominates the next heap top, it is the true argmax and no other element
//! needs to be touched. This is Minoux's accelerated greedy \[16] adapted to
//! the ratio rule, and the same idea Pyro used under the "monotonicity
//! heuristic".

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::bitset::BitSet;
use crate::decompose::Decomposition;
use crate::function::SetFunction;

use super::marginal_greedy::Config;
use super::{past_deadline, Outcome, Pick};

/// Heap entry ordered by the (possibly stale) ratio upper bound.
struct Entry {
    bound: f64,
    element: usize,
    /// `f'(element, X)` at the time the bound was computed, so accepting
    /// the entry needs no extra oracle call.
    marginal: f64,
    /// Iteration at which the bound was computed; entries refreshed in the
    /// current iteration are exact.
    epoch: usize,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        // Consistent with `Ord` below: IEEE `==` on the bound would
        // disagree with `total_cmp` for NaN (never equal to itself) and
        // ±0.0 (equal but ordered), breaking the `Eq`/`Ord` contract the
        // heap relies on.
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap by bound under the `total_cmp` total order (a NaN ratio
        // ranks above +∞ and is then rejected by the `> 1.0` acceptance
        // guard rather than silently misordering the heap); ties broken by
        // smaller element index so lazy and eager versions agree on
        // tie-breaks deterministically.
        self.bound
            .total_cmp(&other.bound)
            .then_with(|| other.element.cmp(&self.element))
    }
}

/// Runs LazyMarginalGreedy; produces the same selection as
/// [`super::marginal_greedy::marginal_greedy`] with strictly fewer (or equal)
/// candidate evaluations.
pub fn lazy_marginal_greedy<F: SetFunction>(
    f: &F,
    decomp: &Decomposition,
    candidates: &BitSet,
    config: Config,
) -> Outcome {
    let n = f.universe();
    debug_assert_eq!(decomp.universe(), n);

    let mut out = Outcome::new(n);
    let mut value = f.eval(&out.set);
    out.evaluations += 1;

    let mut free: Vec<usize> = Vec::new();
    let mut heap: BinaryHeap<Entry> = BinaryHeap::new();
    // Initial exact ratios at X = ∅ (epoch 0 entries are exact for the first
    // pick). The marginal rides along in the entry so accepting a pick
    // needs no extra oracle call — the same arithmetic as the eager
    // variant, `(f'(e, X) + c(e)) / c(e)`.
    let mut seeded_all = true;
    for e in candidates.iter() {
        if past_deadline(config.deadline) {
            // Unseeded candidates were never observed: the headroom
            // certificate below degrades to vacuous (+∞).
            out.truncated = true;
            seeded_all = false;
            break;
        }
        let cost = decomp.cost(e);
        if cost <= 0.0 {
            free.push(e);
            continue;
        }
        let m = f.marginal(e, &out.set);
        let ratio = (m + cost) / cost;
        out.evaluations += 1;
        if config.prune_ratio_below_one && ratio <= 1.0 {
            // Pruned ⇒ m ≤ 0 (cost > 0), so the element contributes
            // nothing to the headroom bound either.
            continue;
        }
        heap.push(Entry {
            bound: ratio,
            element: e,
            marginal: m,
            epoch: 0,
        });
    }

    let budget = config.max_picks.unwrap_or(usize::MAX);
    let mut epoch = 0usize;
    let mut hit_deadline = false;

    while seeded_all && out.picks.len() < budget {
        // Find the true argmax by refreshing stale heads.
        let best = loop {
            if past_deadline(config.deadline) {
                // Leave unrefreshed entries in the heap: their stale
                // bounds still feed the headroom certificate.
                hit_deadline = true;
                break None;
            }
            let Some(top) = heap.pop() else { break None };
            if top.epoch == epoch {
                // Exact for the current X: it dominated every other bound,
                // and bounds overestimate, so it is the true argmax.
                break Some(top);
            }
            let cost = decomp.cost(top.element);
            let m = f.marginal(top.element, &out.set);
            let ratio = (m + cost) / cost;
            out.evaluations += 1;
            if config.prune_ratio_below_one && ratio <= 1.0 {
                continue; // permanently pruned
            }
            let refreshed = Entry {
                bound: ratio,
                element: top.element,
                marginal: m,
                epoch,
            };
            if heap.peek().is_none_or(|next| refreshed.cmp(next).is_ge()) {
                break Some(refreshed);
            }
            heap.push(refreshed);
        };

        match best {
            Some(entry) if entry.bound > 1.0 && entry.marginal > config.benefit_floor => {
                out.set.insert(entry.element);
                // The winner's marginal rode along in its heap entry; no
                // extra oracle call.
                value += entry.marginal;
                out.picks.push(Pick {
                    element: entry.element,
                    score: entry.bound,
                    value_after: value,
                });
                epoch += 1;
            }
            Some(entry) if entry.bound > 1.0 => {
                // Still profitable by the ratio rule, but below the floor.
                // Push the winner back so its marginal feeds the headroom
                // certificate.
                out.truncated = true;
                heap.push(entry);
                break;
            }
            Some(entry) => {
                // Converged: the true argmax fails the ratio rule. Push it
                // back for the certificate (its max(0, m) is 0 or tiny).
                heap.push(entry);
                break;
            }
            None => {
                if hit_deadline {
                    out.truncated = true;
                }
                break;
            }
        }
    }

    // Free phase with the same actual-marginal guard as the eager variant
    // (see `marginal_greedy`): a no-op under true submodularity, protective
    // on functions that violate the monotonicity heuristic.
    let mut free_unobserved = false;
    for e in free {
        if out.set.len() >= budget {
            free_unobserved = true;
            break;
        }
        if past_deadline(config.deadline) {
            out.truncated = true;
            free_unobserved = true;
            break;
        }
        let delta = f.marginal(e, &out.set);
        out.evaluations += 1;
        if delta >= 0.0 {
            out.set.insert(e);
            value += delta;
            out.free_elements.push(e);
        }
    }

    // Headroom certificate (see `Outcome::remaining_bound`): stale heap
    // bounds are upper bounds under submodularity, pruned elements are
    // provably ≤ 0, so the heap sum covers every non-free candidate that
    // was observed at least once. Candidates never observed (seeding cut
    // short, free elements unevaluated) make the bound vacuous.
    out.remaining_bound = if !seeded_all || free_unobserved {
        f64::INFINITY
    } else {
        heap.iter()
            .filter(|entry| !out.set.contains(entry.element))
            .map(|entry| entry.marginal.max(0.0))
            .sum()
    };
    out.value = value;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::marginal_greedy::marginal_greedy;
    use crate::instances::random::{
        random_coverage_minus_cost, random_cut_minus_cost, CoverageParams,
    };

    #[test]
    fn lazy_matches_eager_on_random_instances() {
        for seed in 0..25 {
            let f = random_coverage_minus_cost(
                CoverageParams {
                    n_sets: 12,
                    n_items: 20,
                    ..Default::default()
                },
                1.0,
                seed,
            );
            let decomp = Decomposition::canonical(&f);
            let full = BitSet::full(12);
            let eager = marginal_greedy(&f, &decomp, &full, Config::default());
            let lazy = lazy_marginal_greedy(&f, &decomp, &full, Config::default());
            assert_eq!(eager.set, lazy.set, "seed {seed}");
            assert!((eager.value - lazy.value).abs() < 1e-9);
            assert!(
                lazy.evaluations <= eager.evaluations,
                "lazy did more work than eager (seed {seed}: {} vs {})",
                lazy.evaluations,
                eager.evaluations
            );
        }
    }

    #[test]
    fn lazy_matches_eager_on_cut_instances() {
        for seed in 0..15 {
            let f = random_cut_minus_cost(10, 0.4, seed);
            let decomp = Decomposition::canonical(&f);
            let full = BitSet::full(10);
            let eager = marginal_greedy(&f, &decomp, &full, Config::default());
            let lazy = lazy_marginal_greedy(&f, &decomp, &full, Config::default());
            assert_eq!(eager.set, lazy.set, "seed {seed}");
        }
    }

    #[test]
    fn nan_ratio_terminates_eager_and_lazy_identically() {
        // Element 2's marginal is NaN, so its ratio is NaN. total_cmp ranks
        // it above every finite ratio in both variants, and the `> 1.0`
        // acceptance guard then rejects it in both — each run halts at the
        // same point instead of panicking or diverging between eager and
        // lazy (a NaN oracle conservatively stops the greedy loop).
        use crate::function::FnSetFunction;
        let f = FnSetFunction::new(3, |s: &BitSet| {
            if s.contains(2) {
                return f64::NAN;
            }
            let mut v = 0.0;
            if s.contains(0) {
                v += 5.0;
            }
            if s.contains(1) {
                v += 3.0;
            }
            v
        });
        let decomp = crate::decompose::Decomposition::from_costs(vec![1.0, 1.0, 1.0]);
        let full = BitSet::full(3);
        let eager = marginal_greedy(&f, &decomp, &full, Config::default());
        let lazy = lazy_marginal_greedy(&f, &decomp, &full, Config::default());
        assert_eq!(eager.set, lazy.set);
        assert!(!eager.set.contains(2));
    }

    #[test]
    fn lazy_respects_cardinality_and_candidates() {
        let f = random_coverage_minus_cost(CoverageParams::default(), 0.5, 3);
        let decomp = Decomposition::canonical(&f);
        let candidates = BitSet::from_iter(8, [0, 2, 4, 6]);
        let cfg = Config {
            max_picks: Some(2),
            ..Default::default()
        };
        let eager = marginal_greedy(&f, &decomp, &candidates, cfg);
        let lazy = lazy_marginal_greedy(&f, &decomp, &candidates, cfg);
        assert_eq!(eager.set, lazy.set);
        assert!(lazy.set.len() <= 2);
        for e in lazy.set.iter() {
            assert!(candidates.contains(e));
        }
    }
}
