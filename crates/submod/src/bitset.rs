//! Fixed-universe bitsets used as the set type throughout the crate.
//!
//! All submodular-maximization algorithms in this crate work over a ground
//! set `U = {0, 1, ..., n-1}`. A [`BitSet`] is a subset of such a universe,
//! backed by a `Box<[u64]>` of words. The universe size is fixed at
//! construction; operations on sets from different universes panic in debug
//! builds.

use std::fmt;

/// Number of bits per storage word.
const WORD_BITS: usize = 64;

/// A subset of a fixed universe `{0, ..., n-1}`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    /// Number of elements in the universe (not the set).
    universe: usize,
    words: Box<[u64]>,
}

impl BitSet {
    /// Creates the empty subset of a universe with `universe` elements.
    pub fn empty(universe: usize) -> Self {
        let n_words = universe.div_ceil(WORD_BITS).max(1);
        BitSet {
            universe,
            words: vec![0u64; n_words].into_boxed_slice(),
        }
    }

    /// Creates the full subset `{0, ..., universe-1}`.
    pub fn full(universe: usize) -> Self {
        let mut s = Self::empty(universe);
        for w in s.words.iter_mut() {
            *w = u64::MAX;
        }
        s.clear_tail();
        s
    }

    /// Creates a set from an iterator of element indices.
    pub fn from_iter<I: IntoIterator<Item = usize>>(universe: usize, iter: I) -> Self {
        let mut s = Self::empty(universe);
        for e in iter {
            s.insert(e);
        }
        s
    }

    /// Zeroes any bits beyond the universe in the last word.
    fn clear_tail(&mut self) {
        let used = self.universe % WORD_BITS;
        if used != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << used) - 1;
            }
        }
        if self.universe == 0 {
            for w in self.words.iter_mut() {
                *w = 0;
            }
        }
    }

    /// The universe size this set lives in.
    #[inline]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of elements currently in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Whether the set equals the whole universe.
    pub fn is_full(&self) -> bool {
        self.len() == self.universe
    }

    /// Tests membership of `e`.
    #[inline]
    pub fn contains(&self, e: usize) -> bool {
        debug_assert!(
            e < self.universe,
            "element {e} outside universe {}",
            self.universe
        );
        self.words[e / WORD_BITS] >> (e % WORD_BITS) & 1 == 1
    }

    /// Inserts `e`; returns `true` if it was newly added.
    #[inline]
    pub fn insert(&mut self, e: usize) -> bool {
        debug_assert!(
            e < self.universe,
            "element {e} outside universe {}",
            self.universe
        );
        let w = &mut self.words[e / WORD_BITS];
        let mask = 1u64 << (e % WORD_BITS);
        let added = *w & mask == 0;
        *w |= mask;
        added
    }

    /// Removes `e`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, e: usize) -> bool {
        debug_assert!(
            e < self.universe,
            "element {e} outside universe {}",
            self.universe
        );
        let w = &mut self.words[e / WORD_BITS];
        let mask = 1u64 << (e % WORD_BITS);
        let present = *w & mask != 0;
        *w &= !mask;
        present
    }

    /// Returns a copy of `self` with `e` inserted.
    pub fn with(&self, e: usize) -> Self {
        let mut s = self.clone();
        s.insert(e);
        s
    }

    /// Returns a copy of `self` with `e` removed.
    pub fn without(&self, e: usize) -> Self {
        let mut s = self.clone();
        s.remove(e);
        s
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &Self) -> bool {
        debug_assert_eq!(self.universe, other.universe);
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & !b == 0)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &Self) {
        debug_assert_eq!(self.universe, other.universe);
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &Self) {
        debug_assert_eq!(self.universe, other.universe);
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= b;
        }
    }

    /// In-place difference (`self \ other`).
    pub fn difference_with(&mut self, other: &Self) {
        debug_assert_eq!(self.universe, other.universe);
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= !b;
        }
    }

    /// Returns `self ∪ other`.
    pub fn union(&self, other: &Self) -> Self {
        let mut s = self.clone();
        s.union_with(other);
        s
    }

    /// Returns `self ∩ other`.
    pub fn intersection(&self, other: &Self) -> Self {
        let mut s = self.clone();
        s.intersect_with(other);
        s
    }

    /// Returns `self \ other`.
    pub fn difference(&self, other: &Self) -> Self {
        let mut s = self.clone();
        s.difference_with(other);
        s
    }

    /// Returns the complement `U \ self`.
    pub fn complement(&self) -> Self {
        let mut s = self.clone();
        for w in s.words.iter_mut() {
            *w = !*w;
        }
        s.clear_tail();
        s
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        for w in self.words.iter_mut() {
            *w = 0;
        }
    }

    /// Iterates over elements in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Iterates over the symmetric difference `self △ other` in increasing
    /// order, XOR-ing word pairs on the fly — no intermediate set and no
    /// allocation, unlike `a.difference(b)` / `b.difference(a)` chains.
    /// This is the hot diff primitive of the incremental `bestCost` path.
    pub fn symmetric_difference_iter<'a>(&'a self, other: &'a BitSet) -> SymmetricDifference<'a> {
        debug_assert_eq!(self.universe, other.universe);
        SymmetricDifference {
            a: &self.words,
            b: &other.words,
            word_idx: 0,
            current: match (self.words.first(), other.words.first()) {
                (Some(&x), Some(&y)) => x ^ y,
                _ => 0,
            },
        }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Iterator over the elements of a [`BitSet`] in increasing order.
pub struct Iter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * WORD_BITS + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Iterator over `a △ b` (elements in exactly one of two same-universe
/// sets) in increasing order; see [`BitSet::symmetric_difference_iter`].
pub struct SymmetricDifference<'a> {
    a: &'a [u64],
    b: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for SymmetricDifference<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * WORD_BITS + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.a.len() {
                return None;
            }
            self.current = self.a[self.word_idx] ^ self.b[self.word_idx];
        }
    }
}

/// Enumerates all `2^n` subsets of a universe of size `n` (for exhaustive
/// search in tests; panics if `n > 25` to avoid accidental blow-ups).
pub fn all_subsets(universe: usize) -> impl Iterator<Item = BitSet> {
    assert!(
        universe <= 25,
        "exhaustive subset enumeration limited to universes of size <= 25"
    );
    (0u64..(1u64 << universe)).map(move |mask| {
        let mut s = BitSet::empty(universe);
        for e in 0..universe {
            if mask >> e & 1 == 1 {
                s.insert(e);
            }
        }
        s
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = BitSet::empty(10);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let f = BitSet::full(10);
        assert!(f.is_full());
        assert_eq!(f.len(), 10);
        assert_eq!(f.complement(), e);
        assert_eq!(e.complement(), f);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::empty(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(129));
        assert_eq!(s.len(), 3);
        assert!(s.contains(64));
        assert!(!s.contains(63));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn with_without_do_not_mutate() {
        let s = BitSet::from_iter(8, [1, 3]);
        let t = s.with(5);
        assert!(!s.contains(5));
        assert!(t.contains(5));
        let u = t.without(1);
        assert!(t.contains(1));
        assert!(!u.contains(1));
    }

    #[test]
    fn set_algebra() {
        let a = BitSet::from_iter(70, [0, 1, 65]);
        let b = BitSet::from_iter(70, [1, 2, 65, 69]);
        assert_eq!(a.union(&b), BitSet::from_iter(70, [0, 1, 2, 65, 69]));
        assert_eq!(a.intersection(&b), BitSet::from_iter(70, [1, 65]));
        assert_eq!(a.difference(&b), BitSet::from_iter(70, [0]));
        assert!(a.intersection(&b).is_subset(&a));
        assert!(!a.is_subset(&b));
        assert!(a.is_subset(&a.union(&b)));
    }

    #[test]
    fn iteration_order() {
        let s = BitSet::from_iter(200, [199, 0, 64, 63, 128]);
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![0, 63, 64, 128, 199]);
    }

    #[test]
    fn complement_tail_bits_are_clear() {
        // Universe 67 leaves 61 unused bits in the second word; complement
        // must not set them, or len() would overcount.
        let s = BitSet::from_iter(67, [0, 66]);
        let c = s.complement();
        assert_eq!(c.len(), 65);
        assert!(!c.contains(0));
        assert!(!c.contains(66));
        assert!(c.contains(1));
    }

    #[test]
    fn zero_universe() {
        let s = BitSet::empty(0);
        assert!(s.is_empty());
        assert!(s.is_full());
        assert_eq!(s.iter().count(), 0);
        assert_eq!(BitSet::full(0), s);
    }

    #[test]
    fn all_subsets_enumerates_powerset() {
        let subsets: Vec<BitSet> = all_subsets(4).collect();
        assert_eq!(subsets.len(), 16);
        // All distinct.
        for (i, a) in subsets.iter().enumerate() {
            for b in subsets.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    /// Reference symmetric difference via the allocating set algebra.
    fn sym_diff_reference(a: &BitSet, b: &BitSet) -> Vec<usize> {
        let mut out: Vec<usize> = a.difference(b).iter().collect();
        out.extend(b.difference(a).iter());
        out.sort_unstable();
        out
    }

    #[test]
    fn symmetric_difference_iter_empty() {
        let a = BitSet::empty(70);
        let b = BitSet::empty(70);
        assert_eq!(a.symmetric_difference_iter(&b).count(), 0);
        // Equal non-empty sets also yield nothing.
        let c = BitSet::from_iter(70, [3, 64, 69]);
        assert_eq!(c.symmetric_difference_iter(&c.clone()).count(), 0);
        // Zero-universe sets have one (all-zero) backing word.
        let z = BitSet::empty(0);
        assert_eq!(z.symmetric_difference_iter(&BitSet::empty(0)).count(), 0);
    }

    #[test]
    fn symmetric_difference_iter_dense() {
        // Full vs empty: every element differs, in increasing order.
        let full = BitSet::full(130);
        let empty = BitSet::empty(130);
        let v: Vec<usize> = full.symmetric_difference_iter(&empty).collect();
        assert_eq!(v, (0..130).collect::<Vec<_>>());
        // Dense interleaved sets: evens vs odds differ everywhere.
        let evens = BitSet::from_iter(130, (0..130).step_by(2));
        let odds = BitSet::from_iter(130, (1..130).step_by(2));
        let v: Vec<usize> = evens.symmetric_difference_iter(&odds).collect();
        assert_eq!(v, (0..130).collect::<Vec<_>>());
    }

    #[test]
    fn symmetric_difference_iter_word_boundaries() {
        // Differences placed on and around the 64-bit word seams, including
        // the last element of a non-multiple-of-64 universe.
        let a = BitSet::from_iter(193, [0, 63, 64, 127, 128, 192]);
        let b = BitSet::from_iter(193, [0, 64, 128, 191]);
        let v: Vec<usize> = a.symmetric_difference_iter(&b).collect();
        assert_eq!(v, vec![63, 127, 191, 192]);
        // Exact word-multiple universe.
        let c = BitSet::from_iter(128, [0, 127]);
        let d = BitSet::from_iter(128, [127]);
        let v: Vec<usize> = c.symmetric_difference_iter(&d).collect();
        assert_eq!(v, vec![0]);
    }

    #[test]
    fn symmetric_difference_iter_matches_reference_sweep() {
        // Pseudo-random sweep against the allocating reference.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for universe in [1usize, 64, 65, 100, 192, 200] {
            for _ in 0..20 {
                let bits_a = next();
                let bits_b = next();
                let a = BitSet::from_iter(
                    universe,
                    (0..universe).filter(|e| (bits_a >> (e % 64)) & 1 == 1),
                );
                let b = BitSet::from_iter(
                    universe,
                    (0..universe).filter(|e| (bits_b >> (e % 61)) & 1 == 1),
                );
                let got: Vec<usize> = a.symmetric_difference_iter(&b).collect();
                assert_eq!(got, sym_diff_reference(&a, &b), "universe {universe}");
            }
        }
    }

    #[test]
    fn exact_word_boundary_universe() {
        let f = BitSet::full(64);
        assert_eq!(f.len(), 64);
        assert!(f.is_full());
        let c = f.complement();
        assert!(c.is_empty());
    }
}
