//! Fixed-universe bitsets used as the set type throughout the crate.
//!
//! All submodular-maximization algorithms in this crate work over a ground
//! set `U = {0, 1, ..., n-1}`. A [`BitSet`] is a subset of such a universe,
//! backed by a `Box<[u64]>` of words. The universe size is fixed at
//! construction.
//!
//! # Cross-universe operations panic
//!
//! Every binary operation (`union_with`, `intersect_with`,
//! `difference_with`, `is_subset`, the fused popcount kernels, the
//! symmetric-difference iterator) **panics** when the two operands come
//! from different universes — in release builds too, not just debug. An
//! earlier version only `debug_assert`ed and silently truncated the
//! word-wise zip to the shorter operand in release builds, which turns a
//! caller bug into a wrong answer; a universe mismatch is always a logic
//! error, so it is now pinned as a hard contract (element-level
//! out-of-range handling, where a policy other than panicking is wanted,
//! lives in the consumers — see `BestCostEngine::truncate_to_universe`).
//!
//! # Word-parallel kernels
//!
//! The hot paths of the MQO pipeline at large universes (10k+ candidate
//! sets span 157+ words) are set *comparisons*, not mutations: the rebase
//! decision of the incremental `bestCost` oracle measures `|A △ B|`
//! against a threshold, and greedy argmax rounds compare candidate sets
//! against a shared base. The fused kernels ([`BitSet::intersection_len`],
//! [`BitSet::union_len`], [`BitSet::difference_len`],
//! [`BitSet::symmetric_difference_len`],
//! [`BitSet::symmetric_difference_len_capped`], [`BitSet::is_disjoint`])
//! combine the word-wise operation with the popcount in one pass — no
//! intermediate set, no allocation — and [`BitSet::is_subset`] and the
//! symmetric-difference iterator process 4-word blocks so sparse diffs
//! skip equal regions at memory-bandwidth speed.

use std::fmt;

/// Number of bits per storage word.
const WORD_BITS: usize = 64;

/// Words per block for the blocked kernels: 4 × u64 = one 32-byte lane
/// pair, small enough to stay in registers, large enough that skipping an
/// all-equal block amortizes the loop overhead on multi-hundred-word sets.
const BLOCK_WORDS: usize = 4;

/// A subset of a fixed universe `{0, ..., n-1}`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    /// Number of elements in the universe (not the set).
    universe: usize,
    words: Box<[u64]>,
}

impl BitSet {
    /// Creates the empty subset of a universe with `universe` elements.
    pub fn empty(universe: usize) -> Self {
        let n_words = universe.div_ceil(WORD_BITS).max(1);
        BitSet {
            universe,
            words: vec![0u64; n_words].into_boxed_slice(),
        }
    }

    /// Creates the full subset `{0, ..., universe-1}`.
    pub fn full(universe: usize) -> Self {
        let mut s = Self::empty(universe);
        for w in s.words.iter_mut() {
            *w = u64::MAX;
        }
        s.clear_tail();
        s
    }

    /// Creates a set from an iterator of element indices.
    pub fn from_iter<I: IntoIterator<Item = usize>>(universe: usize, iter: I) -> Self {
        let mut s = Self::empty(universe);
        for e in iter {
            s.insert(e);
        }
        s
    }

    /// Zeroes any bits beyond the universe in the last word.
    fn clear_tail(&mut self) {
        let used = self.universe % WORD_BITS;
        if used != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << used) - 1;
            }
        }
        if self.universe == 0 {
            for w in self.words.iter_mut() {
                *w = 0;
            }
        }
    }

    /// The universe size this set lives in.
    #[inline]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of elements currently in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Whether the set equals the whole universe.
    pub fn is_full(&self) -> bool {
        self.len() == self.universe
    }

    /// Tests membership of `e`.
    #[inline]
    pub fn contains(&self, e: usize) -> bool {
        debug_assert!(
            e < self.universe,
            "element {e} outside universe {}",
            self.universe
        );
        self.words[e / WORD_BITS] >> (e % WORD_BITS) & 1 == 1
    }

    /// Inserts `e`; returns `true` if it was newly added.
    #[inline]
    pub fn insert(&mut self, e: usize) -> bool {
        debug_assert!(
            e < self.universe,
            "element {e} outside universe {}",
            self.universe
        );
        let w = &mut self.words[e / WORD_BITS];
        let mask = 1u64 << (e % WORD_BITS);
        let added = *w & mask == 0;
        *w |= mask;
        added
    }

    /// Removes `e`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, e: usize) -> bool {
        debug_assert!(
            e < self.universe,
            "element {e} outside universe {}",
            self.universe
        );
        let w = &mut self.words[e / WORD_BITS];
        let mask = 1u64 << (e % WORD_BITS);
        let present = *w & mask != 0;
        *w &= !mask;
        present
    }

    /// Returns a copy of `self` with `e` inserted.
    pub fn with(&self, e: usize) -> Self {
        let mut s = self.clone();
        s.insert(e);
        s
    }

    /// Returns a copy of `self` with `e` removed.
    pub fn without(&self, e: usize) -> Self {
        let mut s = self.clone();
        s.remove(e);
        s
    }

    /// Panics (in every build profile) unless `other` lives in the same
    /// universe; see the module docs for the cross-universe contract.
    #[inline]
    #[track_caller]
    fn check_same_universe(&self, other: &Self) {
        assert_eq!(
            self.universe, other.universe,
            "BitSet universe mismatch: {} vs {}",
            self.universe, other.universe
        );
    }

    /// Whether `self ⊆ other`. Blocked: 4-word chunks are tested with one
    /// OR-combined violation mask each, so the common all-contained prefix
    /// is scanned without per-word branching and the first violating block
    /// exits early.
    pub fn is_subset(&self, other: &Self) -> bool {
        self.check_same_universe(other);
        let (a_blocks, a_tail) = as_blocks(&self.words);
        let (b_blocks, b_tail) = as_blocks(&other.words);
        for (a, b) in a_blocks.zip(b_blocks) {
            let violation = (a[0] & !b[0]) | (a[1] & !b[1]) | (a[2] & !b[2]) | (a[3] & !b[3]);
            if violation != 0 {
                return false;
            }
        }
        a_tail.iter().zip(b_tail).all(|(a, b)| a & !b == 0)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &Self) {
        self.check_same_universe(other);
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &Self) {
        self.check_same_universe(other);
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= b;
        }
    }

    /// In-place difference (`self \ other`).
    pub fn difference_with(&mut self, other: &Self) {
        self.check_same_universe(other);
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= !b;
        }
    }

    /// Makes `self` a copy of `other` without allocating when the two sets
    /// already share a universe (the common case: round buffers reused
    /// across greedy iterations). Falls back to a fresh clone on a
    /// universe change.
    pub fn copy_from(&mut self, other: &Self) {
        if self.universe == other.universe {
            self.words.copy_from_slice(&other.words);
        } else {
            *self = other.clone();
        }
    }

    /// `|self ∩ other|` without materializing the intersection: fused
    /// AND + popcount per word.
    pub fn intersection_len(&self, other: &Self) -> usize {
        self.check_same_universe(other);
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// `|self ∪ other|` without materializing the union: fused OR +
    /// popcount per word.
    pub fn union_len(&self, other: &Self) -> usize {
        self.check_same_universe(other);
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a | b).count_ones() as usize)
            .sum()
    }

    /// `|self \ other|` without materializing the difference: fused
    /// AND-NOT + popcount per word.
    pub fn difference_len(&self, other: &Self) -> usize {
        self.check_same_universe(other);
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a & !b).count_ones() as usize)
            .sum()
    }

    /// `|self △ other|` without materializing either difference: fused
    /// XOR + popcount per word.
    pub fn symmetric_difference_len(&self, other: &Self) -> usize {
        self.check_same_universe(other);
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// [`Self::symmetric_difference_len`] with an early exit: exact while
    /// the count is `<= cap`, and otherwise some value `> cap` (the scan
    /// stops at the first 4-word block that pushes the count past the
    /// cap). This is the rebase-decision kernel of the incremental
    /// `bestCost` oracle: "is this candidate within `threshold` elements
    /// of the committed base?" needs no exact distance for far candidates.
    pub fn symmetric_difference_len_capped(&self, other: &Self, cap: usize) -> usize {
        self.check_same_universe(other);
        let (a_blocks, a_tail) = as_blocks(&self.words);
        let (b_blocks, b_tail) = as_blocks(&other.words);
        let mut count = 0usize;
        for (a, b) in a_blocks.zip(b_blocks) {
            count += (a[0] ^ b[0]).count_ones() as usize
                + (a[1] ^ b[1]).count_ones() as usize
                + (a[2] ^ b[2]).count_ones() as usize
                + (a[3] ^ b[3]).count_ones() as usize;
            if count > cap {
                return count;
            }
        }
        for (a, b) in a_tail.iter().zip(b_tail) {
            count += (a ^ b).count_ones() as usize;
            if count > cap {
                return count;
            }
        }
        count
    }

    /// Whether `self ∩ other = ∅`, blocked with an early exit at the first
    /// overlapping 4-word chunk.
    pub fn is_disjoint(&self, other: &Self) -> bool {
        self.check_same_universe(other);
        let (a_blocks, a_tail) = as_blocks(&self.words);
        let (b_blocks, b_tail) = as_blocks(&other.words);
        for (a, b) in a_blocks.zip(b_blocks) {
            let overlap = (a[0] & b[0]) | (a[1] & b[1]) | (a[2] & b[2]) | (a[3] & b[3]);
            if overlap != 0 {
                return false;
            }
        }
        a_tail.iter().zip(b_tail).all(|(a, b)| a & b == 0)
    }

    /// Returns `self ∪ other`.
    pub fn union(&self, other: &Self) -> Self {
        let mut s = self.clone();
        s.union_with(other);
        s
    }

    /// Returns `self ∩ other`.
    pub fn intersection(&self, other: &Self) -> Self {
        let mut s = self.clone();
        s.intersect_with(other);
        s
    }

    /// Returns `self \ other`.
    pub fn difference(&self, other: &Self) -> Self {
        let mut s = self.clone();
        s.difference_with(other);
        s
    }

    /// Returns the complement `U \ self`.
    pub fn complement(&self) -> Self {
        let mut s = self.clone();
        for w in s.words.iter_mut() {
            *w = !*w;
        }
        s.clear_tail();
        s
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        for w in self.words.iter_mut() {
            *w = 0;
        }
    }

    /// Iterates over elements in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Iterates over the symmetric difference `self △ other` in increasing
    /// order, XOR-ing word pairs on the fly — no intermediate set and no
    /// allocation, unlike `a.difference(b)` / `b.difference(a)` chains.
    /// This is the hot diff primitive of the incremental `bestCost` path.
    pub fn symmetric_difference_iter<'a>(&'a self, other: &'a BitSet) -> SymmetricDifference<'a> {
        self.check_same_universe(other);
        SymmetricDifference {
            a: &self.words,
            b: &other.words,
            word_idx: 0,
            current: match (self.words.first(), other.words.first()) {
                (Some(&x), Some(&y)) => x ^ y,
                _ => 0,
            },
        }
    }
}

/// Splits a word slice into an iterator of full 4-word blocks plus the
/// tail, for the blocked kernels.
#[inline]
fn as_blocks(words: &[u64]) -> (std::slice::ChunksExact<'_, u64>, &[u64]) {
    let blocks = words.chunks_exact(BLOCK_WORDS);
    let tail = blocks.remainder();
    (blocks, tail)
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Iterator over the elements of a [`BitSet`] in increasing order.
pub struct Iter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * WORD_BITS + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Iterator over `a △ b` (elements in exactly one of two same-universe
/// sets) in increasing order; see [`BitSet::symmetric_difference_iter`].
pub struct SymmetricDifference<'a> {
    a: &'a [u64],
    b: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for SymmetricDifference<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * WORD_BITS + bit);
            }
            self.word_idx += 1;
            // Skip all-equal 4-word blocks with a single OR-combined XOR
            // mask each; on the sparse diffs the incremental oracle feeds
            // this iterator, most of the set is identical and this refill
            // is the whole cost.
            while self.word_idx + BLOCK_WORDS <= self.a.len() {
                let a = &self.a[self.word_idx..self.word_idx + BLOCK_WORDS];
                let b = &self.b[self.word_idx..self.word_idx + BLOCK_WORDS];
                if (a[0] ^ b[0]) | (a[1] ^ b[1]) | (a[2] ^ b[2]) | (a[3] ^ b[3]) != 0 {
                    break;
                }
                self.word_idx += BLOCK_WORDS;
            }
            if self.word_idx >= self.a.len() {
                return None;
            }
            self.current = self.a[self.word_idx] ^ self.b[self.word_idx];
        }
    }
}

/// Enumerates all `2^n` subsets of a universe of size `n` (for exhaustive
/// search in tests; panics if `n > 25` to avoid accidental blow-ups).
pub fn all_subsets(universe: usize) -> impl Iterator<Item = BitSet> {
    assert!(
        universe <= 25,
        "exhaustive subset enumeration limited to universes of size <= 25"
    );
    (0u64..(1u64 << universe)).map(move |mask| {
        let mut s = BitSet::empty(universe);
        for e in 0..universe {
            if mask >> e & 1 == 1 {
                s.insert(e);
            }
        }
        s
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = BitSet::empty(10);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let f = BitSet::full(10);
        assert!(f.is_full());
        assert_eq!(f.len(), 10);
        assert_eq!(f.complement(), e);
        assert_eq!(e.complement(), f);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::empty(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(129));
        assert_eq!(s.len(), 3);
        assert!(s.contains(64));
        assert!(!s.contains(63));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn with_without_do_not_mutate() {
        let s = BitSet::from_iter(8, [1, 3]);
        let t = s.with(5);
        assert!(!s.contains(5));
        assert!(t.contains(5));
        let u = t.without(1);
        assert!(t.contains(1));
        assert!(!u.contains(1));
    }

    #[test]
    fn set_algebra() {
        let a = BitSet::from_iter(70, [0, 1, 65]);
        let b = BitSet::from_iter(70, [1, 2, 65, 69]);
        assert_eq!(a.union(&b), BitSet::from_iter(70, [0, 1, 2, 65, 69]));
        assert_eq!(a.intersection(&b), BitSet::from_iter(70, [1, 65]));
        assert_eq!(a.difference(&b), BitSet::from_iter(70, [0]));
        assert!(a.intersection(&b).is_subset(&a));
        assert!(!a.is_subset(&b));
        assert!(a.is_subset(&a.union(&b)));
    }

    #[test]
    fn iteration_order() {
        let s = BitSet::from_iter(200, [199, 0, 64, 63, 128]);
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![0, 63, 64, 128, 199]);
    }

    #[test]
    fn complement_tail_bits_are_clear() {
        // Universe 67 leaves 61 unused bits in the second word; complement
        // must not set them, or len() would overcount.
        let s = BitSet::from_iter(67, [0, 66]);
        let c = s.complement();
        assert_eq!(c.len(), 65);
        assert!(!c.contains(0));
        assert!(!c.contains(66));
        assert!(c.contains(1));
    }

    #[test]
    fn zero_universe() {
        let s = BitSet::empty(0);
        assert!(s.is_empty());
        assert!(s.is_full());
        assert_eq!(s.iter().count(), 0);
        assert_eq!(BitSet::full(0), s);
    }

    #[test]
    fn all_subsets_enumerates_powerset() {
        let subsets: Vec<BitSet> = all_subsets(4).collect();
        assert_eq!(subsets.len(), 16);
        // All distinct.
        for (i, a) in subsets.iter().enumerate() {
            for b in subsets.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    /// Reference symmetric difference via the allocating set algebra.
    fn sym_diff_reference(a: &BitSet, b: &BitSet) -> Vec<usize> {
        let mut out: Vec<usize> = a.difference(b).iter().collect();
        out.extend(b.difference(a).iter());
        out.sort_unstable();
        out
    }

    #[test]
    fn symmetric_difference_iter_empty() {
        let a = BitSet::empty(70);
        let b = BitSet::empty(70);
        assert_eq!(a.symmetric_difference_iter(&b).count(), 0);
        // Equal non-empty sets also yield nothing.
        let c = BitSet::from_iter(70, [3, 64, 69]);
        assert_eq!(c.symmetric_difference_iter(&c.clone()).count(), 0);
        // Zero-universe sets have one (all-zero) backing word.
        let z = BitSet::empty(0);
        assert_eq!(z.symmetric_difference_iter(&BitSet::empty(0)).count(), 0);
    }

    #[test]
    fn symmetric_difference_iter_dense() {
        // Full vs empty: every element differs, in increasing order.
        let full = BitSet::full(130);
        let empty = BitSet::empty(130);
        let v: Vec<usize> = full.symmetric_difference_iter(&empty).collect();
        assert_eq!(v, (0..130).collect::<Vec<_>>());
        // Dense interleaved sets: evens vs odds differ everywhere.
        let evens = BitSet::from_iter(130, (0..130).step_by(2));
        let odds = BitSet::from_iter(130, (1..130).step_by(2));
        let v: Vec<usize> = evens.symmetric_difference_iter(&odds).collect();
        assert_eq!(v, (0..130).collect::<Vec<_>>());
    }

    #[test]
    fn symmetric_difference_iter_word_boundaries() {
        // Differences placed on and around the 64-bit word seams, including
        // the last element of a non-multiple-of-64 universe.
        let a = BitSet::from_iter(193, [0, 63, 64, 127, 128, 192]);
        let b = BitSet::from_iter(193, [0, 64, 128, 191]);
        let v: Vec<usize> = a.symmetric_difference_iter(&b).collect();
        assert_eq!(v, vec![63, 127, 191, 192]);
        // Exact word-multiple universe.
        let c = BitSet::from_iter(128, [0, 127]);
        let d = BitSet::from_iter(128, [127]);
        let v: Vec<usize> = c.symmetric_difference_iter(&d).collect();
        assert_eq!(v, vec![0]);
    }

    use crate::prng::{seeded_sweep, Prng};

    /// Universes the kernel sweeps run at: word seams (63/64/65), an exact
    /// block boundary (4 × 64 = 256 ± 1), and a multi-hundred-word size in
    /// the regime the blocked kernels target.
    const SWEEP_UNIVERSES: [usize; 8] = [1, 63, 64, 65, 128, 255, 257, 10_240];

    /// Samples a random subset with density `p`, biased toward sparse and
    /// dense extremes so the blocked skip paths (all-equal / all-different
    /// chunks) are actually exercised.
    fn random_set(rng: &mut Prng, universe: usize) -> BitSet {
        let p = match rng.gen_range(0usize..4) {
            0 => 0.02,
            1 => 0.5,
            2 => 0.98,
            _ => rng.gen_range(0.0..1.0),
        };
        BitSet::from_iter(universe, (0..universe).filter(|_| rng.gen_bool(p)))
    }

    /// A near-copy of `base` with a few flipped elements — the shape the
    /// rebase-decision kernels see (candidate vs committed base).
    fn perturbed(rng: &mut Prng, base: &BitSet) -> BitSet {
        let universe = base.universe();
        let mut s = base.clone();
        let flips = rng.gen_range(0usize..8.min(universe + 1));
        for _ in 0..flips {
            let e = rng.gen_range(0..universe.max(1)).min(universe - 1);
            if s.contains(e) {
                s.remove(e);
            } else {
                s.insert(e);
            }
        }
        s
    }

    #[test]
    fn symmetric_difference_iter_matches_reference_sweep() {
        seeded_sweep("sym_diff_iter_vs_reference", 0x00B1_75E7_D1FF, 60, |rng| {
            let universe = SWEEP_UNIVERSES[rng.gen_range(0..SWEEP_UNIVERSES.len())];
            let a = random_set(rng, universe);
            let b = if rng.gen_bool(0.5) {
                random_set(rng, universe)
            } else {
                perturbed(rng, &a)
            };
            let got: Vec<usize> = a.symmetric_difference_iter(&b).collect();
            assert_eq!(got, sym_diff_reference(&a, &b), "universe {universe}");
        });
    }

    #[test]
    fn fused_len_kernels_match_materialized_ops_sweep() {
        seeded_sweep("fused_len_vs_materialized", 0xF05E_D1E5, 60, |rng| {
            let universe = SWEEP_UNIVERSES[rng.gen_range(0..SWEEP_UNIVERSES.len())];
            let a = random_set(rng, universe);
            let b = random_set(rng, universe);
            assert_eq!(a.intersection_len(&b), a.intersection(&b).len());
            assert_eq!(a.union_len(&b), a.union(&b).len());
            assert_eq!(a.difference_len(&b), a.difference(&b).len());
            let sym = a.difference(&b).union(&b.difference(&a)).len();
            assert_eq!(a.symmetric_difference_len(&b), sym);
            assert_eq!(a.is_disjoint(&b), a.intersection(&b).is_empty());
        });
    }

    #[test]
    fn capped_symmetric_difference_len_sweep() {
        seeded_sweep("sym_diff_len_capped", 0x00CA_99ED, 60, |rng| {
            let universe = SWEEP_UNIVERSES[rng.gen_range(0..SWEEP_UNIVERSES.len())];
            let a = random_set(rng, universe);
            let b = if rng.gen_bool(0.5) {
                random_set(rng, universe)
            } else {
                perturbed(rng, &a)
            };
            let exact = a.symmetric_difference_len(&b);
            for cap in [0usize, 1, 4, 8, exact, exact + 1, usize::MAX] {
                let got = a.symmetric_difference_len_capped(&b, cap);
                if exact <= cap {
                    assert_eq!(got, exact, "cap {cap} >= exact {exact} must be exact");
                } else {
                    assert!(got > cap, "cap {cap} < exact {exact}: got {got}");
                }
            }
        });
    }

    #[test]
    fn blocked_is_subset_matches_reference_sweep() {
        seeded_sweep("is_subset_blocked_vs_reference", 0x5_0B5E7, 60, |rng| {
            let universe = SWEEP_UNIVERSES[rng.gen_range(0..SWEEP_UNIVERSES.len())];
            let b = random_set(rng, universe);
            // Mix genuine subsets (intersections of b) with arbitrary sets
            // so both outcomes occur at every universe size.
            let a = if rng.gen_bool(0.5) {
                random_set(rng, universe).intersection(&b)
            } else {
                random_set(rng, universe)
            };
            let reference = a.iter().all(|e| b.contains(e));
            assert_eq!(a.is_subset(&b), reference);
        });
    }

    #[test]
    fn copy_from_reuses_and_reallocates() {
        let src = BitSet::from_iter(300, [0, 64, 255, 299]);
        let mut dst = BitSet::full(300);
        dst.copy_from(&src);
        assert_eq!(dst, src);
        // Universe change falls back to a clone.
        let mut other = BitSet::full(10);
        other.copy_from(&src);
        assert_eq!(other, src);
        assert_eq!(other.universe(), 300);
    }

    #[test]
    fn exact_word_boundary_universe() {
        let f = BitSet::full(64);
        assert_eq!(f.len(), 64);
        assert!(f.is_full());
        let c = f.complement();
        assert!(c.is_empty());
    }

    // Cross-universe operations must panic in every build profile — the
    // module-level contract pinned by satellite work in this PR.

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn cross_universe_union_panics() {
        BitSet::empty(64).union_with(&BitSet::empty(65));
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn cross_universe_intersect_panics() {
        BitSet::empty(65).intersect_with(&BitSet::empty(64));
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn cross_universe_difference_panics() {
        BitSet::empty(128).difference_with(&BitSet::empty(64));
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn cross_universe_is_subset_panics() {
        let _ = BitSet::empty(64).is_subset(&BitSet::empty(128));
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn cross_universe_fused_len_panics() {
        let _ = BitSet::empty(64).intersection_len(&BitSet::empty(128));
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn cross_universe_sym_diff_iter_panics() {
        let a = BitSet::empty(64);
        let b = BitSet::empty(128);
        let _ = a.symmetric_difference_iter(&b).count();
    }
}
