//! Set-function traits and oracle wrappers.
//!
//! The paper treats `bestCost(Q, S)` — and hence the materialization benefit
//! `mb(S)` — as a black-box oracle over subsets of the shareable nodes
//! (Section 2.2: "The bc(S) function ... is treated as a black-box for the
//! MQO algorithms"). [`SetFunction`] is that black box; everything in
//! [`crate::algorithms`] is written against it.

use std::cell::Cell;
use std::collections::HashMap;

use crate::bitset::BitSet;

/// A real-valued function on subsets of a fixed universe `{0, ..., n-1}`.
///
/// Implementations may use interior mutability for caching; `eval` therefore
/// takes `&self`. Evaluation must be deterministic: the same set always maps
/// to the same value.
pub trait SetFunction {
    /// Size `n` of the ground set.
    fn universe(&self) -> usize;

    /// Evaluates the function on `set`. `set.universe()` must equal
    /// [`Self::universe`].
    fn eval(&self, set: &BitSet) -> f64;

    /// Marginal value `f(S ∪ {e}) − f(S)` (the paper's `f'(e, S)`).
    ///
    /// The default implementation performs two `eval` calls; implementations
    /// with cheaper incremental evaluation should override it.
    fn marginal(&self, e: usize, set: &BitSet) -> f64 {
        debug_assert!(
            !set.contains(e),
            "marginal of an element already in the set"
        );
        self.eval(&set.with(e)) - self.eval(set)
    }

    /// Evaluates the function on every set of a batch, returning the values
    /// in order. Equivalent to (and by default implemented as) an `eval`
    /// loop; like `eval` it takes `&self`, with interior mutability for any
    /// caching.
    ///
    /// Greedy strategies evaluate every candidate of a round against one
    /// shared base set, so oracles with incremental evaluation (the
    /// `bestCost` engine) override this to align their committed base with
    /// the batch once and answer each candidate from a minimal overlay —
    /// one full recomputation per round instead of one per candidate. A
    /// round is also the natural sharding unit: the candidates are
    /// independent given the shared base, so batched oracles may fan them
    /// out across threads as long as the values stay identical to the
    /// `eval` loop.
    fn eval_many(&self, sets: &[BitSet]) -> Vec<f64> {
        sets.iter().map(|s| self.eval(s)).collect()
    }

    /// Marginals `f(S ∪ {e}) − f(S)` for a batch of elements against one
    /// shared base set, in order.
    ///
    /// The default is a [`Self::marginal`] loop, so functions with a
    /// specialized (cheaper-than-two-evals) marginal keep that advantage;
    /// batched oracles override this to route the whole round through
    /// [`Self::eval_many`] instead.
    fn marginal_many(&self, elems: &[usize], set: &BitSet) -> Vec<f64> {
        elems.iter().map(|&e| self.marginal(e, set)).collect()
    }

    /// `f(∅)`, used for normalization checks.
    fn at_empty(&self) -> f64 {
        self.eval(&BitSet::empty(self.universe()))
    }
}

impl<F: SetFunction + ?Sized> SetFunction for &F {
    fn universe(&self) -> usize {
        (**self).universe()
    }
    fn eval(&self, set: &BitSet) -> f64 {
        (**self).eval(set)
    }
    fn marginal(&self, e: usize, set: &BitSet) -> f64 {
        (**self).marginal(e, set)
    }
    fn eval_many(&self, sets: &[BitSet]) -> Vec<f64> {
        (**self).eval_many(sets)
    }
    fn marginal_many(&self, elems: &[usize], set: &BitSet) -> Vec<f64> {
        (**self).marginal_many(elems, set)
    }
}

/// A set function given by an arbitrary closure (handy in tests).
pub struct FnSetFunction<F: Fn(&BitSet) -> f64> {
    universe: usize,
    f: F,
}

impl<F: Fn(&BitSet) -> f64> FnSetFunction<F> {
    /// Wraps `f` as a set function over `{0, ..., universe-1}`.
    pub fn new(universe: usize, f: F) -> Self {
        FnSetFunction { universe, f }
    }
}

impl<F: Fn(&BitSet) -> f64> SetFunction for FnSetFunction<F> {
    fn universe(&self) -> usize {
        self.universe
    }
    fn eval(&self, set: &BitSet) -> f64 {
        (self.f)(set)
    }
}

/// Wrapper counting the number of oracle evaluations.
///
/// The paper's efficiency claims (Section 5) are about reducing the number of
/// `bc(S)` invocations; this wrapper is how the benches and tests observe
/// that number.
pub struct CountingOracle<F: SetFunction> {
    inner: F,
    calls: Cell<u64>,
}

impl<F: SetFunction> CountingOracle<F> {
    /// Wraps `inner`, starting the counter at zero.
    pub fn new(inner: F) -> Self {
        CountingOracle {
            inner,
            calls: Cell::new(0),
        }
    }

    /// Number of `eval` calls made so far.
    pub fn calls(&self) -> u64 {
        self.calls.get()
    }

    /// Resets the counter.
    pub fn reset(&self) {
        self.calls.set(0);
    }

    /// Unwraps the inner function.
    pub fn into_inner(self) -> F {
        self.inner
    }

    /// Borrows the inner function.
    pub fn inner(&self) -> &F {
        &self.inner
    }
}

impl<F: SetFunction> SetFunction for CountingOracle<F> {
    fn universe(&self) -> usize {
        self.inner.universe()
    }
    fn eval(&self, set: &BitSet) -> f64 {
        self.calls.set(self.calls.get() + 1);
        self.inner.eval(set)
    }
    fn eval_many(&self, sets: &[BitSet]) -> Vec<f64> {
        self.calls.set(self.calls.get() + sets.len() as u64);
        self.inner.eval_many(sets)
    }
}

/// Memoizing wrapper: caches values per set.
///
/// Useful when an algorithm revisits the same subsets (e.g. the greedy loop
/// evaluating `bc(X ∪ {x})` where `X` grows by exactly the previously best
/// candidate). Unbounded; intended for algorithm-internal lifetimes.
///
/// Cache entries are keyed on raw bitsets, whose bit positions are only
/// meaningful relative to a fixed universe. The wrapper therefore carries a
/// *universe epoch* stamp ([`MemoizedOracle::set_universe_epoch`]) and
/// additionally watches `inner.universe()` on every evaluation: if either
/// changes — an evolvable batch grew, tombstoned, or re-slotted its
/// shareable universe — the cache is discarded, so a stale value can never
/// be served for a bitset whose bits now name different elements.
pub struct MemoizedOracle<F: SetFunction> {
    inner: F,
    cache: std::cell::RefCell<HashMap<BitSet, f64>>,
    /// Externally supplied universe epoch the cache was populated under.
    epoch: std::cell::Cell<u64>,
    /// `inner.universe()` as observed when the cache was last (re)used —
    /// the automatic invalidation signal when no explicit epoch is fed.
    seen_universe: std::cell::Cell<usize>,
}

impl<F: SetFunction> MemoizedOracle<F> {
    /// Wraps `inner` with an empty cache.
    pub fn new(inner: F) -> Self {
        let seen_universe = inner.universe();
        MemoizedOracle {
            inner,
            cache: std::cell::RefCell::new(HashMap::new()),
            epoch: std::cell::Cell::new(0),
            seen_universe: std::cell::Cell::new(seen_universe),
        }
    }

    /// Number of distinct sets cached.
    pub fn cached_sets(&self) -> usize {
        self.cache.borrow().len()
    }

    /// Borrows the inner function.
    pub fn inner(&self) -> &F {
        &self.inner
    }

    /// The universe epoch the cache is currently valid for.
    pub fn universe_epoch(&self) -> u64 {
        self.epoch.get()
    }

    /// Stamps the oracle with the universe epoch of the state it is about
    /// to evaluate (e.g. `BatchDag::universe_epoch` after an evolution
    /// commit). A changed epoch discards every cached value.
    pub fn set_universe_epoch(&self, epoch: u64) {
        if self.epoch.replace(epoch) != epoch {
            self.cache.borrow_mut().clear();
        }
    }

    /// Discards the cache if the inner function's universe changed since
    /// it was populated (resize-based auto-invalidation; catches evolution
    /// steps that never fed an explicit epoch).
    fn check_universe(&self) {
        let n = self.inner.universe();
        if self.seen_universe.replace(n) != n {
            self.cache.borrow_mut().clear();
        }
    }
}

impl<F: SetFunction> SetFunction for MemoizedOracle<F> {
    fn universe(&self) -> usize {
        self.inner.universe()
    }
    fn eval(&self, set: &BitSet) -> f64 {
        self.check_universe();
        if let Some(&v) = self.cache.borrow().get(set) {
            return v;
        }
        let v = self.inner.eval(set);
        self.cache.borrow_mut().insert(set.clone(), v);
        v
    }
    fn eval_many(&self, sets: &[BitSet]) -> Vec<f64> {
        self.check_universe();
        // Forward only the distinct cache misses to the inner batch (a
        // duplicated set costs one inner evaluation, like the eval loop
        // would pay after its first call), then stitch the results back in
        // order.
        let mut out = vec![f64::NAN; sets.len()];
        let mut miss_slot: HashMap<BitSet, usize> = HashMap::new();
        let mut miss_sets: Vec<BitSet> = Vec::new();
        let mut slot_of: Vec<Option<usize>> = vec![None; sets.len()];
        {
            let cache = self.cache.borrow();
            for (i, s) in sets.iter().enumerate() {
                match cache.get(s) {
                    Some(&v) => out[i] = v,
                    None => {
                        let slot = *miss_slot.entry(s.clone()).or_insert_with(|| {
                            miss_sets.push(s.clone());
                            miss_sets.len() - 1
                        });
                        slot_of[i] = Some(slot);
                    }
                }
            }
        }
        if !miss_sets.is_empty() {
            let vals = self.inner.eval_many(&miss_sets);
            let mut cache = self.cache.borrow_mut();
            for (s, &v) in miss_sets.iter().zip(&vals) {
                cache.insert(s.clone(), v);
            }
            for (i, slot) in slot_of.iter().enumerate() {
                if let Some(slot) = slot {
                    out[i] = vals[*slot];
                }
            }
        }
        out
    }
}

/// An additive (modular) function `c(S) = Σ_{e∈S} weights[e]`
/// (Definition 3 in the paper).
#[derive(Clone, Debug)]
pub struct Additive {
    weights: Vec<f64>,
}

impl Additive {
    /// Builds an additive function from per-element weights.
    pub fn new(weights: Vec<f64>) -> Self {
        Additive { weights }
    }

    /// The weight of a single element.
    #[inline]
    pub fn weight(&self, e: usize) -> f64 {
        self.weights[e]
    }

    /// All weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl SetFunction for Additive {
    fn universe(&self) -> usize {
        self.weights.len()
    }
    fn eval(&self, set: &BitSet) -> f64 {
        set.iter().map(|e| self.weights[e]).sum()
    }
    fn marginal(&self, e: usize, _set: &BitSet) -> f64 {
        self.weights[e]
    }
}

/// Numerical tolerance used by the structural checks below. Set-function
/// values in this crate come from sums/differences of cost estimates, so a
/// relative tolerance anchored at the magnitude of the operands is used.
pub const EPS: f64 = 1e-7;

/// Approximate `a >= b` with tolerance scaled to the operands.
pub(crate) fn ge_approx(a: f64, b: f64) -> bool {
    a >= b - EPS * (1.0 + a.abs().max(b.abs()))
}

/// Exhaustively checks submodularity (Definition 1) of `f` by testing
/// `f'(u, A) >= f'(u, B)` for all `A ⊆ B`, `u ∉ B`. Exponential; universes
/// larger than 12 are rejected.
pub fn is_submodular<F: SetFunction>(f: &F) -> bool {
    let n = f.universe();
    assert!(n <= 12, "exhaustive submodularity check limited to n <= 12");
    // Equivalent pairwise characterization: for all S and u != v not in S,
    // f'(u, S) >= f'(u, S + v).
    for set in crate::bitset::all_subsets(n) {
        for u in 0..n {
            if set.contains(u) {
                continue;
            }
            for v in 0..n {
                if v == u || set.contains(v) {
                    continue;
                }
                let lhs = f.marginal(u, &set);
                let rhs = f.marginal(u, &set.with(v));
                if !ge_approx(lhs, rhs) {
                    return false;
                }
            }
        }
    }
    true
}

/// Exhaustively checks monotonicity (Definition 4): all marginals
/// non-negative. Universes larger than 12 are rejected.
pub fn is_monotone<F: SetFunction>(f: &F) -> bool {
    let n = f.universe();
    assert!(n <= 12, "exhaustive monotonicity check limited to n <= 12");
    for set in crate::bitset::all_subsets(n) {
        for u in 0..n {
            if !set.contains(u) && !ge_approx(f.marginal(u, &set), 0.0) {
                return false;
            }
        }
    }
    true
}

/// Checks `f(∅) = 0` (Definition 5).
pub fn is_normalized<F: SetFunction>(f: &F) -> bool {
    f.at_empty().abs() <= EPS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn additive_eval_and_marginal() {
        let c = Additive::new(vec![1.0, 2.0, 4.0]);
        let s = BitSet::from_iter(3, [0, 2]);
        assert_eq!(c.eval(&s), 5.0);
        assert_eq!(c.marginal(1, &s), 2.0);
        assert!(is_submodular(&c));
        assert!(is_normalized(&c));
    }

    #[test]
    fn counting_oracle_counts() {
        let f = FnSetFunction::new(4, |s: &BitSet| s.len() as f64);
        let counted = CountingOracle::new(f);
        let s = BitSet::from_iter(4, [1, 2]);
        assert_eq!(counted.eval(&s), 2.0);
        counted.eval(&s);
        assert_eq!(counted.calls(), 2);
        counted.reset();
        assert_eq!(counted.calls(), 0);
    }

    #[test]
    fn memoized_oracle_hits_cache() {
        let f = CountingOracle::new(FnSetFunction::new(4, |s: &BitSet| s.len() as f64));
        let memo = MemoizedOracle::new(f);
        let s = BitSet::from_iter(4, [0]);
        memo.eval(&s);
        memo.eval(&s);
        memo.eval(&s);
        assert_eq!(memo.inner().calls(), 1);
        assert_eq!(memo.cached_sets(), 1);
    }

    #[test]
    fn eval_many_matches_eval_loop_and_counts() {
        let f = CountingOracle::new(FnSetFunction::new(5, |s: &BitSet| s.len() as f64));
        let sets: Vec<BitSet> = (0..5).map(|e| BitSet::from_iter(5, [e])).collect();
        let batch = f.eval_many(&sets);
        let looped: Vec<f64> = sets.iter().map(|s| f.eval(s)).collect();
        assert_eq!(batch, looped);
        assert_eq!(f.calls(), 10, "both paths count one call per set");
    }

    #[test]
    fn memoized_eval_many_only_forwards_misses() {
        let f = CountingOracle::new(FnSetFunction::new(4, |s: &BitSet| s.len() as f64));
        let memo = MemoizedOracle::new(f);
        let a = BitSet::from_iter(4, [0]);
        let b = BitSet::from_iter(4, [1, 2]);
        memo.eval(&a);
        let vals = memo.eval_many(&[a.clone(), b.clone(), a.clone()]);
        assert_eq!(vals, vec![1.0, 2.0, 1.0]);
        // Only `b` was a miss.
        assert_eq!(memo.inner().calls(), 2);
        assert_eq!(memo.cached_sets(), 2);
    }

    /// Inner oracle whose universe and values can be mutated after
    /// construction, simulating an evolvable batch growing or re-slotting
    /// its shareable universe under a long-lived memoized wrapper.
    struct MutableInner {
        universe: Cell<usize>,
        scale: Cell<f64>,
    }

    impl SetFunction for MutableInner {
        fn universe(&self) -> usize {
            self.universe.get()
        }
        fn eval(&self, set: &BitSet) -> f64 {
            self.scale.get() * set.len() as f64
        }
    }

    #[test]
    fn memoized_oracle_invalidates_on_universe_resize() {
        let memo = MemoizedOracle::new(MutableInner {
            universe: Cell::new(4),
            scale: Cell::new(1.0),
        });
        let s = BitSet::from_iter(4, [0, 2]);
        assert_eq!(memo.eval(&s), 2.0);
        assert_eq!(memo.cached_sets(), 1);

        // Same universe: the (now wrong) cached value is served — that is
        // exactly the memoization contract for a fixed ground set.
        memo.inner().scale.set(10.0);
        assert_eq!(memo.eval(&s), 2.0);

        // The universe resized: every cached value must be discarded, so
        // the fresh inner value comes back instead of the stale 2.0.
        memo.inner().universe.set(5);
        assert_eq!(memo.eval(&s), 20.0);
        assert_eq!(memo.cached_sets(), 1, "stale entries were dropped");

        // eval_many performs the same check.
        memo.inner().scale.set(100.0);
        memo.inner().universe.set(6);
        assert_eq!(memo.eval_many(std::slice::from_ref(&s)), vec![200.0]);
    }

    #[test]
    fn memoized_oracle_invalidates_on_epoch_change() {
        let memo = MemoizedOracle::new(MutableInner {
            universe: Cell::new(4),
            scale: Cell::new(1.0),
        });
        let s = BitSet::from_iter(4, [1]);
        assert_eq!(memo.eval(&s), 1.0);
        memo.inner().scale.set(7.0);

        // Re-stamping the current epoch keeps the cache.
        memo.set_universe_epoch(memo.universe_epoch());
        assert_eq!(memo.eval(&s), 1.0);
        assert_eq!(memo.cached_sets(), 1);

        // A new epoch (same universe *size*, e.g. a tombstoned slot was
        // revived by a different query) discards the cache.
        memo.set_universe_epoch(3);
        assert_eq!(memo.universe_epoch(), 3);
        assert_eq!(memo.cached_sets(), 0);
        assert_eq!(memo.eval(&s), 7.0);
    }

    #[test]
    fn sqrt_of_cardinality_is_submodular_monotone() {
        let f = FnSetFunction::new(6, |s: &BitSet| (s.len() as f64).sqrt());
        assert!(is_submodular(&f));
        assert!(is_monotone(&f));
        assert!(is_normalized(&f));
    }

    #[test]
    fn square_of_cardinality_is_not_submodular() {
        let f = FnSetFunction::new(5, |s: &BitSet| (s.len() as f64).powi(2));
        assert!(!is_submodular(&f));
        assert!(is_monotone(&f));
    }

    #[test]
    fn non_monotone_detected() {
        // f(S) = |S| for |S| <= 1 else 2 - |S|: marginals go negative.
        let f = FnSetFunction::new(5, |s: &BitSet| {
            let k = s.len() as f64;
            if k <= 1.0 {
                k
            } else {
                2.0 - k
            }
        });
        assert!(!is_monotone(&f));
    }
}
