//! A small, zero-dependency, seeded PRNG for tests, benches, and random
//! instance generators.
//!
//! The build environment is offline, so the workspace cannot pull in the
//! `rand` crate; this module provides the subset the repo needs: a
//! deterministic 64-bit generator (xoshiro256** seeded through SplitMix64)
//! with `gen_range`/`gen_bool` equivalents over the integer and float
//! ranges used by the instance generators and the seeded-sweep property
//! tests.
//!
//! Not cryptographically secure — statistical quality only.
//!
//! # Example
//!
//! ```
//! use mqo_submod::prng::Prng;
//!
//! let mut rng = Prng::seed_from_u64(42);
//! let x = rng.gen_range(0.5_f64..2.0);
//! assert!((0.5..2.0).contains(&x));
//! let k = rng.gen_range(4_usize..=10);
//! assert!((4..=10).contains(&k));
//! // Same seed, same stream.
//! let mut again = Prng::seed_from_u64(42);
//! assert_eq!(again.gen_range(0.5_f64..2.0), x);
//! ```

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step: the standard seeding/stream-splitting mixer.
///
/// Used to expand a single `u64` seed into the generator state and to
/// derive independent child seeds (`Prng::derive_seed`).
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded xoshiro256** generator.
///
/// Deterministic: the same seed always produces the same stream, on every
/// platform and in every run. Distinct seeds produce (statistically)
/// independent streams because the state is expanded through SplitMix64.
#[derive(Clone, Debug)]
pub struct Prng {
    s: [u64; 4],
}

impl Prng {
    /// Creates a generator from a 64-bit seed (the `rand`
    /// `SeedableRng::seed_from_u64` equivalent).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Prng { s }
    }

    /// Derives an independent child seed; useful for seeded-sweep property
    /// tests that need one fresh instance seed per case index.
    pub fn derive_seed(base: u64, index: u64) -> u64 {
        let mut sm = base ^ index.wrapping_mul(0xA076_1D64_78BD_642F);
        splitmix64(&mut sm)
    }

    /// The next raw 64 bits (xoshiro256** output function).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` (53 random mantissa bits).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// A uniform draw from `range` (the `rand` `Rng::gen_range` /
    /// `Rng::random_range` equivalent). Accepts `lo..hi` and `lo..=hi`
    /// over `f64`, `usize`, `u64`, `i64`, and `u8`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// A uniform `u64` in `[0, bound)` via the multiply-shift method
    /// (bias at most 2⁻⁶⁴·bound, negligible for every use here).
    #[inline]
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Runs `body` once per derived seed — the offline replacement for a
/// proptest runner.
///
/// Each case gets its own [`Prng`] seeded with `Prng::derive_seed(base_seed,
/// i)`. A panic inside `body` (a failed assertion) is re-raised with the
/// property name, case index, and the exact offending seed, so failures
/// reproduce directly (`Prng::seed_from_u64(<printed seed>)`) without any
/// shrinking machinery.
///
/// Cases that do not apply (the `prop_assume!` equivalent) should simply
/// `return` early from `body`.
pub fn seeded_sweep<F>(name: &str, base_seed: u64, cases: u64, body: F)
where
    F: Fn(&mut Prng),
{
    for i in 0..cases {
        let seed = Prng::derive_seed(base_seed, i);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut rng = Prng::seed_from_u64(seed);
            body(&mut rng);
        }));
        if let Err(payload) = outcome {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&'static str>().copied())
                .unwrap_or("non-string panic payload");
            panic!(
                "property `{name}`: case {i}/{cases} failed \
                 (reproduce with seed {seed:#018x}): {msg}"
            );
        }
    }
}

/// Ranges [`Prng::gen_range`] can sample from.
pub trait UniformRange {
    type Output;
    fn sample(self, rng: &mut Prng) -> Self::Output;
}

impl UniformRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut Prng) -> f64 {
        assert!(self.start < self.end, "empty range {:?}", self);
        let x = self.start + (self.end - self.start) * rng.next_f64();
        // Floating-point rounding can land exactly on `end`; clamp back
        // into the half-open interval.
        if x >= self.end {
            self.end.next_down()
        } else {
            x
        }
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Prng) -> $t {
                assert!(self.start < self.end, "empty range {:?}", self);
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl UniformRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Prng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range {lo}..={hi}");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width i64/u64 range: any u64 is uniform.
                    return (lo as i128 + rng.next_u64() as i128) as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, i64, u8, u32, i32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_runs_for_fixed_seed() {
        let mut a = Prng::seed_from_u64(12345);
        let mut b = Prng::seed_from_u64(12345);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_give_distinct_streams() {
        let mut a = Prng::seed_from_u64(1);
        let mut b = Prng::seed_from_u64(2);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
        // Even a 1-bit seed difference decorrelates (SplitMix64 expansion).
        let mut c = Prng::seed_from_u64(1 << 63 | 1);
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_ne!(xs, zs);
    }

    #[test]
    fn regression_known_seed_prefix() {
        // Pins the exact first outputs of seed 0 so any accidental change
        // to the seeding or output function is caught: instance generators
        // and seeded-sweep tests all depend on this stream being stable.
        let mut rng = Prng::seed_from_u64(0);
        let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                11091344671253066420,
                13793997310169335082,
                1900383378846508768,
                7684712102626143532,
            ]
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Prng::seed_from_u64(7);
        for _ in 0..2000 {
            let x = rng.gen_range(0.5_f64..2.0);
            assert!((0.5..2.0).contains(&x), "{x}");
            let k = rng.gen_range(4_usize..=10);
            assert!((4..=10).contains(&k), "{k}");
            let v = rng.gen_range(-1000_i64..1000);
            assert!((-1000..1000).contains(&v), "{v}");
            let m = rng.gen_range(1_u8..8);
            assert!((1..8).contains(&m), "{m}");
        }
    }

    #[test]
    fn gen_range_hits_both_endpoints_inclusive() {
        let mut rng = Prng::seed_from_u64(11);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0_usize..=2)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = Prng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn derive_seed_is_injective_in_practice() {
        let seeds: Vec<u64> = (0..64).map(|i| Prng::derive_seed(99, i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }
}
