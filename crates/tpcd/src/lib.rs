//! The TPCD benchmark workload of the paper's experimental section.
//!
//! * [`schema`] — the TPCD catalog (row counts, column statistics, tuple
//!   widths, clustered PK indices) at an arbitrary scale factor; SF 1 and
//!   SF 100 correspond to the paper's 1 GB and 100 GB databases.
//! * [`queries`] — logical plans for Q2, Q3, Q5, Q7, Q8, Q9, Q10, Q11, Q15
//!   with parameterizable selection constants (two variants each).
//! * [`batches`] — the composite batches BQ1..BQ6 of Experiment 1 and the
//!   stand-alone workloads of Experiment 2.
//! * [`random`] — seeded random chain workloads shared by the
//!   differential and property suites (not part of the paper's workload).
//! * [`workloads`] — the seeded scale-tier generator:
//!   chain/star/clique/snowflake batches at controllable size and
//!   subexpression overlap, up to hundreds of queries and 10k+
//!   materialization candidates.

#![forbid(unsafe_code)]

pub mod batches;
pub mod queries;
pub mod random;
pub mod schema;
pub mod workloads;

pub use batches::{batched, standalone, Workload, STANDALONE_NAMES};
pub use queries::{QueryFactory, QueryId};
pub use workloads::{generate, Shape, WorkloadSpec};
