//! The TPCD schema with catalog statistics at a given scale factor.
//!
//! Scale factor 1 corresponds to the 1 GB database of Section 6.1, scale
//! factor 100 to the 100 GB database. Row counts follow the TPC-D
//! specification (region 5, nation 25, supplier 10k·SF, customer 150k·SF,
//! part 200k·SF, partsupp 800k·SF, orders 1.5M·SF, lineitem 6M·SF); row
//! widths approximate the spec's average tuple sizes via explicit payload
//! columns. Every base relation has a clustered index on its primary key
//! (as in the experiments).
//!
//! Dates are encoded as day numbers since 1992-01-01; strings are interned
//! in the catalog dictionary.

use mqo_catalog::{Catalog, TableBuilder};

/// TPCD populated date range: 1992-01-01 .. 1998-12-31, as day numbers.
pub const DATE_MIN: i64 = 0;
/// Upper end of the populated date range (~7 years).
pub const DATE_MAX: i64 = 2557;

/// Encodes a date as days since 1992-01-01 (30-day months — the precision
/// needed for selectivity estimation, not calendar arithmetic).
pub fn date(year: i64, month: i64, day: i64) -> i64 {
    (year - 1992) * 365 + (month - 1) * 30 + (day - 1)
}

/// The market segments of `c_mktsegment`.
pub const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];

/// The region names of `r_name`.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// A few nation names (subset of the 25) used by the workload queries.
pub const NATIONS: [&str; 8] = [
    "FRANCE", "GERMANY", "BRAZIL", "INDIA", "JAPAN", "CANADA", "EGYPT", "RUSSIA",
];

/// Number of distinct `p_type` values in TPC-D.
pub const N_PART_TYPES: i64 = 150;

/// Builds the TPCD catalog at the given scale factor, pre-interning the
/// workload's string constants.
pub fn catalog(sf: f64) -> Catalog {
    assert!(sf > 0.0, "scale factor must be positive");
    let mut cat = Catalog::new();

    // Pre-intern constants so queries can resolve codes deterministically.
    for s in SEGMENTS {
        cat.dict_mut().intern(s);
    }
    for s in REGIONS {
        cat.dict_mut().intern(s);
    }
    for s in NATIONS {
        cat.dict_mut().intern(s);
    }

    let supplier_rows = 10_000.0 * sf;
    let customer_rows = 150_000.0 * sf;
    let part_rows = 200_000.0 * sf;
    let partsupp_rows = 800_000.0 * sf;
    let orders_rows = 1_500_000.0 * sf;
    let lineitem_rows = 6_000_000.0 * sf;

    cat.add_table(
        TableBuilder::new("region", 5.0)
            .key_column("r_regionkey", 4)
            .column("r_name", 5.0, (0, 63), 25)
            .column("r_payload", 1.0, (0, 0), 95)
            .primary_key(&["r_regionkey"])
            .build(),
    );

    cat.add_table(
        TableBuilder::new("nation", 25.0)
            .key_column("n_nationkey", 4)
            .column("n_name", 25.0, (0, 63), 25)
            .column("n_regionkey", 5.0, (0, 4), 4)
            .column("n_payload", 1.0, (0, 0), 95)
            .primary_key(&["n_nationkey"])
            .build(),
    );

    cat.add_table(
        TableBuilder::new("supplier", supplier_rows)
            .key_column("s_suppkey", 4)
            .column("s_name", supplier_rows, (0, supplier_rows as i64 - 1), 25)
            .column("s_nationkey", 25.0, (0, 24), 4)
            .column("s_acctbal", 100_000.0, (-99_999, 999_999), 8)
            .column("s_payload", 1.0, (0, 0), 119)
            .primary_key(&["s_suppkey"])
            .build(),
    );

    cat.add_table(
        TableBuilder::new("customer", customer_rows)
            .key_column("c_custkey", 4)
            .column("c_name", customer_rows, (0, customer_rows as i64 - 1), 25)
            .column("c_nationkey", 25.0, (0, 24), 4)
            .column("c_mktsegment", 5.0, (0, 63), 10)
            .column("c_acctbal", 100_000.0, (-99_999, 999_999), 8)
            .column("c_payload", 1.0, (0, 0), 129)
            .primary_key(&["c_custkey"])
            .build(),
    );

    cat.add_table(
        TableBuilder::new("part", part_rows)
            .key_column("p_partkey", 4)
            .column("p_name", part_rows, (0, part_rows as i64 - 1), 55)
            .column("p_mfgr", 5.0, (0, 4), 25)
            .column("p_brand", 25.0, (0, 24), 10)
            .column("p_type", N_PART_TYPES as f64, (0, N_PART_TYPES - 1), 25)
            .column("p_size", 50.0, (1, 50), 4)
            .column("p_retailprice", 20_000.0, (90_000, 200_000), 8)
            .column("p_payload", 1.0, (0, 0), 25)
            .primary_key(&["p_partkey"])
            .build(),
    );

    cat.add_table(
        TableBuilder::new("partsupp", partsupp_rows)
            .column("ps_partkey", part_rows, (0, part_rows as i64 - 1), 4)
            .column(
                "ps_suppkey",
                supplier_rows,
                (0, supplier_rows as i64 - 1),
                4,
            )
            .column("ps_availqty", 9_999.0, (1, 9_999), 4)
            .column("ps_supplycost", 100_000.0, (100, 100_000), 8)
            .column("ps_payload", 1.0, (0, 0), 124)
            .primary_key(&["ps_partkey", "ps_suppkey"])
            .build(),
    );

    cat.add_table(
        TableBuilder::new("orders", orders_rows)
            .key_column("o_orderkey", 4)
            .column("o_custkey", customer_rows, (0, customer_rows as i64 - 1), 4)
            .column("o_orderdate", 2_406.0, (DATE_MIN, date(1998, 8, 2)), 4)
            .column("o_orderpriority", 5.0, (0, 4), 15)
            .column("o_shippriority", 1.0, (0, 0), 4)
            .column("o_totalprice", 1_000_000.0, (1_000, 50_000_000), 8)
            .column("o_payload", 1.0, (0, 0), 81)
            .primary_key(&["o_orderkey"])
            .build(),
    );

    cat.add_table(
        TableBuilder::new("lineitem", lineitem_rows)
            .column("l_orderkey", orders_rows, (0, orders_rows as i64 - 1), 4)
            .column("l_partkey", part_rows, (0, part_rows as i64 - 1), 4)
            .column("l_suppkey", supplier_rows, (0, supplier_rows as i64 - 1), 4)
            .column("l_linenumber", 7.0, (1, 7), 4)
            .column("l_quantity", 50.0, (1, 50), 4)
            .column("l_extendedprice", 1_000_000.0, (900, 10_000_000), 8)
            .column("l_discount", 11.0, (0, 10), 8)
            .column("l_tax", 9.0, (0, 8), 8)
            .column("l_returnflag", 3.0, (0, 2), 1)
            .column("l_linestatus", 2.0, (0, 1), 1)
            .column("l_shipdate", 2_526.0, (DATE_MIN + 1, DATE_MAX), 4)
            .column("l_commitdate", 2_466.0, (DATE_MIN + 30, DATE_MAX - 30), 4)
            .column("l_receiptdate", 2_554.0, (DATE_MIN + 2, DATE_MAX), 4)
            .column("l_payload", 1.0, (0, 0), 54)
            .primary_key(&["l_orderkey", "l_linenumber"])
            .build(),
    );

    cat
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_counts_scale() {
        let c1 = catalog(1.0);
        let c100 = catalog(100.0);
        assert_eq!(c1.table(c1.table_id("lineitem").unwrap()).rows, 6_000_000.0);
        assert_eq!(
            c100.table(c100.table_id("lineitem").unwrap()).rows,
            600_000_000.0
        );
        assert_eq!(c1.table(c1.table_id("region").unwrap()).rows, 5.0);
        assert_eq!(c100.table(c100.table_id("region").unwrap()).rows, 5.0);
    }

    #[test]
    fn total_size_is_about_1gb_at_sf1() {
        let cat = catalog(1.0);
        let total: f64 = cat.iter().map(|(_, t)| t.size_bytes()).sum();
        let gb = total / (1024.0 * 1024.0 * 1024.0);
        assert!(
            (0.8..1.6).contains(&gb),
            "expected ~1 GB at SF 1, got {gb:.2} GB"
        );
    }

    #[test]
    fn all_tables_have_clustered_pk() {
        let cat = catalog(1.0);
        for (_, t) in cat.iter() {
            assert!(
                !t.primary_key.is_empty(),
                "table {} must have a clustered PK",
                t.name
            );
        }
    }

    #[test]
    fn date_encoding_is_monotone() {
        assert!(date(1994, 1, 1) < date(1994, 6, 1));
        assert!(date(1994, 12, 31) < date(1995, 1, 1));
        assert_eq!(date(1992, 1, 1), 0);
        assert!(date(1998, 8, 2) <= DATE_MAX);
    }

    #[test]
    fn constants_are_interned() {
        let cat = catalog(1.0);
        assert!(cat.dict().code("ASIA").is_some());
        assert!(cat.dict().code("BUILDING").is_some());
        assert!(cat.dict().code("GERMANY").is_some());
    }

    #[test]
    fn fk_columns_align_with_pk_domains() {
        let cat = catalog(1.0);
        let o_custkey = cat.resolve("orders", "o_custkey").unwrap();
        let c_custkey = cat.resolve("customer", "c_custkey").unwrap();
        assert_eq!(
            cat.column(o_custkey).stats.distinct,
            cat.column(c_custkey).stats.distinct
        );
    }
}
