//! Seeded random chain workloads shared by the differential and property
//! suites.
//!
//! The TPCD batches pin behavior on the paper's fixed workload; the random
//! instances here cover the shapes TPCD happens not to hit (deep chains,
//! partially overlapping spans, subsumable selections with shared
//! constants). Every generator is driven by [`mqo_submod::prng::Prng`], so
//! a failing case reproduces from its seed alone. The same generators used
//! to live copy-pasted in `mqo-volcano`'s differential/property tests and
//! would have been copied a third time by the session-evolution harness —
//! they are deduplicated here because a *divergent* copy would silently
//! weaken differential coverage (two suites believing they test the same
//! distribution while drawing from different ones).

use mqo_catalog::{Catalog, TableBuilder};
use mqo_submod::prng::Prng;
use mqo_volcano::{Constraint, DagContext, PlanNode, Predicate};

/// A catalog of `k` chained tables `t0..t{k-1}`: table `i` has
/// `base_rows * (i+1)` rows, a clustered key `t{i}_key`, a link column
/// `t{i}_next` joining to `t{i+1}_key`, and a low-cardinality value column
/// `t{i}_x` (20 distinct values) for selections.
pub fn chain_catalog(k: usize, base_rows: f64) -> Catalog {
    let mut cat = Catalog::new();
    for i in 0..k {
        let rows = base_rows * (i + 1) as f64;
        cat.add_table(
            TableBuilder::new(format!("t{i}"), rows)
                .key_column(format!("t{i}_key"), 4)
                .column(format!("t{i}_next"), rows, (0, rows as i64 - 1), 4)
                .column(format!("t{i}_x"), 20.0, (0, 19), 4)
                .primary_key(&[&format!("t{i}_key")])
                .build(),
        );
    }
    cat
}

/// [`chain_catalog`] wrapped in a fresh [`DagContext`] at the default
/// 500-row base (the differential suites' instance size).
pub fn chain_ctx(k: usize) -> DagContext {
    DagContext::new(chain_catalog(k, 500.0))
}

/// A random chain query over tables `[lo, hi)` with optional selections
/// (constants drawn from the rng's low range, so repeated queries share
/// subsumable predicates).
pub fn random_chain(ctx: &mut DagContext, rng: &mut Prng, lo: usize, hi: usize) -> PlanNode {
    let mut plan: Option<PlanNode> = None;
    for i in lo..hi {
        let inst = ctx.instance_by_name(&format!("t{i}"), 0);
        let mut node = PlanNode::scan(inst);
        if rng.gen_bool(0.5) {
            let x = ctx.col(inst, &format!("t{i}_x"));
            let c = rng.gen_range(0_i64..=3);
            node = node.select(Predicate::on(x, Constraint::eq(c)));
        }
        plan = Some(match plan {
            None => node,
            Some(prev) => {
                let a = ctx.instance_by_name(&format!("t{}", i - 1), 0);
                let link = Predicate::join(
                    ctx.col(a, &format!("t{}_next", i - 1)),
                    ctx.col(inst, &format!("t{i}_key")),
                );
                prev.join(node, link)
            }
        });
    }
    plan.expect("non-empty chain")
}

/// A left-deep chain over all `k` tables with *deterministic* selections:
/// `sels[i] = Some(v)` puts `σ(t{i}_x = v)` above scan `i`. The
/// property-test counterpart of [`random_chain`] — the caller controls the
/// selection mask exactly (e.g. to sweep all 2^k masks).
pub fn chain_with_sels(ctx: &mut DagContext, k: usize, sels: &[Option<i64>]) -> PlanNode {
    let insts: Vec<_> = (0..k)
        .map(|i| ctx.instance_by_name(&format!("t{i}"), 0))
        .collect();
    let mut plan = PlanNode::scan(insts[0]);
    if let Some(v) = sels[0] {
        plan = plan.select(Predicate::on(ctx.col(insts[0], "t0_x"), Constraint::eq(v)));
    }
    for i in 1..k {
        let mut rhs = PlanNode::scan(insts[i]);
        if let Some(v) = sels[i] {
            rhs = rhs.select(Predicate::on(
                ctx.col(insts[i], &format!("t{i}_x")),
                Constraint::eq(v),
            ));
        }
        let pred = Predicate::join(
            ctx.col(insts[i - 1], &format!("t{}_next", i - 1)),
            ctx.col(insts[i], &format!("t{i}_key")),
        );
        plan = plan.join(rhs, pred);
    }
    plan
}

/// A complete random workload over `k` chained tables: 2–4 chain queries
/// with overlapping spans, rebuilt deterministically from `seed`. This is
/// the instance distribution both differential suites (parallel memo
/// expansion, session evolution) sweep.
pub fn random_workload(seed: u64, k: usize) -> (DagContext, Vec<PlanNode>) {
    let mut rng = Prng::seed_from_u64(seed);
    let mut ctx = chain_ctx(k);
    let n_queries = rng.gen_range(2_usize..=4);
    let mut queries = Vec::with_capacity(n_queries);
    for _ in 0..n_queries {
        let lo = rng.gen_range(0_usize..=1);
        let hi = rng.gen_range((lo + 2).min(k)..=k);
        queries.push(random_chain(&mut ctx, &mut rng, lo, hi));
    }
    (ctx, queries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_workload_is_deterministic_in_its_seed() {
        let (_, a) = random_workload(42, 5);
        let (_, b) = random_workload(42, 5);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert!((2..=4).contains(&a.len()));
    }

    #[test]
    fn chain_with_sels_places_requested_selections() {
        let mut ctx = chain_ctx(3);
        let with = chain_with_sels(&mut ctx, 3, &[Some(1), None, Some(2)]);
        let without = chain_with_sels(&mut ctx, 3, &[None, None, None]);
        let (w, wo) = (format!("{with:?}"), format!("{without:?}"));
        assert_eq!(w.matches("Select").count(), 2);
        assert_eq!(wo.matches("Select").count(), 0);
        assert_eq!(w.matches("Join").count(), 2);
    }
}
