//! The seeded scale-tier workload generator: chain/star/clique/snowflake
//! join graphs at controllable batch size and subexpression overlap.
//!
//! The TPCD batches ([`crate::batches`]) top out at 12 queries and
//! ~110-element shareable universes; the paper's provable-approximation
//! claims — and the scale bench — need hundreds of queries and 10k+
//! materialization candidates. This module generates them over a pool of
//! `s0..s{tables-1}` tables: every query is first drawn as a recipe
//! (an ordered table list, an attachment tree, and a selection mask), and
//! the **overlap knob** reuses or extends earlier recipes, so batches
//! share whole subplans the way real workloads share subexpressions —
//! exactly the shapes the many-to-many-joins and GLADE MQO papers
//! describe.
//!
//! Everything is driven by one [`Prng`] seeded from
//! [`WorkloadSpec::seed`]: the same spec always generates the same
//! workload, pinned by a determinism test.

use mqo_catalog::{Catalog, TableBuilder};
use mqo_submod::prng::Prng;
use mqo_volcano::{Constraint, DagContext, PlanNode, Predicate};

use crate::batches::Workload;

/// Join-graph shape of a generated query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Shape {
    /// A linear join path `t0 ⋈ t1 ⋈ ... ⋈ t{m-1}`; consecutive windows
    /// over the table pool, so overlapping queries share subspans.
    Chain,
    /// A hub joined to `m − 1` spokes (every non-hub table attaches to the
    /// hub).
    Star,
    /// Dense random attachment: each new table joins a uniformly random
    /// already-joined table, yielding random join trees between the chain
    /// and star extremes.
    Clique,
    /// A star whose spokes each extend one chain step (hub → spoke →
    /// leaf), the classic dimension-hierarchy shape.
    Snowflake,
}

impl Shape {
    /// All shapes, for sweeps.
    pub const ALL: [Shape; 4] = [Shape::Chain, Shape::Star, Shape::Clique, Shape::Snowflake];

    /// Display name used in bench series and reports.
    pub fn name(&self) -> &'static str {
        match self {
            Shape::Chain => "chain",
            Shape::Star => "star",
            Shape::Clique => "clique",
            Shape::Snowflake => "snowflake",
        }
    }
}

/// Parameters of a generated workload. Construct with a struct literal
/// (all fields public) or start from [`WorkloadSpec::scale_10k`] /
/// [`WorkloadSpec::smoke`].
#[derive(Clone, Copy, Debug)]
pub struct WorkloadSpec {
    /// Join-graph shape of every query in the batch.
    pub shape: Shape,
    /// Size of the table pool `s0..s{tables-1}`.
    pub tables: usize,
    /// Number of queries in the batch.
    pub queries: usize,
    /// Tables per query, drawn uniformly from this inclusive range (each
    /// end is clamped to the pool size).
    pub span: (usize, usize),
    /// Probability in `[0, 1]` that a query derives from an earlier one —
    /// half the derivations reuse the earlier recipe verbatim (maximal
    /// sharing), half keep a random prefix and extend it fresh (partial
    /// sharing). `0.0` makes every query independent.
    pub overlap: f64,
    /// Probability of a selection `σ(s{i}_x = c)` above each scan, with
    /// `c` drawn from a 4-value range so independent queries still share
    /// subsumable predicates.
    pub select_prob: f64,
    /// Row count of pool table `i` is `base_rows * (i % 7 + 1)`.
    pub base_rows: f64,
    /// PRNG seed; same spec + same seed = same workload.
    pub seed: u64,
}

impl WorkloadSpec {
    /// A small smoke-test spec (a few queries, two-digit universe) for
    /// CI and examples.
    pub fn smoke(shape: Shape, seed: u64) -> Self {
        WorkloadSpec {
            shape,
            tables: 12,
            queries: 6,
            span: (3, 5),
            overlap: 0.3,
            select_prob: 0.4,
            base_rows: 500.0,
            seed,
        }
    }

    /// The scale-tier chain spec calibrated to exceed 10k materialization
    /// candidates (shareable universe elements): hundreds of chain
    /// queries over the full 64-table pool (the batch-DAG instance
    /// limit), moderate overlap so sharing exists but windows do not
    /// collapse onto each other. Distinct selection constants keep the
    /// subchains of independent queries distinct, so the universe grows
    /// roughly linearly in the query count.
    pub fn scale_10k(seed: u64) -> Self {
        WorkloadSpec {
            shape: Shape::Chain,
            tables: 64,
            queries: 390,
            span: (8, 12),
            overlap: 0.25,
            select_prob: 0.35,
            base_rows: 500.0,
            seed,
        }
    }
}

/// A query drawn as data before it becomes a plan: `tables[0]` is the
/// root scan, and table `j > 0` joins the already-built tree at
/// `tables[attach[j]]` (`attach[j] < j`). `sels[j]` optionally places
/// `σ(s{t}_x = c)` above scan `j`.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Recipe {
    tables: Vec<usize>,
    attach: Vec<usize>,
    sels: Vec<Option<i64>>,
}

/// Catalog for the generator's table pool: table `i` has a clustered key
/// `s{i}_key`, a generic join-source column `s{i}_ref` (wide range, so it
/// can join any other table's key), and a low-cardinality value column
/// `s{i}_x` for selections. Row counts cycle through 7 size classes so
/// join orders matter.
pub fn pool_catalog(tables: usize, base_rows: f64) -> Catalog {
    let mut cat = Catalog::new();
    for i in 0..tables {
        let rows = base_rows * ((i % 7) + 1) as f64;
        cat.add_table(
            TableBuilder::new(format!("s{i}"), rows)
                .key_column(format!("s{i}_key"), 4)
                .column(format!("s{i}_ref"), rows, (0, rows as i64 - 1), 4)
                .column(format!("s{i}_x"), 20.0, (0, 19), 4)
                .primary_key(&[&format!("s{i}_key")])
                .build(),
        );
    }
    cat
}

/// Draws a fresh recipe of `span` tables in the requested shape.
fn draw_recipe(rng: &mut Prng, spec: &WorkloadSpec, span: usize) -> Recipe {
    let mut tables = Vec::with_capacity(span);
    let mut attach = Vec::with_capacity(span);
    match spec.shape {
        Shape::Chain => {
            // A consecutive window keeps distinct chains overlappable.
            let lo = rng.gen_range(0..spec.tables - span + 1);
            for j in 0..span {
                tables.push(lo + j);
                attach.push(j.saturating_sub(1));
            }
        }
        Shape::Star | Shape::Clique | Shape::Snowflake => {
            // Distinct tables drawn without replacement from the pool.
            let mut pool: Vec<usize> = (0..spec.tables).collect();
            for j in 0..span {
                let pick = rng.gen_range(0..pool.len());
                tables.push(pool.swap_remove(pick));
                attach.push(match spec.shape {
                    Shape::Star => 0,
                    Shape::Clique => {
                        if j == 0 {
                            0
                        } else {
                            rng.gen_range(0..j)
                        }
                    }
                    // Snowflake: odd positions are spokes off the hub,
                    // even positions (> 0) extend the previous spoke.
                    Shape::Snowflake => {
                        if j % 2 == 1 || j == 0 {
                            0
                        } else {
                            j - 1
                        }
                    }
                    Shape::Chain => unreachable!(),
                });
            }
        }
    }
    let sels = (0..span)
        .map(|_| {
            if rng.gen_bool(spec.select_prob) {
                Some(rng.gen_range(0_i64..=3))
            } else {
                None
            }
        })
        .collect();
    Recipe {
        tables,
        attach,
        sels,
    }
}

/// Draws the next query recipe: fresh, an exact reuse of an earlier one,
/// or a prefix of an earlier one extended fresh — per the overlap knob.
fn next_recipe(rng: &mut Prng, spec: &WorkloadSpec, span: usize, past: &[Recipe]) -> Recipe {
    if !past.is_empty() && rng.gen_bool(spec.overlap) {
        let base = &past[rng.gen_range(0..past.len())];
        if rng.gen_bool(0.5) {
            return base.clone();
        }
        // Keep a shared prefix (the subplan both queries will build
        // identically), extend the rest fresh in the same shape.
        let keep = rng
            .gen_range(2..=base.tables.len().max(2))
            .min(base.tables.len());
        let fresh = draw_recipe(rng, spec, span.max(keep));
        let mut r = Recipe {
            tables: base.tables[..keep].to_vec(),
            attach: base.attach[..keep].to_vec(),
            sels: base.sels[..keep].to_vec(),
        };
        for j in keep..fresh.tables.len() {
            // Skip tables already in the prefix so scans stay distinct.
            if r.tables.contains(&fresh.tables[j]) {
                continue;
            }
            r.attach.push(fresh.attach[j].min(r.tables.len() - 1));
            r.tables.push(fresh.tables[j]);
            r.sels.push(fresh.sels[j]);
        }
        return r;
    }
    draw_recipe(rng, spec, span)
}

/// Materializes a recipe as a left-deep plan over `ctx`.
fn build_plan(ctx: &mut DagContext, recipe: &Recipe) -> PlanNode {
    let scan = |ctx: &mut DagContext, j: usize| {
        let t = recipe.tables[j];
        let inst = ctx.instance_by_name(&format!("s{t}"), 0);
        let mut node = PlanNode::scan(inst);
        if let Some(c) = recipe.sels[j] {
            node = node.select(Predicate::on(
                ctx.col(inst, &format!("s{t}_x")),
                Constraint::eq(c),
            ));
        }
        node
    };
    let mut plan = scan(ctx, 0);
    for j in 1..recipe.tables.len() {
        let rhs = scan(ctx, j);
        let (src, dst) = (recipe.tables[recipe.attach[j]], recipe.tables[j]);
        let src_inst = ctx.instance_by_name(&format!("s{src}"), 0);
        let dst_inst = ctx.instance_by_name(&format!("s{dst}"), 0);
        let pred = Predicate::join(
            ctx.col(src_inst, &format!("s{src}_ref")),
            ctx.col(dst_inst, &format!("s{dst}_key")),
        );
        plan = plan.join(rhs, pred);
    }
    plan
}

/// Generates the whole workload a spec describes. Deterministic in the
/// spec (including its seed).
pub fn generate(spec: &WorkloadSpec) -> Workload {
    assert!(spec.tables >= 2, "need at least 2 pool tables");
    assert!(
        spec.tables <= 64,
        "the batch DAG supports at most 64 table instances"
    );
    assert!(
        (0.0..=1.0).contains(&spec.overlap),
        "overlap must be a probability"
    );
    let mut rng = Prng::seed_from_u64(spec.seed);
    let mut ctx = DagContext::new(pool_catalog(spec.tables, spec.base_rows));
    let (lo, hi) = spec.span;
    let lo = lo.clamp(2, spec.tables);
    let hi = hi.clamp(lo, spec.tables);
    let mut recipes: Vec<Recipe> = Vec::with_capacity(spec.queries);
    let mut queries = Vec::with_capacity(spec.queries);
    for _ in 0..spec.queries {
        let span = rng.gen_range(lo..=hi);
        let recipe = next_recipe(&mut rng, spec, span, &recipes);
        queries.push(build_plan(&mut ctx, &recipe));
        recipes.push(recipe);
    }
    Workload {
        name: format!("{}-q{}-t{}", spec.shape.name(), spec.queries, spec.tables),
        ctx,
        queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqo_submod::prng::seeded_sweep;

    #[test]
    fn generator_is_deterministic_per_seed() {
        for shape in Shape::ALL {
            let spec = WorkloadSpec::smoke(shape, 0xD5EED);
            let a = generate(&spec);
            let b = generate(&spec);
            assert_eq!(a.name, b.name);
            assert_eq!(
                format!("{:?}", a.queries),
                format!("{:?}", b.queries),
                "{shape:?}"
            );
            assert_eq!(a.queries.len(), spec.queries);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&WorkloadSpec::smoke(Shape::Chain, 1));
        let b = generate(&WorkloadSpec::smoke(Shape::Chain, 2));
        assert_ne!(format!("{:?}", a.queries), format!("{:?}", b.queries));
    }

    #[test]
    fn recipes_are_well_formed_sweep() {
        seeded_sweep("workload_recipes_well_formed", 0x5CA1E, 40, |rng| {
            let shape = Shape::ALL[rng.gen_range(0..Shape::ALL.len())];
            let spec = WorkloadSpec {
                shape,
                tables: rng.gen_range(4_usize..20),
                queries: 4,
                span: (2, rng.gen_range(3_usize..8)),
                overlap: rng.gen_range(0.0..1.0),
                select_prob: rng.gen_range(0.0..1.0),
                base_rows: 200.0,
                seed: rng.next_u64(),
            };
            let mut inner = Prng::seed_from_u64(spec.seed);
            let mut past: Vec<Recipe> = Vec::new();
            for _ in 0..spec.queries {
                let span = inner.gen_range(2..=spec.span.1.clamp(2, spec.tables));
                let r = next_recipe(&mut inner, &spec, span, &past);
                // Attachment tree: attach[j] < j, scans distinct.
                assert_eq!(r.tables.len(), r.attach.len());
                assert_eq!(r.tables.len(), r.sels.len());
                assert!(r.tables.len() >= 2);
                for j in 1..r.tables.len() {
                    assert!(r.attach[j] < j, "attach must reference an earlier table");
                }
                let mut sorted = r.tables.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), r.tables.len(), "scans must be distinct");
                past.push(r);
            }
        });
    }

    #[test]
    fn overlap_one_reuses_subplans() {
        // With overlap forced to 1.0 every query after the first derives
        // from an earlier recipe; exact reuses make whole queries repeat.
        let spec = WorkloadSpec {
            overlap: 1.0,
            ..WorkloadSpec::smoke(Shape::Chain, 9)
        };
        let w = generate(&spec);
        let reprs: Vec<String> = w.queries.iter().map(|q| format!("{q:?}")).collect();
        let mut distinct = reprs.clone();
        distinct.sort();
        distinct.dedup();
        assert!(
            distinct.len() < reprs.len(),
            "forced overlap must repeat at least one query verbatim"
        );
    }
}
