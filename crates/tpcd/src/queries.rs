//! The TPCD workload queries of Section 6, as logical plan builders.
//!
//! Each batched query (Q3, Q5, Q7, Q8, Q9, Q10) exists in two variants that
//! differ in exactly one selection constant ("each query was repeated twice
//! with different selection constants"). The stand-alone queries (Q2, Q2-D,
//! Q11, Q15) contain common subexpressions *within themselves* — nested or
//! decorrelated blocks that reference the same view twice.
//!
//! Queries are simplified to their select–project–join–aggregate skeletons:
//! the join graph, the selections (the features the rule set of Section 6
//! manipulates), and the aggregations. All queries use occurrence 0 of each
//! table (occurrence 1 for self-joined `nation`), so identical
//! subexpressions across queries unify in the combined DAG.

use std::collections::HashMap;

use mqo_catalog::ColumnStats;
use mqo_volcano::{AggCall, AggFunc, AggSpec, ColId, Constraint, DagContext, PlanNode, Predicate};

use crate::schema::date;

/// Identifies a workload query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QueryId {
    Q2,
    Q3,
    Q5,
    Q7,
    Q8,
    Q9,
    Q10,
    Q11,
    Q15,
}

impl QueryId {
    /// The batched-experiment sequence (Section 6.1).
    pub const BATCH_SEQUENCE: [QueryId; 6] = [
        QueryId::Q3,
        QueryId::Q5,
        QueryId::Q7,
        QueryId::Q8,
        QueryId::Q9,
        QueryId::Q10,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            QueryId::Q2 => "Q2",
            QueryId::Q3 => "Q3",
            QueryId::Q5 => "Q5",
            QueryId::Q7 => "Q7",
            QueryId::Q8 => "Q8",
            QueryId::Q9 => "Q9",
            QueryId::Q10 => "Q10",
            QueryId::Q15 => "Q15",
            QueryId::Q11 => "Q11",
        }
    }
}

/// Builds workload queries over a context, caching built plans so that the
/// same `(query, variant)` always yields the identical plan (and therefore
/// the identical synthetic aggregate-output columns — required for
/// cross-reference sharing inside Q2/Q11/Q15).
pub struct QueryFactory {
    cache: HashMap<(QueryId, u8), PlanNode>,
    decorrelated_cache: HashMap<u8, Vec<PlanNode>>,
    synths: HashMap<String, ColId>,
}

impl QueryFactory {
    /// An empty factory.
    pub fn new() -> Self {
        QueryFactory {
            cache: HashMap::new(),
            decorrelated_cache: HashMap::new(),
            synths: HashMap::new(),
        }
    }

    /// Builds (or returns the cached) `(query, variant)` plan. Variants 0
    /// and 1 differ in one selection constant.
    pub fn build(&mut self, ctx: &mut DagContext, q: QueryId, variant: u8) -> PlanNode {
        assert!(variant < 2, "two variants per query");
        if let Some(p) = self.cache.get(&(q, variant)) {
            return p.clone();
        }
        let plan = match q {
            QueryId::Q2 => self.q2(ctx, variant, false),
            QueryId::Q3 => q3(self, ctx, variant),
            QueryId::Q5 => q5(self, ctx, variant),
            QueryId::Q7 => q7(self, ctx, variant),
            QueryId::Q8 => q8(self, ctx, variant),
            QueryId::Q9 => q9(self, ctx, variant),
            QueryId::Q10 => q10(self, ctx, variant),
            QueryId::Q11 => self.q11(ctx, variant).1,
            QueryId::Q15 => self.q15(ctx, variant).1,
        };
        self.cache.insert((q, variant), plan.clone());
        plan
    }

    /// Q2 (minimum-cost supplier): the outer block joined with the
    /// min-supplycost subquery over the same relations. With
    /// `decorrelated = false` this is the single correlated-style DAG; the
    /// decorrelated form [`QueryFactory::q2_decorrelated`] submits the
    /// subquery as its own batch member.
    fn q2(&mut self, ctx: &mut DagContext, variant: u8, _decorrelated: bool) -> PlanNode {
        let (inner, outer) = self.q2_blocks(ctx, variant);
        let ps = ctx.instance_by_name("partsupp", 0);
        let min_cost = self.q2_min_cost_col(ctx, variant);
        let pred = Predicate::join(ctx.col(ps, "ps_supplycost"), min_cost);
        outer.join(inner, pred)
    }

    /// The decorrelated Q2 ("Q2-D ... is actually a batch of queries"): the
    /// aggregate subquery as one query, the main query (reusing the same
    /// subexpression) as another.
    pub fn q2_decorrelated(&mut self, ctx: &mut DagContext, variant: u8) -> Vec<PlanNode> {
        if let Some(b) = self.decorrelated_cache.get(&variant) {
            return b.clone();
        }
        let (inner, outer) = self.q2_blocks(ctx, variant);
        let ps = ctx.instance_by_name("partsupp", 0);
        let min_cost = self.q2_min_cost_col(ctx, variant);
        let pred = Predicate::join(ctx.col(ps, "ps_supplycost"), min_cost);
        let main = outer.join(inner.clone(), pred);
        let batch = vec![inner, main];
        self.decorrelated_cache.insert(variant, batch.clone());
        batch
    }

    fn q2_min_cost_col(&mut self, ctx: &mut DagContext, variant: u8) -> ColId {
        self.synth(
            ctx,
            format!("q2_min_cost_v{variant}"),
            ColumnStats::new(50_000.0, 100, 100_000),
            8,
        )
    }

    /// `(inner aggregate block, outer block)` of Q2.
    fn q2_blocks(&mut self, ctx: &mut DagContext, variant: u8) -> (PlanNode, PlanNode) {
        let region_name = ["EUROPE", "ASIA"][variant as usize];
        let r_code = dict_code(ctx, region_name);
        let p = ctx.instance_by_name("part", 0);
        let ps = ctx.instance_by_name("partsupp", 0);
        let s = ctx.instance_by_name("supplier", 0);
        let n = ctx.instance_by_name("nation", 0);
        let r = ctx.instance_by_name("region", 0);

        // Shared block: partsupp ⋈ supplier ⋈ nation ⋈ σ_{r_name}(region).
        let shared = PlanNode::scan(ps)
            .join(
                PlanNode::scan(s),
                Predicate::join(ctx.col(ps, "ps_suppkey"), ctx.col(s, "s_suppkey")),
            )
            .join(
                PlanNode::scan(n),
                Predicate::join(ctx.col(s, "s_nationkey"), ctx.col(n, "n_nationkey")),
            )
            .join(
                PlanNode::scan(r)
                    .select(Predicate::on(ctx.col(r, "r_name"), Constraint::eq(r_code))),
                Predicate::join(ctx.col(n, "n_regionkey"), ctx.col(r, "r_regionkey")),
            );

        let min_cost = self.q2_min_cost_col(ctx, variant);
        let inner = shared.clone().aggregate(AggSpec::new(
            vec![ctx.col(ps, "ps_partkey")],
            vec![AggCall {
                func: AggFunc::Min,
                input: ctx.col(ps, "ps_supplycost"),
                output: min_cost,
            }],
        ));

        let outer = PlanNode::scan(p)
            .select(
                Predicate::on(ctx.col(p, "p_size"), Constraint::eq(15)).and(&Predicate::on(
                    ctx.col(p, "p_type"),
                    Constraint::eq(42 + i64::from(variant)),
                )),
            )
            .join(
                shared,
                Predicate::join(ctx.col(p, "p_partkey"), ctx.col(ps, "ps_partkey")),
            );
        (inner, outer)
    }

    /// Q11 (important stock): per-part value vs. a scalar total over the
    /// same `partsupp ⋈ supplier ⋈ σ_{n_name}(nation)` block. Returns
    /// `(shared block, full query)`.
    fn q11(&mut self, ctx: &mut DagContext, variant: u8) -> (PlanNode, PlanNode) {
        let nation_name = ["GERMANY", "FRANCE"][variant as usize];
        let n_code = dict_code(ctx, nation_name);
        let ps = ctx.instance_by_name("partsupp", 0);
        let s = ctx.instance_by_name("supplier", 0);
        let n = ctx.instance_by_name("nation", 0);

        let shared = PlanNode::scan(ps)
            .join(
                PlanNode::scan(s),
                Predicate::join(ctx.col(ps, "ps_suppkey"), ctx.col(s, "s_suppkey")),
            )
            .join(
                PlanNode::scan(n)
                    .select(Predicate::on(ctx.col(n, "n_name"), Constraint::eq(n_code))),
                Predicate::join(ctx.col(s, "s_nationkey"), ctx.col(n, "n_nationkey")),
            );

        let value = self.synth(
            ctx,
            format!("q11_value_v{variant}"),
            ColumnStats::new(30_000.0, 0, 1_000_000_000),
            8,
        );
        let total = self.synth(
            ctx,
            format!("q11_total_v{variant}"),
            ColumnStats::new(1.0, 0, 1_000_000_000_000),
            8,
        );
        let by_part = shared.clone().aggregate(AggSpec::new(
            vec![ctx.col(ps, "ps_partkey")],
            vec![AggCall {
                func: AggFunc::Sum,
                input: ctx.col(ps, "ps_supplycost"),
                output: value,
            }],
        ));
        let scalar = shared.clone().aggregate(AggSpec::new(
            vec![],
            vec![AggCall {
                func: AggFunc::Sum,
                input: ctx.col(ps, "ps_supplycost"),
                output: total,
            }],
        ));
        // The HAVING comparison `value > fraction·total` modeled as the join
        // of the grouped view with the one-row scalar view.
        let q = by_part.join(scalar, Predicate::join(value, total));
        (shared, q)
    }

    /// Q15 (top supplier): the revenue view over a shipdate quarter is used
    /// both as a join input and under the scalar MAX. Returns
    /// `(revenue view, full query)`.
    fn q15(&mut self, ctx: &mut DagContext, variant: u8) -> (PlanNode, PlanNode) {
        let l = ctx.instance_by_name("lineitem", 0);
        let s = ctx.instance_by_name("supplier", 0);
        let start = [date(1996, 1, 1), date(1996, 4, 1)][variant as usize];
        let end = start + 90;

        let revenue_col = self.synth(
            ctx,
            format!("q15_revenue_v{variant}"),
            ColumnStats::new(10_000.0, 0, 1_000_000_000),
            8,
        );
        let max_col = self.synth(
            ctx,
            format!("q15_max_revenue_v{variant}"),
            ColumnStats::new(1.0, 0, 1_000_000_000),
            8,
        );

        let revenue = PlanNode::scan(l)
            .select(Predicate::on(
                ctx.col(l, "l_shipdate"),
                Constraint::range(Some(start), Some(end - 1)),
            ))
            .aggregate(AggSpec::new(
                vec![ctx.col(l, "l_suppkey")],
                vec![AggCall {
                    func: AggFunc::Sum,
                    input: ctx.col(l, "l_extendedprice"),
                    output: revenue_col,
                }],
            ));
        let max_view = revenue.clone().aggregate(AggSpec::new(
            vec![],
            vec![AggCall {
                func: AggFunc::Max,
                input: revenue_col,
                output: max_col,
            }],
        ));
        let q = PlanNode::scan(s)
            .join(
                revenue.clone(),
                Predicate::join(ctx.col(s, "s_suppkey"), ctx.col(l, "l_suppkey")),
            )
            .join(max_view, Predicate::join(revenue_col, max_col));
        (revenue, q)
    }

    /// Registers a synthetic column once per name; later calls with the
    /// same name return the same column id (shared views must share their
    /// output columns, and Q2's join predicate must reference the inner
    /// block's aggregate output).
    fn synth(
        &mut self,
        ctx: &mut DagContext,
        name: String,
        stats: ColumnStats,
        width: u32,
    ) -> ColId {
        if let Some(&c) = self.synths.get(&name) {
            return c;
        }
        let c = ctx.add_synth(name.clone(), stats, width);
        self.synths.insert(name, c);
        c
    }
}

impl Default for QueryFactory {
    fn default() -> Self {
        Self::new()
    }
}

/// Resolves an interned dictionary code.
fn dict_code(ctx: &DagContext, s: &str) -> i64 {
    ctx.catalog()
        .dict()
        .code(s)
        .unwrap_or_else(|| panic!("constant {s:?} not interned in the catalog"))
}

/// Q3 (shipping priority): customer ⋈ orders ⋈ lineitem with a market
/// segment and two date selections; revenue per order. The variant flips
/// the market segment.
fn q3(f: &mut QueryFactory, ctx: &mut DagContext, variant: u8) -> PlanNode {
    let seg = ["BUILDING", "AUTOMOBILE"][variant as usize];
    let seg_code = dict_code(ctx, seg);
    let c = ctx.instance_by_name("customer", 0);
    let o = ctx.instance_by_name("orders", 0);
    let l = ctx.instance_by_name("lineitem", 0);
    let cutoff = date(1995, 3, 15);

    PlanNode::scan(c)
        .select(Predicate::on(
            ctx.col(c, "c_mktsegment"),
            Constraint::eq(seg_code),
        ))
        .join(
            PlanNode::scan(o).select(Predicate::on(
                ctx.col(o, "o_orderdate"),
                Constraint::le(cutoff - 1),
            )),
            Predicate::join(ctx.col(c, "c_custkey"), ctx.col(o, "o_custkey")),
        )
        .join(
            PlanNode::scan(l).select(Predicate::on(
                ctx.col(l, "l_shipdate"),
                Constraint::ge(cutoff + 1),
            )),
            Predicate::join(ctx.col(o, "o_orderkey"), ctx.col(l, "l_orderkey")),
        )
        .aggregate(AggSpec::new(
            vec![
                ctx.col(l, "l_orderkey"),
                ctx.col(o, "o_orderdate"),
                ctx.col(o, "o_shippriority"),
            ],
            vec![AggCall {
                func: AggFunc::Sum,
                input: ctx.col(l, "l_extendedprice"),
                output: f.synth(
                    ctx,
                    format!("q3_revenue_v{variant}"),
                    ColumnStats::new(100_000.0, 0, 1_000_000_000),
                    8,
                ),
            }],
        ))
}

/// Q5 (local supplier volume): six-way join restricted to one region and
/// one order year; revenue per nation. The variant flips the region.
fn q5(f: &mut QueryFactory, ctx: &mut DagContext, variant: u8) -> PlanNode {
    let region = ["ASIA", "EUROPE"][variant as usize];
    let r_code = dict_code(ctx, region);
    let c = ctx.instance_by_name("customer", 0);
    let o = ctx.instance_by_name("orders", 0);
    let l = ctx.instance_by_name("lineitem", 0);
    let s = ctx.instance_by_name("supplier", 0);
    let n = ctx.instance_by_name("nation", 0);
    let r = ctx.instance_by_name("region", 0);
    let y0 = date(1994, 1, 1);
    let y1 = date(1995, 1, 1);

    PlanNode::scan(c)
        .join(
            PlanNode::scan(o).select(Predicate::on(
                ctx.col(o, "o_orderdate"),
                Constraint::range(Some(y0), Some(y1 - 1)),
            )),
            Predicate::join(ctx.col(c, "c_custkey"), ctx.col(o, "o_custkey")),
        )
        .join(
            PlanNode::scan(l),
            Predicate::join(ctx.col(o, "o_orderkey"), ctx.col(l, "l_orderkey")),
        )
        .join(
            PlanNode::scan(s).join(
                PlanNode::scan(n).join(
                    PlanNode::scan(r)
                        .select(Predicate::on(ctx.col(r, "r_name"), Constraint::eq(r_code))),
                    Predicate::join(ctx.col(n, "n_regionkey"), ctx.col(r, "r_regionkey")),
                ),
                Predicate::join(ctx.col(s, "s_nationkey"), ctx.col(n, "n_nationkey")),
            ),
            {
                // Supplier and customer must share the nation: both equi
                // atoms connect the two sides of this join.
                let mut p = Predicate::join(ctx.col(l, "l_suppkey"), ctx.col(s, "s_suppkey"));
                p.add_equi(ctx.col(c, "c_nationkey"), ctx.col(s, "s_nationkey"));
                p
            },
        )
        .aggregate(AggSpec::new(
            vec![ctx.col(n, "n_name")],
            vec![AggCall {
                func: AggFunc::Sum,
                input: ctx.col(l, "l_extendedprice"),
                output: f.synth(
                    ctx,
                    format!("q5_revenue_v{variant}"),
                    ColumnStats::new(25.0, 0, 1_000_000_000),
                    8,
                ),
            }],
        ))
}

/// Q7 (volume shipping): lineitems shipped between a supplier nation and a
/// customer nation over two years. The variant flips the customer nation.
fn q7(f: &mut QueryFactory, ctx: &mut DagContext, variant: u8) -> PlanNode {
    let supp_nation = dict_code(ctx, "FRANCE");
    let cust_nation = dict_code(ctx, ["GERMANY", "RUSSIA"][variant as usize]);
    let s = ctx.instance_by_name("supplier", 0);
    let l = ctx.instance_by_name("lineitem", 0);
    let o = ctx.instance_by_name("orders", 0);
    let c = ctx.instance_by_name("customer", 0);
    let n1 = ctx.instance_by_name("nation", 0);
    let n2 = ctx.instance_by_name("nation", 1);

    PlanNode::scan(s)
        .join(
            PlanNode::scan(n1).select(Predicate::on(
                ctx.col(n1, "n_name"),
                Constraint::eq(supp_nation),
            )),
            Predicate::join(ctx.col(s, "s_nationkey"), ctx.col(n1, "n_nationkey")),
        )
        .join(
            PlanNode::scan(l).select(Predicate::on(
                ctx.col(l, "l_shipdate"),
                Constraint::range(Some(date(1995, 1, 1)), Some(date(1996, 12, 31))),
            )),
            Predicate::join(ctx.col(s, "s_suppkey"), ctx.col(l, "l_suppkey")),
        )
        .join(
            PlanNode::scan(o).join(
                PlanNode::scan(c).join(
                    PlanNode::scan(n2).select(Predicate::on(
                        ctx.col(n2, "n_name"),
                        Constraint::eq(cust_nation),
                    )),
                    Predicate::join(ctx.col(c, "c_nationkey"), ctx.col(n2, "n_nationkey")),
                ),
                Predicate::join(ctx.col(o, "o_custkey"), ctx.col(c, "c_custkey")),
            ),
            Predicate::join(ctx.col(l, "l_orderkey"), ctx.col(o, "o_orderkey")),
        )
        .aggregate(AggSpec::new(
            vec![ctx.col(n1, "n_name"), ctx.col(n2, "n_name")],
            vec![AggCall {
                func: AggFunc::Sum,
                input: ctx.col(l, "l_extendedprice"),
                output: f.synth(
                    ctx,
                    format!("q7_volume_v{variant}"),
                    ColumnStats::new(4.0, 0, 1_000_000_000),
                    8,
                ),
            }],
        ))
}

/// Q8 (national market share): eight-way join over an America-region
/// customer base for one part type. The variant flips the part type.
fn q8(f: &mut QueryFactory, ctx: &mut DagContext, variant: u8) -> PlanNode {
    let r_code = dict_code(ctx, "AMERICA");
    let p_type = 100 + i64::from(variant); // two adjacent type codes
    let p = ctx.instance_by_name("part", 0);
    let s = ctx.instance_by_name("supplier", 0);
    let l = ctx.instance_by_name("lineitem", 0);
    let o = ctx.instance_by_name("orders", 0);
    let c = ctx.instance_by_name("customer", 0);
    let n1 = ctx.instance_by_name("nation", 0);
    let n2 = ctx.instance_by_name("nation", 1);
    let r = ctx.instance_by_name("region", 0);

    PlanNode::scan(p)
        .select(Predicate::on(ctx.col(p, "p_type"), Constraint::eq(p_type)))
        .join(
            PlanNode::scan(l).join(
                PlanNode::scan(o).select(Predicate::on(
                    ctx.col(o, "o_orderdate"),
                    Constraint::range(Some(date(1995, 1, 1)), Some(date(1996, 12, 31))),
                )),
                Predicate::join(ctx.col(l, "l_orderkey"), ctx.col(o, "o_orderkey")),
            ),
            Predicate::join(ctx.col(p, "p_partkey"), ctx.col(l, "l_partkey")),
        )
        .join(
            PlanNode::scan(c).join(
                PlanNode::scan(n1).join(
                    PlanNode::scan(r)
                        .select(Predicate::on(ctx.col(r, "r_name"), Constraint::eq(r_code))),
                    Predicate::join(ctx.col(n1, "n_regionkey"), ctx.col(r, "r_regionkey")),
                ),
                Predicate::join(ctx.col(c, "c_nationkey"), ctx.col(n1, "n_nationkey")),
            ),
            Predicate::join(ctx.col(o, "o_custkey"), ctx.col(c, "c_custkey")),
        )
        .join(
            PlanNode::scan(s).join(
                PlanNode::scan(n2),
                Predicate::join(ctx.col(s, "s_nationkey"), ctx.col(n2, "n_nationkey")),
            ),
            Predicate::join(ctx.col(l, "l_suppkey"), ctx.col(s, "s_suppkey")),
        )
        .aggregate(AggSpec::new(
            vec![ctx.col(n2, "n_name")],
            vec![AggCall {
                func: AggFunc::Sum,
                input: ctx.col(l, "l_extendedprice"),
                output: f.synth(
                    ctx,
                    format!("q8_volume_v{variant}"),
                    ColumnStats::new(25.0, 0, 1_000_000_000),
                    8,
                ),
            }],
        ))
}

/// Q9 (product type profit): six-way join over parts whose name matches a
/// pattern (modeled as a key-range window selecting ~6% of parts); profit
/// per nation. The variant shifts the window.
fn q9(f: &mut QueryFactory, ctx: &mut DagContext, variant: u8) -> PlanNode {
    let p = ctx.instance_by_name("part", 0);
    let s = ctx.instance_by_name("supplier", 0);
    let l = ctx.instance_by_name("lineitem", 0);
    let ps = ctx.instance_by_name("partsupp", 0);
    let o = ctx.instance_by_name("orders", 0);
    let n = ctx.instance_by_name("nation", 0);
    let part_rows = ctx
        .catalog()
        .table(ctx.catalog().table_id("part").unwrap())
        .rows as i64;
    let window = part_rows / 17;
    let lo = i64::from(variant) * 4 * window;
    let hi = lo + window;

    PlanNode::scan(p)
        .select(Predicate::on(
            ctx.col(p, "p_name"),
            Constraint::range(Some(lo), Some(hi)),
        ))
        .join(
            PlanNode::scan(l),
            Predicate::join(ctx.col(p, "p_partkey"), ctx.col(l, "l_partkey")),
        )
        .join(PlanNode::scan(ps), {
            let mut pred = Predicate::join(ctx.col(ps, "ps_partkey"), ctx.col(l, "l_partkey"));
            pred.add_equi(ctx.col(ps, "ps_suppkey"), ctx.col(l, "l_suppkey"));
            pred
        })
        .join(
            PlanNode::scan(s).join(
                PlanNode::scan(n),
                Predicate::join(ctx.col(s, "s_nationkey"), ctx.col(n, "n_nationkey")),
            ),
            Predicate::join(ctx.col(l, "l_suppkey"), ctx.col(s, "s_suppkey")),
        )
        .join(
            PlanNode::scan(o),
            Predicate::join(ctx.col(l, "l_orderkey"), ctx.col(o, "o_orderkey")),
        )
        .aggregate(AggSpec::new(
            vec![ctx.col(n, "n_name")],
            vec![AggCall {
                func: AggFunc::Sum,
                input: ctx.col(l, "l_extendedprice"),
                output: f.synth(
                    ctx,
                    format!("q9_profit_v{variant}"),
                    ColumnStats::new(25.0, 0, 1_000_000_000),
                    8,
                ),
            }],
        ))
}

/// Q10 (returned items): customer ⋈ orders ⋈ lineitem ⋈ nation over one
/// order quarter and returned lineitems; revenue per customer. The variant
/// shifts the quarter.
fn q10(f: &mut QueryFactory, ctx: &mut DagContext, variant: u8) -> PlanNode {
    let c = ctx.instance_by_name("customer", 0);
    let o = ctx.instance_by_name("orders", 0);
    let l = ctx.instance_by_name("lineitem", 0);
    let n = ctx.instance_by_name("nation", 0);
    let start = [date(1993, 10, 1), date(1994, 1, 1)][variant as usize];
    let end = start + 90;

    PlanNode::scan(c)
        .join(
            PlanNode::scan(o).select(Predicate::on(
                ctx.col(o, "o_orderdate"),
                Constraint::range(Some(start), Some(end - 1)),
            )),
            Predicate::join(ctx.col(c, "c_custkey"), ctx.col(o, "o_custkey")),
        )
        .join(
            PlanNode::scan(l).select(Predicate::on(
                ctx.col(l, "l_returnflag"),
                Constraint::eq(2), // 'R'
            )),
            Predicate::join(ctx.col(o, "o_orderkey"), ctx.col(l, "l_orderkey")),
        )
        .join(
            PlanNode::scan(n),
            Predicate::join(ctx.col(c, "c_nationkey"), ctx.col(n, "n_nationkey")),
        )
        .aggregate(AggSpec::new(
            vec![ctx.col(c, "c_custkey"), ctx.col(n, "n_name")],
            vec![AggCall {
                func: AggFunc::Sum,
                input: ctx.col(l, "l_extendedprice"),
                output: f.synth(
                    ctx,
                    format!("q10_revenue_v{variant}"),
                    ColumnStats::new(50_000.0, 0, 1_000_000_000),
                    8,
                ),
            }],
        ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::catalog;

    fn fresh_ctx() -> DagContext {
        DagContext::new(catalog(1.0))
    }

    #[test]
    fn all_queries_build() {
        let mut ctx = fresh_ctx();
        let mut f = QueryFactory::new();
        for q in [
            QueryId::Q2,
            QueryId::Q3,
            QueryId::Q5,
            QueryId::Q7,
            QueryId::Q8,
            QueryId::Q9,
            QueryId::Q10,
            QueryId::Q11,
            QueryId::Q15,
        ] {
            for v in 0..2 {
                let _ = f.build(&mut ctx, q, v);
            }
        }
    }

    #[test]
    fn factory_caches_per_variant() {
        let mut ctx = fresh_ctx();
        let mut f = QueryFactory::new();
        let a = f.build(&mut ctx, QueryId::Q15, 0);
        let synths_after_first = format!("{a:?}");
        let b = f.build(&mut ctx, QueryId::Q15, 0);
        assert_eq!(synths_after_first, format!("{b:?}"), "cached plan reused");
    }

    #[test]
    fn variants_differ_in_exactly_one_constant_family() {
        let mut ctx = fresh_ctx();
        let mut f = QueryFactory::new();
        let a = format!("{:?}", f.build(&mut ctx, QueryId::Q3, 0));
        let b = format!("{:?}", f.build(&mut ctx, QueryId::Q3, 1));
        assert_ne!(a, b);
    }

    #[test]
    fn q2_decorrelated_is_a_batch_of_two() {
        let mut ctx = fresh_ctx();
        let mut f = QueryFactory::new();
        let batch = f.q2_decorrelated(&mut ctx, 0);
        assert_eq!(batch.len(), 2);
    }

    #[test]
    fn self_joined_nation_uses_two_instances() {
        let mut ctx = fresh_ctx();
        let mut f = QueryFactory::new();
        let _ = f.build(&mut ctx, QueryId::Q7, 0);
        // nation occurrence 0 and 1 both registered.
        let n0 = ctx.instance_by_name("nation", 0);
        let n1 = ctx.instance_by_name("nation", 1);
        assert_ne!(n0, n1);
    }
}
