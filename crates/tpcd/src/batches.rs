//! Workload assembly: the composite batched queries BQ1..BQ6 of
//! Experiment 1 and the stand-alone queries of Experiment 2.

use mqo_volcano::{DagContext, PlanNode};

use crate::queries::{QueryFactory, QueryId};
use crate::schema::catalog;

/// A named workload: a context plus the query plans to optimize together.
pub struct Workload {
    /// Display name (`BQ3`, `Q11`, ...).
    pub name: String,
    /// The shared context (catalog + instances + synthetic columns).
    pub ctx: DagContext,
    /// The batch members.
    pub queries: Vec<PlanNode>,
}

/// Builds composite query `BQi` at scale factor `sf`: the first `i` queries
/// of the sequence Q3, Q5, Q7, Q8, Q9, Q10, each instantiated twice with
/// different selection constants (Section 6.1).
pub fn batched(i: usize, sf: f64) -> Workload {
    assert!((1..=6).contains(&i), "BQ1..BQ6");
    let mut ctx = DagContext::new(catalog(sf));
    let mut factory = QueryFactory::new();
    let mut queries = Vec::with_capacity(2 * i);
    for &q in QueryId::BATCH_SEQUENCE.iter().take(i) {
        for variant in 0..2 {
            queries.push(factory.build(&mut ctx, q, variant));
        }
    }
    Workload {
        name: format!("BQ{i}"),
        ctx,
        queries,
    }
}

/// Builds a stand-alone Experiment 2 workload (`Q2`, `Q2-D`, `Q11`, `Q15`).
pub fn standalone(name: &str, sf: f64) -> Workload {
    let mut ctx = DagContext::new(catalog(sf));
    let mut factory = QueryFactory::new();
    let queries = match name {
        "Q2" => vec![factory.build(&mut ctx, QueryId::Q2, 0)],
        "Q2-D" => factory.q2_decorrelated(&mut ctx, 0),
        "Q11" => vec![factory.build(&mut ctx, QueryId::Q11, 0)],
        "Q15" => vec![factory.build(&mut ctx, QueryId::Q15, 0)],
        other => panic!("unknown stand-alone workload {other:?}"),
    };
    Workload {
        name: name.to_string(),
        ctx,
        queries,
    }
}

/// The Experiment 2 workload names, in the paper's order.
pub const STANDALONE_NAMES: [&str; 4] = ["Q2", "Q2-D", "Q11", "Q15"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_sizes() {
        for i in 1..=6 {
            let w = batched(i, 1.0);
            assert_eq!(w.queries.len(), 2 * i);
            assert_eq!(w.name, format!("BQ{i}"));
        }
    }

    #[test]
    fn standalone_workloads_build() {
        for name in STANDALONE_NAMES {
            let w = standalone(name, 1.0);
            assert!(!w.queries.is_empty());
            assert_eq!(w.name, name);
        }
        assert_eq!(standalone("Q2-D", 1.0).queries.len(), 2);
    }

    #[test]
    #[should_panic(expected = "BQ1..BQ6")]
    fn bq0_rejected() {
        let _ = batched(0, 1.0);
    }

    #[test]
    fn scale_factor_propagates() {
        let w = batched(1, 100.0);
        let lineitem = w.ctx.catalog().table_id("lineitem").unwrap();
        assert_eq!(w.ctx.catalog().table(lineitem).rows, 600_000_000.0);
    }
}
