//! Structural tests of the TPCD workload DAGs: each query produces the
//! join graph and sharing structure the experiments rely on.

use mqo_tpcd::{QueryFactory, QueryId};
use mqo_volcano::logical::{Leaf, LogicalOp};
use mqo_volcano::memo::Memo;
use mqo_volcano::rules::{expand, RuleSet};
use mqo_volcano::DagContext;

fn build_memo(queries: &[(QueryId, u8)]) -> (Memo, Vec<mqo_volcano::GroupId>) {
    let mut ctx = DagContext::new(mqo_tpcd::schema::catalog(1.0));
    let mut f = QueryFactory::new();
    let plans: Vec<_> = queries
        .iter()
        .map(|&(q, v)| f.build(&mut ctx, q, v))
        .collect();
    let mut memo = Memo::new(ctx);
    let roots: Vec<_> = plans.iter().map(|p| memo.insert_plan(p)).collect();
    for &r in &roots {
        memo.add_query_root(r);
    }
    (memo, roots)
}

/// Number of distinct base-table instances under a group.
fn leaf_instances(memo: &Memo, g: mqo_volcano::GroupId) -> usize {
    fn count(
        memo: &Memo,
        g: mqo_volcano::GroupId,
        seen: &mut std::collections::HashSet<mqo_volcano::InstanceId>,
    ) {
        for leaf in &memo.props(g).leaves {
            match leaf {
                Leaf::Instance(i) => {
                    seen.insert(*i);
                }
                Leaf::Agg(a) => {
                    let a = memo.find(*a);
                    for e in memo.group_exprs(a) {
                        for &c in memo.expr(e).children {
                            count(memo, memo.find(c), seen);
                        }
                    }
                }
            }
        }
    }
    let mut seen = std::collections::HashSet::new();
    count(memo, g, &mut seen);
    seen.len()
}

#[test]
fn relation_counts_per_query() {
    // The join-graph sizes of the simplified queries (counting distinct
    // table instances reachable through views).
    let expected = [
        (QueryId::Q3, 3),
        (QueryId::Q5, 6),
        (QueryId::Q7, 6),
        (QueryId::Q8, 8),
        (QueryId::Q9, 6),
        (QueryId::Q10, 4),
        (QueryId::Q11, 3),
        (QueryId::Q15, 2),
        (QueryId::Q2, 5),
    ];
    for (q, n) in expected {
        let (memo, roots) = build_memo(&[(q, 0)]);
        assert_eq!(
            leaf_instances(&memo, roots[0]),
            n,
            "{} must touch {n} table instances",
            q.name()
        );
    }
}

#[test]
fn q3_variants_share_all_but_the_segment_select() {
    let (mut memo, roots) = build_memo(&[(QueryId::Q3, 0), (QueryId::Q3, 1)]);
    assert_ne!(memo.find(roots[0]), memo.find(roots[1]));
    // Before expansion the two variants already share the date-filtered
    // orders and lineitem selections (identical constants).
    let shared_selects = memo
        .expr_ids()
        .filter(|&e| {
            matches!(memo.expr(e).op, LogicalOp::Select(_))
                && memo.group_parents(memo.group_of(e)).len() >= 2
        })
        .count();
    assert!(
        shared_selects >= 2,
        "date selections must be shared between the Q3 variants"
    );
    let _ = expand(&mut memo, &RuleSet::default());
}

#[test]
fn q11_aggregates_share_their_join_block() {
    let (memo, roots) = build_memo(&[(QueryId::Q11, 0)]);
    // The top join's two children are aggregates over the same group.
    let root_exprs: Vec<_> = memo.group_exprs(roots[0]).collect();
    assert_eq!(root_exprs.len(), 1);
    let top = memo.expr(root_exprs[0]);
    assert!(matches!(top.op, LogicalOp::Join(_)));
    let agg_children: Vec<_> = top
        .children
        .iter()
        .map(|&c| {
            let g = memo.find(c);
            let aggs: Vec<_> = memo
                .group_exprs(g)
                .filter(|&e| matches!(memo.expr(e).op, LogicalOp::Aggregate(_)))
                .collect();
            assert_eq!(aggs.len(), 1, "each side is an aggregate view");
            memo.find(memo.expr(aggs[0]).children[0])
        })
        .collect();
    assert_eq!(
        agg_children[0], agg_children[1],
        "both aggregates must consume the same shared join block"
    );
}

#[test]
fn q15_revenue_view_used_twice() {
    let (memo, roots) = build_memo(&[(QueryId::Q15, 0)]);
    // Find the grouped revenue aggregate; it must have two distinct live
    // parents (the supplier join and the scalar MAX).
    let revenue = memo
        .expr_ids()
        .find_map(|e| match &memo.expr(e).op {
            LogicalOp::Aggregate(spec) if !spec.is_scalar() => Some(memo.group_of(e)),
            _ => None,
        })
        .expect("grouped revenue aggregate");
    assert!(
        memo.group_parents(revenue).len() >= 2,
        "revenue view must have two consumers"
    );
    let _ = roots;
}

#[test]
fn q2_decorrelated_shares_inner_block_with_main() {
    let mut ctx = DagContext::new(mqo_tpcd::schema::catalog(1.0));
    let mut f = QueryFactory::new();
    let plans = f.q2_decorrelated(&mut ctx, 0);
    let mut memo = Memo::new(ctx);
    let roots: Vec<_> = plans.iter().map(|p| memo.insert_plan(p)).collect();
    // The subquery root (first batch member) must be reachable from the
    // main query (second member).
    let reach = memo.reachable(roots[1]);
    assert!(
        reach.contains(&memo.find(roots[0])),
        "the main query must reference the view query's root group"
    );
}

#[test]
fn variants_change_exactly_one_constant() {
    // For every batched query, the two variants differ and unify on the
    // non-varied subexpressions after insertion.
    for q in QueryId::BATCH_SEQUENCE {
        let (memo, roots) = build_memo(&[(q, 0), (q, 1)]);
        assert_ne!(
            memo.find(roots[0]),
            memo.find(roots[1]),
            "{} variants must be distinct queries",
            q.name()
        );
        // At least the bare scans unify, so the memo has fewer groups than
        // two disjoint copies would produce.
        let reach0 = memo.reachable(roots[0]).len();
        let reach1 = memo.reachable(roots[1]).len();
        let total = memo.n_groups();
        assert!(
            total < reach0 + reach1,
            "{}: no sharing between variants ({total} vs {reach0}+{reach1})",
            q.name()
        );
    }
}

#[test]
fn scale_factor_changes_only_statistics() {
    let (memo1, _) = build_memo(&[(QueryId::Q5, 0)]);
    let mut ctx = DagContext::new(mqo_tpcd::schema::catalog(100.0));
    let mut f = QueryFactory::new();
    let plan = f.build(&mut ctx, QueryId::Q5, 0);
    let mut memo100 = Memo::new(ctx);
    memo100.insert_plan(&plan);
    assert_eq!(memo1.n_groups(), memo100.n_groups());
    assert_eq!(memo1.n_exprs(), memo100.n_exprs());
}
