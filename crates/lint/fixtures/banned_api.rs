//! Fixture: every finding here must be `banned-api`.
//! Linted as-if at `examples/fixture.rs`.

fn main() {
    let plans = [1, 2, 3];
    optimize(&plans);
    let _ = compare(&plans, &plans);
}

// Re-definitions count too: a local shadowing helper resurrects the old
// API shape just as much as a call does.
fn optimize(_: &[i32]) {}

fn compare(a: &[i32], b: &[i32]) -> bool {
    a.len() == b.len()
}
