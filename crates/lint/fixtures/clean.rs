//! Fixture: benign look-alikes of every rule's pattern; zero findings.
//! Linted as-if at `crates/core/src/engine.rs` (a commit-path module), so
//! a lexer that misreads a literal or comment *will* misfire here.
//!
//! Doc-comment mentions of partial_cmp, Instant::now, SystemTime, and
//! .lock().unwrap() must not fire either.

use std::collections::HashMap;

fn fixture<'a>(index: &'a HashMap<u64, usize>, key: u64) -> Option<&'a usize> {
    // Pattern words inside string literals are not code:
    let _s = "call .partial_cmp( and .lock().unwrap() and optimize(x)";
    let _raw = r#"Instant::now() SystemTime "quoted" "#;
    let _hashes = r##"a raw string with "# inside"##;
    let _bytes = b"SystemTime::now()";
    let _ch = 'x';
    let _esc = '\'';
    let _nested = 1; /* comment /* nested: Instant::now() */ still comment */
    // Keyed lookup on a hash map is fine; only iteration is flagged.
    index.get(&key)
}
