//! Fixture: every finding here must be `float-total-order`.
//! Linted as-if at `crates/submod/src/fixture.rs`.

fn fixture(xs: &mut [f64], score: f64, best_score: f64) -> bool {
    // A partial_cmp call site: the PR 3 heap-bug shape.
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    // IEEE ordering of two score expressions.
    score > best_score
}
