//! Fixture: every finding here must be `hashmap-iter-determinism`.
//! Linted as-if at `crates/core/src/engine.rs` (a commit-path module).

use std::collections::{HashMap, HashSet};

fn fixture(index: &HashMap<u64, usize>) -> usize {
    let mut seen: HashSet<u64> = HashSet::new();
    for (k, _) in index {
        seen.insert(*k);
    }
    seen.iter().count() + index.keys().count()
}
