//! Fixture: a crate root without `#![forbid(unsafe_code)]`; the only
//! finding must be `forbid-unsafe-attr`.
//! Linted as-if at `crates/fixture/src/lib.rs`.

pub fn fixture() -> u32 {
    42
}
