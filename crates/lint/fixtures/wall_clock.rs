//! Fixture: every finding here must be `wall-clock`.
//! Linted as-if at `crates/core/src/fixture.rs`.

fn fixture() -> bool {
    let t = std::time::Instant::now();
    let _epoch = std::time::SystemTime::now();
    t.elapsed().as_nanos() > 0
}
