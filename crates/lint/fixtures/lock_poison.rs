//! Fixture: every finding here must be `lock-poison`.
//! Linted as-if at `crates/core/src/fixture.rs`.

use std::sync::{Mutex, RwLock};

fn fixture(m: &Mutex<u32>, rw: &RwLock<u32>) -> u32 {
    let a = *m.lock().unwrap();
    let b = *m.lock().expect("poisoned");
    let c = *rw.read().unwrap();
    let d = *rw.write().expect("writer poisoned");
    a + b + c + d
}
