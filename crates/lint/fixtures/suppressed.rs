//! Fixture: one violation per suppression form; zero findings must
//! survive. Linted as-if at `crates/core/src/batch.rs` (a commit-path
//! module inside mqo-core, so every scoped rule applies).

// mqo-lint: allow-file(wall-clock) -- fixture: file-wide suppression form

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

fn fixture(m: &Mutex<u32>, index: &HashMap<u64, usize>, score: f64, best_score: f64) -> bool {
    let _t = Instant::now(); // covered by the file-wide allow above
    // mqo-lint: allow(lock-poison) -- fixture: marker on the line above the violation
    let _v = *m.lock().unwrap();
    let _n = index.keys().count(); // mqo-lint: allow(hashmap-iter-determinism) -- fixture: same-line marker
    score > best_score // mqo-lint: allow(float-total-order) -- fixture: same-line marker
}
