//! Finding output: human-readable lines and `--json` machine output.

use crate::rules::Finding;

/// Renders findings one per line: `file:line: [rule] message`.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n",
            f.file, f.line, f.rule, f.message
        ));
    }
    out
}

/// Renders findings as a JSON array of
/// `{"file": …, "line": …, "rule": …, "message": …}` objects (stable key
/// order, trailing newline). An empty slice renders as `[]`.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
            json_str(&f.file),
            f.line,
            json_str(f.rule),
            json_str(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
