//! The token-pattern rule engine and the six in-tree invariant rules.
//!
//! Each rule encodes an invariant the compiler cannot see but the paper's
//! guarantees (and past bugs — see the README's rule table) depend on:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `float-total-order` | score ordering goes through `total_cmp`, never `partial_cmp` or IEEE comparison operators |
//! | `lock-poison` | `mqo-core` never propagates lock poisoning (`relock`-style recovery is the sanctioned path) |
//! | `wall-clock` | no `Instant::now`/`SystemTime` outside the bench timing harness and the anytime-budget path |
//! | `hashmap-iter-determinism` | commit-path modules never iterate a `HashMap`/`HashSet` (ordering would leak into published state) |
//! | `banned-api` | examples/bench never resurrect the removed pre-Session free functions |
//! | `forbid-unsafe-attr` | every crate root carries `#![forbid(unsafe_code)]` |
//!
//! Suppressions: `// mqo-lint: allow(<rule>)` suppresses findings of that
//! rule on the comment's own line and the line below it (so the marker can
//! sit above the offending expression); `// mqo-lint: allow-file(<rule>)`
//! anywhere in a file suppresses the rule for the whole file. A
//! suppression naming an unknown rule is itself reported
//! (`bad-suppression`), so a typo cannot silently disable a gate.

use crate::lexer::{lex, TokKind, Token};

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (one of [`RULES`], or `bad-suppression`).
    pub rule: &'static str,
    /// Repo-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

/// All rule identifiers, in reporting order.
pub const RULES: &[&str] = &[
    "float-total-order",
    "lock-poison",
    "wall-clock",
    "hashmap-iter-determinism",
    "banned-api",
    "forbid-unsafe-attr",
];

/// Identifier suffixes treated as f64 *score expressions* by
/// `float-total-order`: the quantities the optimizer orders candidates
/// by, where IEEE comparison semantics (NaN incomparable, `-0.0 == 0.0`)
/// have produced real heap-ordering bugs.
const SCORE_SUFFIXES: &[&str] = &["score", "benefit", "marginal", "bound", "gain", "ratio"];

/// Iteration methods that observe a hash container's nondeterministic
/// order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "retain",
];

/// Commit-path modules for `hashmap-iter-determinism`: files where
/// iteration order can leak into published state (memo ids, universe
/// slots, snapshots, cache contents).
const COMMIT_PATH_MODULES: &[&str] = &[
    "crates/volcano/src/memo.rs",
    "crates/core/src/batch.rs",
    "crates/core/src/serve.rs",
    "crates/core/src/engine.rs",
];

/// The removed pre-Session free functions; calling (or re-defining) one
/// of these names in examples/bench resurrects the old API shape.
const BANNED_FREE_FNS: &[&str] = &["optimize", "optimize_with", "compare"];

fn is_score_ident(t: &Token) -> bool {
    t.kind == TokKind::Ident && SCORE_SUFFIXES.iter().any(|s| t.text.ends_with(s))
}

/// Lints one file: lexes, applies every path-applicable rule, then drops
/// findings covered by `mqo-lint: allow` suppressions. `path` must be
/// repo-relative with forward slashes — rule scoping keys on it.
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    let tokens = lex(src);
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| t.kind != TokKind::Comment)
        .collect();

    let mut findings = Vec::new();
    float_total_order(path, &code, &mut findings);
    lock_poison(path, &code, &mut findings);
    wall_clock(path, &code, &mut findings);
    hashmap_iter_determinism(path, &code, &mut findings);
    banned_api(path, &code, &mut findings);
    forbid_unsafe_attr(path, &code, &mut findings);

    apply_suppressions(path, &tokens, findings)
}

// ---------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------

struct Suppression {
    rule: String,
    line: u32,
    file_wide: bool,
}

/// Parses `mqo-lint: allow(rule)` / `allow-file(rule)` markers out of
/// comment tokens; malformed or unknown-rule markers become
/// `bad-suppression` findings.
fn collect_suppressions(
    path: &str,
    tokens: &[Token],
    findings: &mut Vec<Finding>,
) -> Vec<Suppression> {
    let mut out = Vec::new();
    for t in tokens {
        if t.kind != TokKind::Comment {
            continue;
        }
        // Doc comments (`///`, `//!`, `/**`, `/*!`) are prose *about* the
        // lint, never suppressions — skip them so documentation of the
        // marker syntax doesn't parse as a marker.
        if t.text.starts_with("///")
            || t.text.starts_with("//!")
            || t.text.starts_with("/**")
            || t.text.starts_with("/*!")
        {
            continue;
        }
        let Some(idx) = t.text.find("mqo-lint:") else {
            continue;
        };
        let body = t.text[idx + "mqo-lint:".len()..].trim_start();
        let (file_wide, rest) = if let Some(r) = body.strip_prefix("allow-file(") {
            (true, r)
        } else if let Some(r) = body.strip_prefix("allow(") {
            (false, r)
        } else {
            findings.push(Finding {
                rule: "bad-suppression",
                file: path.to_string(),
                line: t.line,
                message: format!(
                    "unparseable mqo-lint marker (expected `allow(<rule>)` or \
                     `allow-file(<rule>)`): `{}`",
                    body.trim_end()
                ),
            });
            continue;
        };
        let Some(close) = rest.find(')') else {
            findings.push(Finding {
                rule: "bad-suppression",
                file: path.to_string(),
                line: t.line,
                message: "unterminated mqo-lint allow marker (missing `)`)".to_string(),
            });
            continue;
        };
        let rule = rest[..close].trim();
        if !RULES.contains(&rule) {
            findings.push(Finding {
                rule: "bad-suppression",
                file: path.to_string(),
                line: t.line,
                message: format!("mqo-lint allow names an unknown rule `{rule}`"),
            });
            continue;
        }
        out.push(Suppression {
            rule: rule.to_string(),
            line: t.line,
            file_wide,
        });
    }
    out
}

fn apply_suppressions(path: &str, tokens: &[Token], findings: Vec<Finding>) -> Vec<Finding> {
    let mut kept = Vec::new();
    let suppressions = collect_suppressions(path, tokens, &mut kept);
    for f in findings {
        let suppressed = suppressions
            .iter()
            .any(|s| s.rule == f.rule && (s.file_wide || f.line == s.line || f.line == s.line + 1));
        if !suppressed {
            kept.push(f);
        }
    }
    kept.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.rule.cmp(b.rule)));
    kept
}

// ---------------------------------------------------------------------
// Rule implementations
// ---------------------------------------------------------------------

/// `float-total-order`: flags `.partial_cmp(` call sites and IEEE
/// comparison operators (`<`, `>`, `<=`, `>=`, `==`, `!=`) whose adjacent
/// operand is a score identifier (suffix in [`SCORE_SUFFIXES`]). PR 3's
/// heap bugs were exactly this: `partial_cmp`-based `PartialEq`/`Ord` on
/// f64 bounds violating the `Eq` contract under NaN/-0.0; `total_cmp` is
/// the sanctioned order.
fn float_total_order(path: &str, code: &[&Token], findings: &mut Vec<Finding>) {
    for (i, t) in code.iter().enumerate() {
        if t.kind == TokKind::Ident && t.text == "partial_cmp" {
            let is_call_site =
                i > 0 && code[i - 1].text == "." && code.get(i + 1).is_some_and(|n| n.text == "(");
            if is_call_site {
                findings.push(Finding {
                    rule: "float-total-order",
                    file: path.to_string(),
                    line: t.line,
                    message: "`partial_cmp` on scores orders NaN/-0.0 inconsistently; \
                              use `f64::total_cmp`"
                        .to_string(),
                });
            }
        }
        if t.kind == TokKind::Punct
            && matches!(t.text.as_str(), "<" | ">" | "<=" | ">=" | "==" | "!=")
        {
            // Only score-vs-score comparisons are flagged: ordering two
            // scores by IEEE semantics is the PR 3 heap-bug class, while
            // a score-vs-literal threshold check is NaN-conservative
            // (compares false, rejecting the candidate) by design.
            let lhs_score = i > 0 && is_score_ident(code[i - 1]);
            // Right operand: allow a unary minus before the identifier,
            // and see through a field path (`config.benefit_floor`).
            let rhs_score = match code.get(i + 1) {
                Some(n) if n.text == "-" => code.get(i + 2).is_some_and(|m| is_score_ident(m)),
                Some(n) if n.kind == TokKind::Ident => {
                    is_score_ident(n)
                        || (code.get(i + 2).is_some_and(|d| d.text == ".")
                            && code.get(i + 3).is_some_and(|m| is_score_ident(m)))
                }
                _ => false,
            };
            if lhs_score && rhs_score {
                findings.push(Finding {
                    rule: "float-total-order",
                    file: path.to_string(),
                    line: t.line,
                    message: format!(
                        "IEEE `{}` ordering two score expressions (NaN compares false, \
                         -0.0 == 0.0): argmax/heap order must go through `total_cmp`",
                        t.text
                    ),
                });
            }
        }
    }
}

/// `lock-poison`: in `mqo-core`, flags `.lock().unwrap()` /
/// `.lock().expect(…)` (and the `read`/`write` RwLock equivalents). A
/// poisoned lock must be *recovered* (the `relock` idiom) — invariants
/// are restored by savepoint rollback, and propagating the poison wedges
/// every later caller of the serving layer.
fn lock_poison(path: &str, code: &[&Token], findings: &mut Vec<Finding>) {
    if !path.starts_with("crates/core/") {
        return;
    }
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident || !matches!(t.text.as_str(), "lock" | "read" | "write") {
            continue;
        }
        // `.lock ( ) . unwrap|expect (`
        let method_call = i > 0 && code[i - 1].text == ".";
        if !method_call {
            continue;
        }
        let [a, b, c, d] = [
            code.get(i + 1).map(|t| t.text.as_str()),
            code.get(i + 2).map(|t| t.text.as_str()),
            code.get(i + 3).map(|t| t.text.as_str()),
            code.get(i + 4).map(|t| t.text.as_str()),
        ];
        if a == Some("(")
            && b == Some(")")
            && c == Some(".")
            && matches!(d, Some("unwrap" | "expect"))
        {
            findings.push(Finding {
                rule: "lock-poison",
                file: path.to_string(),
                line: t.line,
                message: format!(
                    "`.{}().{}(…)` propagates lock poisoning and wedges later callers; \
                     recover the guard (`relock` idiom: \
                     `.unwrap_or_else(PoisonError::into_inner)`)",
                    t.text,
                    d.unwrap()
                ),
            });
        }
    }
}

/// `wall-clock`: flags `Instant::now` and any `SystemTime` use outside
/// the bench timing harness. Wall-clock reads on optimization paths make
/// runs irreproducible; the only sanctioned sites are `mqo_bench::timing`
/// (the measurement harness, allow-listed here) and the anytime-budget
/// path (annotated inline where the deadline is anchored and checked).
fn wall_clock(path: &str, code: &[&Token], findings: &mut Vec<Finding>) {
    if path == "crates/bench/src/timing.rs" {
        return;
    }
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let instant_now = t.text == "Instant"
            && code.get(i + 1).is_some_and(|n| n.text == "::")
            && code.get(i + 2).is_some_and(|n| n.text == "now");
        if instant_now {
            findings.push(Finding {
                rule: "wall-clock",
                file: path.to_string(),
                line: t.line,
                message: "`Instant::now` outside mqo_bench::timing / the budget path \
                          makes runs irreproducible"
                    .to_string(),
            });
        }
        if t.text == "SystemTime" {
            findings.push(Finding {
                rule: "wall-clock",
                file: path.to_string(),
                line: t.line,
                message: "`SystemTime` is wall-clock state; optimization results must not \
                          depend on it"
                    .to_string(),
            });
        }
    }
}

/// `hashmap-iter-determinism`: in commit-path modules, flags iteration
/// over identifiers declared as `HashMap`/`HashSet` in the same file
/// (`.iter()`/`.keys()`/`.values()`/`.drain()`/`.retain()`/… and
/// `for … in &map`). Hash iteration order is nondeterministic per
/// process; on a commit path it leaks into published state (slot
/// numbering, cache contents), breaking the bit-identical-at-every-
/// thread-count contract. Keyed *lookups* are fine.
fn hashmap_iter_determinism(path: &str, code: &[&Token], findings: &mut Vec<Finding>) {
    if !COMMIT_PATH_MODULES.contains(&path) {
        return;
    }
    // Pass 1: identifiers bound to a hash container — field/param/let
    // type annotations (`name: HashMap<…>`, with optional `&`/`mut`) and
    // initializers (`name = HashMap::new()` etc.).
    let mut map_idents: Vec<&str> = Vec::new();
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident || !matches!(t.text.as_str(), "HashMap" | "HashSet") {
            continue;
        }
        let mut j = i;
        while j > 0 && matches!(code[j - 1].text.as_str(), "&" | "&&" | "mut" | "<") {
            j -= 1;
        }
        if j >= 2
            && matches!(code[j - 1].text.as_str(), ":" | "=")
            && code[j - 2].kind == TokKind::Ident
        {
            map_idents.push(code[j - 2].text.as_str());
        }
    }
    // Pass 2: iteration over a tracked identifier.
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident || !map_idents.contains(&t.text.as_str()) {
            continue;
        }
        let method_iter = code.get(i + 1).is_some_and(|n| n.text == ".")
            && code
                .get(i + 2)
                .is_some_and(|n| ITER_METHODS.contains(&n.text.as_str()))
            && code.get(i + 3).is_some_and(|n| n.text == "(");
        // `for … in [&[mut]] [self.]map {`
        let for_in = code.get(i + 1).is_some_and(|n| n.text == "{") && {
            let mut j = i;
            let mut found_in = false;
            for _ in 0..5 {
                if j == 0 {
                    break;
                }
                j -= 1;
                match code[j].text.as_str() {
                    "in" => {
                        found_in = true;
                        break;
                    }
                    "&" | "mut" | "self" | "." => continue,
                    _ => break,
                }
            }
            found_in
        };
        if method_iter || for_in {
            findings.push(Finding {
                rule: "hashmap-iter-determinism",
                file: path.to_string(),
                line: t.line,
                message: format!(
                    "iterating hash container `{}` in a commit-path module: hash order is \
                     nondeterministic and may leak into published state; iterate a sorted \
                     key list instead",
                    t.text
                ),
            });
        }
    }
}

/// `banned-api`: the pre-Session free functions (`optimize`,
/// `optimize_with`, `compare`) are deleted; examples and bench sources
/// may not call or re-define anything with those names (promotion of
/// verify.sh's old grep, same scope and semantics).
fn banned_api(path: &str, code: &[&Token], findings: &mut Vec<Finding>) {
    let scoped = path.starts_with("examples/")
        || path.starts_with("crates/bench/src/")
        || path.starts_with("crates/bench/benches/");
    if !scoped {
        return;
    }
    for (i, t) in code.iter().enumerate() {
        if t.kind == TokKind::Ident
            && BANNED_FREE_FNS.contains(&t.text.as_str())
            && code.get(i + 1).is_some_and(|n| n.text == "(")
        {
            findings.push(Finding {
                rule: "banned-api",
                file: path.to_string(),
                line: t.line,
                message: format!(
                    "`{}(…)` resurrects a removed pre-Session free function; route through \
                     `Session::builder()` / `OptimizedBatch::run*`",
                    t.text
                ),
            });
        }
    }
}

/// `forbid-unsafe-attr`: every crate root (`src/lib.rs` of a workspace
/// member, or the facade's `src/lib.rs`) must carry
/// `#![forbid(unsafe_code)]`. The codebase is unsafe-free; this locks it
/// in at the compiler level and makes the lint's own soundness assumption
/// (no `unsafe` to reason about) checkable.
fn forbid_unsafe_attr(path: &str, code: &[&Token], findings: &mut Vec<Finding>) {
    if !path.ends_with("src/lib.rs") {
        return;
    }
    let pattern = ["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"];
    let found = code
        .windows(pattern.len())
        .any(|w| w.iter().zip(pattern).all(|(t, p)| t.text == p));
    if !found {
        findings.push(Finding {
            rule: "forbid-unsafe-attr",
            file: path.to_string(),
            line: 1,
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        });
    }
}
