//! The `mqo-lint` CLI.
//!
//! ```text
//! mqo-lint [--json] [--root <dir>]
//! ```
//!
//! Lints every workspace `.rs` source under the root (default: the
//! current directory) and exits 1 if any finding survives suppression.
//! `--json` emits a machine-readable array for CI; the default output is
//! one `file:line: [rule] message` per finding.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use mqo_lint::{lint_workspace, report};

fn main() -> ExitCode {
    let mut json = false;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("mqo-lint: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: mqo-lint [--json] [--root <dir>]");
                println!("rules: {}", mqo_lint::RULES.join(", "));
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("mqo-lint: unknown argument `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }

    let findings = match lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("mqo-lint: failed to read workspace sources: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", report::render_json(&findings));
    } else if findings.is_empty() {
        println!("mqo-lint: clean ({} rules)", mqo_lint::RULES.len());
    } else {
        print!("{}", report::render_text(&findings));
        eprintln!("mqo-lint: {} finding(s)", findings.len());
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
