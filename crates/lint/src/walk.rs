//! Workspace file discovery: every `.rs` file the lint gates, as
//! repo-relative forward-slash paths.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Top-level directories scanned under the workspace root.
const SCAN_ROOTS: &[&str] = &["src", "crates", "examples", "tests"];

/// Directory names skipped anywhere in the walk: build output and the
/// lint's own intentionally-violating fixture corpus.
const SKIP_DIRS: &[&str] = &["target", "fixtures"];

/// Collects every `.rs` file under `root`'s scan directories, sorted by
/// repo-relative path so output and exit behavior are deterministic.
pub fn workspace_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for dir in SCAN_ROOTS {
        let p = root.join(dir);
        if p.is_dir() {
            visit(&p, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn visit(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            visit(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `path` relative to `root`, with forward slashes — the path form rule
/// scoping keys on.
pub fn relative_key(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
