//! A hand-rolled Rust lexer, sufficient for token-pattern linting.
//!
//! This is *not* a full Rust lexer — it is exactly the subset the rule
//! engine needs to never misread a source file:
//!
//! * line comments (`//`, `///`, `//!`) and block comments (`/* */`,
//!   **nesting** tracked), kept as [`TokKind::Comment`] tokens so the
//!   suppression scanner can read `// mqo-lint: allow(...)` markers;
//! * string literals with escapes, **raw strings** with any number of
//!   hashes (`r"…"`, `r#"…"#`, `r###"…"###`), byte strings (`b"…"`,
//!   `br#"…"#`), and C strings (`c"…"`) — so a pattern word inside a
//!   literal can never be mistaken for code;
//! * char literals vs lifetimes (`'a'` vs `'a`), including escaped chars
//!   (`'\''`, `'\u{1F600}'`) and byte chars (`b'x'`);
//! * raw identifiers (`r#match`) distinguished from raw strings;
//! * numbers including exponents with signs (`1e-6`), so a following
//!   comparison never sees a phantom `-` operand;
//! * maximal-munch multi-character operators (`::`, `->`, `<=`, `>=`,
//!   `==`, `!=`, `..=`, `<<=`, …) so `a <= b` is one operator token, not
//!   `<` then `=`.
//!
//! Every token carries the 1-based line it starts on; newlines inside
//! block comments and multi-line strings are counted.

/// The kind of a [`Token`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`foo`, `fn`, `r#match` — raw idents are
    /// reported with the `r#` stripped).
    Ident,
    /// A lifetime or loop label (`'a`, `'static`), quote stripped.
    Lifetime,
    /// Numeric literal (`42`, `0xff_u32`, `1e-6`, `3.14f64`).
    Num,
    /// String-ish literal: `"…"`, `r#"…"#`, `b"…"`, `br"…"`, `c"…"`.
    /// Text is the raw source slice including quotes/prefix.
    Str,
    /// Char or byte-char literal (`'a'`, `b'\n'`), quotes included.
    Char,
    /// Punctuation / operator, maximally munched (`::`, `<=`, `+`, …).
    Punct,
    /// A comment (`// …` including the slashes, or `/* … */`); line and
    /// block comments both. Rule matchers skip these; the suppression
    /// scanner reads them.
    Comment,
}

/// One lexed token: kind, source text, and the 1-based line it starts on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The source text of the token (see [`TokKind`] for per-kind notes).
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

/// Multi-character operators, longest first so maximal munch is a plain
/// prefix scan. Single characters fall through to one-char puncts.
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "..", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn peek(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    /// Advances one byte, counting newlines.
    fn bump(&mut self) {
        if self.src[self.pos] == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn slice_from(&self, start: usize) -> String {
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    /// Consumes `// …` to end of line (newline not consumed).
    fn line_comment(&mut self) -> String {
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if c == b'\n' {
                break;
            }
            self.bump();
        }
        self.slice_from(start)
    }

    /// Consumes `/* … */` with nesting; tolerates EOF mid-comment.
    fn block_comment(&mut self) -> String {
        let start = self.pos;
        self.bump_n(2); // "/*"
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump_n(2);
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump_n(2);
                }
                (Some(_), _) => self.bump(),
                (None, _) => break,
            }
        }
        self.slice_from(start)
    }

    /// Consumes a `"…"` body (opening quote already positioned at
    /// `self.pos`), honoring `\` escapes; tolerates EOF.
    fn quoted_string(&mut self) {
        self.bump(); // opening quote
        while let Some(c) = self.peek(0) {
            match c {
                b'\\' => {
                    self.bump();
                    if self.peek(0).is_some() {
                        self.bump();
                    }
                }
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Consumes a raw string starting at the `r` (or after a `b`/`c`
    /// prefix): `r`, then N hashes, then `"` … `"` + N hashes.
    fn raw_string(&mut self) {
        self.bump(); // 'r'
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) != Some(b'"') {
            return; // not actually a raw string; caller guarded against this
        }
        self.bump(); // opening quote
        'scan: while let Some(c) = self.peek(0) {
            self.bump();
            if c == b'"' {
                for i in 0..hashes {
                    if self.peek(i) != Some(b'#') {
                        continue 'scan;
                    }
                }
                self.bump_n(hashes);
                return;
            }
        }
    }

    /// Consumes a char literal body: opening `'` at `self.pos`. Caller has
    /// already decided this is a char, not a lifetime.
    fn char_literal(&mut self) {
        self.bump(); // opening quote
        while let Some(c) = self.peek(0) {
            match c {
                b'\\' => {
                    self.bump();
                    if self.peek(0).is_some() {
                        self.bump();
                    }
                }
                b'\'' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    fn ident_like(&mut self) -> String {
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80 {
                self.bump();
            } else {
                break;
            }
        }
        self.slice_from(start)
    }

    /// Consumes a numeric literal, including `0x…`/`0b…`/`0o…`, `_`
    /// separators, a fractional part, suffixes, and signed exponents
    /// (`1e-6`, `2.5E+10`).
    fn number(&mut self) {
        let radix_prefix = self.peek(0) == Some(b'0')
            && matches!(self.peek(1), Some(b'x' | b'X' | b'b' | b'B' | b'o' | b'O'));
        if radix_prefix {
            self.bump_n(2);
        }
        while let Some(c) = self.peek(0) {
            match c {
                b'0'..=b'9'
                | b'a'..=b'd'
                | b'f'
                | b'A'..=b'D'
                | b'F'
                | b'_'
                | b'u'
                | b'i'
                | b's'
                | b'z' => self.bump(),
                b'e' | b'E' => {
                    // Exponent (with optional sign) in decimal floats;
                    // plain hex digit / suffix letter otherwise.
                    if !radix_prefix
                        && matches!(self.peek(1), Some(b'+' | b'-'))
                        && self.peek(2).is_some_and(|d| d.is_ascii_digit())
                    {
                        self.bump_n(2);
                    } else {
                        self.bump();
                    }
                }
                b'.' => {
                    // `1.5` continues the number; `1..n` and `1.method()`
                    // do not.
                    if self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                        self.bump();
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
    }
}

/// Lexes `src` into tokens (comments included as [`TokKind::Comment`]).
///
/// Never fails: malformed input degrades to single-character punct tokens
/// rather than an error, which is the right behavior for a linter that
/// must not crash on a file rustc itself will reject.
pub fn lex(src: &str) -> Vec<Token> {
    let mut lx = Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Vec::new();
    while let Some(c) = lx.peek(0) {
        let line = lx.line;
        let start = lx.pos;
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                lx.bump();
                continue;
            }
            b'/' if lx.peek(1) == Some(b'/') => {
                let text = lx.line_comment();
                out.push(Token {
                    kind: TokKind::Comment,
                    text,
                    line,
                });
            }
            b'/' if lx.peek(1) == Some(b'*') => {
                let text = lx.block_comment();
                out.push(Token {
                    kind: TokKind::Comment,
                    text,
                    line,
                });
            }
            b'"' => {
                lx.quoted_string();
                out.push(Token {
                    kind: TokKind::Str,
                    text: lx.slice_from(start),
                    line,
                });
            }
            b'r' | b'b' | b'c' => {
                // Raw strings, byte strings, raw idents — or a plain
                // identifier starting with r/b/c.
                let one = lx.peek(1);
                let two = lx.peek(2);
                match (c, one, two) {
                    // r"…" | r#"…"# (note r#ident is a raw ident, guarded
                    // by `two` not being another hash or quote)
                    (b'r', Some(b'"'), _) | (b'r', Some(b'#'), Some(b'"' | b'#')) => {
                        lx.raw_string();
                        out.push(Token {
                            kind: TokKind::Str,
                            text: lx.slice_from(start),
                            line,
                        });
                    }
                    // raw identifier r#match
                    (b'r', Some(b'#'), _) => {
                        lx.bump_n(2);
                        let text = lx.ident_like();
                        out.push(Token {
                            kind: TokKind::Ident,
                            text,
                            line,
                        });
                    }
                    // b"…" | c"…"
                    (b'b' | b'c', Some(b'"'), _) => {
                        lx.bump();
                        lx.quoted_string();
                        out.push(Token {
                            kind: TokKind::Str,
                            text: lx.slice_from(start),
                            line,
                        });
                    }
                    // br"…" | br#"…"# | cr…
                    (b'b' | b'c', Some(b'r'), Some(b'"' | b'#')) => {
                        lx.bump();
                        lx.raw_string();
                        out.push(Token {
                            kind: TokKind::Str,
                            text: lx.slice_from(start),
                            line,
                        });
                    }
                    // b'x'
                    (b'b', Some(b'\''), _) => {
                        lx.bump();
                        lx.char_literal();
                        out.push(Token {
                            kind: TokKind::Char,
                            text: lx.slice_from(start),
                            line,
                        });
                    }
                    _ => {
                        let text = lx.ident_like();
                        out.push(Token {
                            kind: TokKind::Ident,
                            text,
                            line,
                        });
                    }
                }
            }
            b'\'' => {
                // Lifetime vs char literal. `'x` followed by ident chars
                // and NOT a closing quote is a lifetime; everything else
                // ('a', '\n', '(' …) is a char.
                let is_lifetime = match (lx.peek(1), lx.peek(2)) {
                    (Some(n), after) => {
                        (n.is_ascii_alphabetic() || n == b'_') && after != Some(b'\'')
                    }
                    _ => false,
                };
                if is_lifetime {
                    lx.bump(); // quote
                    let text = lx.ident_like();
                    out.push(Token {
                        kind: TokKind::Lifetime,
                        text,
                        line,
                    });
                } else {
                    lx.char_literal();
                    out.push(Token {
                        kind: TokKind::Char,
                        text: lx.slice_from(start),
                        line,
                    });
                }
            }
            b'0'..=b'9' => {
                lx.number();
                out.push(Token {
                    kind: TokKind::Num,
                    text: lx.slice_from(start),
                    line,
                });
            }
            _ if c.is_ascii_alphabetic() || c == b'_' || c >= 0x80 => {
                let text = lx.ident_like();
                out.push(Token {
                    kind: TokKind::Ident,
                    text,
                    line,
                });
            }
            _ => {
                let rest = &lx.src[lx.pos..];
                let op = OPERATORS
                    .iter()
                    .find(|op| rest.starts_with(op.as_bytes()))
                    .copied();
                match op {
                    Some(op) => {
                        lx.bump_n(op.len());
                        out.push(Token {
                            kind: TokKind::Punct,
                            text: op.to_string(),
                            line,
                        });
                    }
                    None => {
                        lx.bump();
                        out.push(Token {
                            kind: TokKind::Punct,
                            text: (c as char).to_string(),
                            line,
                        });
                    }
                }
            }
        }
    }
    out
}
