//! `mqo-lint`: in-tree invariant lints for the provable-MQO workspace.
//!
//! The paper's guarantees only hold in this reproduction because the code
//! maintains hard invariants the compiler cannot see: bit-identical
//! results at every thread count, `total_cmp`-only score ordering,
//! poison-recovering serve locks, and no wall-clock reads outside the
//! budget path. This crate machine-checks them on every verify run:
//!
//! * [`lexer`] — a hand-rolled Rust lexer (nested block comments, raw
//!   strings, char-vs-lifetime disambiguation) so rule patterns never
//!   misfire inside comments or literals;
//! * [`rules`] — the token-pattern rule engine, six rules grounded in
//!   past bugs, and `// mqo-lint: allow(<rule>)` suppressions;
//! * [`report`] — text and `--json` output;
//! * [`walk`] — workspace source discovery.
//!
//! The binary (`cargo run -p mqo-lint --release -- --json`) lints the
//! whole workspace and exits non-zero on any finding; `scripts/verify.sh`
//! runs it as a tier-1 gate. Zero dependencies, like the rest of the
//! workspace.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod report;
pub mod rules;
pub mod walk;

use std::io;
use std::path::Path;

pub use rules::{Finding, RULES};

/// Lints every workspace source under `root`; findings come back sorted
/// by file then line.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for path in walk::workspace_sources(root)? {
        let src = std::fs::read_to_string(&path)?;
        let key = walk::relative_key(root, &path);
        findings.extend(rules::lint_source(&key, &src));
    }
    findings.sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    Ok(findings)
}
