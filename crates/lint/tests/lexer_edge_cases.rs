//! Lexer edge cases: the constructs that break naive tokenizers and
//! would make the rule engine misfire on (or miss) real code.

use mqo_lint::lexer::{lex, TokKind, Token};

fn kinds(src: &str) -> Vec<(TokKind, String)> {
    lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
}

fn non_comment(src: &str) -> Vec<Token> {
    lex(src)
        .into_iter()
        .filter(|t| t.kind != TokKind::Comment)
        .collect()
}

#[test]
fn nested_block_comments_are_one_token() {
    let toks = kinds("a /* outer /* inner */ still outer */ b");
    assert_eq!(
        toks,
        vec![
            (TokKind::Ident, "a".to_string()),
            (
                TokKind::Comment,
                "/* outer /* inner */ still outer */".to_string()
            ),
            (TokKind::Ident, "b".to_string()),
        ]
    );
}

#[test]
fn raw_string_with_hashes_swallows_embedded_quote_hash() {
    let src = r####"let s = r##"has "# inside"##;"####;
    let toks = non_comment(src);
    let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
    assert_eq!(strs.len(), 1);
    assert_eq!(strs[0].text, r###"r##"has "# inside"##"###);
}

#[test]
fn char_vs_lifetime_disambiguation() {
    let toks = non_comment("let c = 'a'; fn f<'a>(x: &'a str) -> &'static str { x }");
    let chars: Vec<_> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Char)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(chars, vec!["'a'"]);
    let lifetimes: Vec<_> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Lifetime)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(lifetimes, vec!["a", "a", "static"]);
}

#[test]
fn escaped_quote_char_and_byte_char() {
    let toks = non_comment(r"('\'', b'q', '\n')");
    let chars: Vec<_> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Char)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(chars, vec![r"'\''", "b'q'", r"'\n'"]);
}

#[test]
fn byte_and_raw_byte_strings() {
    let toks = non_comment(r##"(b"bytes", br#"raw bytes"#)"##);
    let strs: Vec<_> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Str)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(strs, vec![r#"b"bytes""#, r##"br#"raw bytes"#"##]);
}

#[test]
fn raw_identifier_keeps_name_without_prefix() {
    let toks = non_comment("let r#match = 1;");
    assert!(toks
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text == "match"));
}

#[test]
fn signed_exponent_is_a_single_number() {
    let toks = non_comment("x > 1e-6");
    let nums: Vec<_> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Num)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(nums, vec!["1e-6"]);
}

#[test]
fn hex_with_suffix_is_a_single_number() {
    let toks = non_comment("let v = 0xff_u32;");
    let nums: Vec<_> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Num)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(nums, vec!["0xff_u32"]);
}

#[test]
fn range_after_integer_is_not_a_float() {
    let toks = non_comment("for i in 1..n {}");
    let texts: Vec<_> = toks.iter().map(|t| t.text.as_str()).collect();
    assert!(texts.contains(&"1"), "tokens: {texts:?}");
    assert!(texts.contains(&".."), "tokens: {texts:?}");
    assert!(texts.contains(&"n"), "tokens: {texts:?}");
    // And a genuine float still lexes as one token.
    let floats = non_comment("1.5");
    assert_eq!(floats.len(), 1);
    assert_eq!(floats[0].text, "1.5");
}

#[test]
fn multiline_literals_advance_line_numbers() {
    let src = "let a = \"line1\nline2\";\n/* c1\nc2 */\nlet b = 2;";
    let toks = lex(src);
    let b = toks
        .iter()
        .find(|t| t.kind == TokKind::Ident && t.text == "b")
        .expect("ident b");
    assert_eq!(b.line, 5, "tokens: {toks:?}");
}

#[test]
fn operators_munch_maximally() {
    let toks = non_comment("a <= b >>= c :: d .. e");
    let puncts: Vec<_> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Punct)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(puncts, vec!["<=", ">>=", "::", ".."]);
}

#[test]
fn line_comment_runs_to_newline_only() {
    let toks = kinds("x // comment Instant::now()\ny");
    assert_eq!(
        toks,
        vec![
            (TokKind::Ident, "x".to_string()),
            (TokKind::Comment, "// comment Instant::now()".to_string()),
            (TokKind::Ident, "y".to_string()),
        ]
    );
}
