//! Self-test: every fixture in `fixtures/` triggers exactly its intended
//! rule (or, for the suppressed/clean fixtures, nothing at all), and the
//! real tree is clean.
//!
//! Fixtures are linted under a *virtual path* so path-scoped rules see
//! them where they would apply; the real workspace walk skips the
//! `fixtures/` directory entirely.

use std::fs;
use std::path::Path;

use mqo_lint::rules::lint_source;
use mqo_lint::{lint_workspace, Finding};

/// (fixture file, virtual repo-relative path, expected rule).
const VIOLATING: &[(&str, &str, &str)] = &[
    (
        "float_total_order.rs",
        "crates/submod/src/fixture.rs",
        "float-total-order",
    ),
    (
        "lock_poison.rs",
        "crates/core/src/fixture.rs",
        "lock-poison",
    ),
    ("wall_clock.rs", "crates/core/src/fixture.rs", "wall-clock"),
    (
        "hashmap_iter.rs",
        "crates/core/src/engine.rs",
        "hashmap-iter-determinism",
    ),
    ("banned_api.rs", "examples/fixture.rs", "banned-api"),
    (
        "missing_forbid_unsafe.rs",
        "crates/fixture/src/lib.rs",
        "forbid-unsafe-attr",
    ),
];

fn read_fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn each_violating_fixture_triggers_exactly_its_rule() {
    for &(file, vpath, expected) in VIOLATING {
        let src = read_fixture(file);
        let findings = lint_source(vpath, &src);
        assert!(
            !findings.is_empty(),
            "{file}: expected at least one {expected} finding, got none"
        );
        for f in &findings {
            assert_eq!(
                f.rule, expected,
                "{file}: stray {} finding at line {}: {}",
                f.rule, f.line, f.message
            );
        }
    }
}

#[test]
fn suppressed_fixture_yields_no_findings() {
    let src = read_fixture("suppressed.rs");
    let findings = lint_source("crates/core/src/batch.rs", &src);
    assert!(
        findings.is_empty(),
        "suppressions failed to silence: {:?}",
        rules_of(&findings)
    );
}

#[test]
fn suppressed_fixture_violates_without_its_markers() {
    // Strip the markers and the same source must light up; otherwise the
    // suppressed fixture proves nothing.
    let src = read_fixture("suppressed.rs");
    let stripped: String = src
        .lines()
        .filter(|l| !l.contains("allow-file"))
        .map(|l| match l.find("// mqo-lint:") {
            Some(i) => format!("{}\n", &l[..i]),
            None => format!("{l}\n"),
        })
        .collect();
    let findings = lint_source("crates/core/src/batch.rs", &stripped);
    let mut rules = rules_of(&findings);
    rules.sort_unstable();
    rules.dedup();
    assert_eq!(
        rules,
        vec![
            "float-total-order",
            "hashmap-iter-determinism",
            "lock-poison",
            "wall-clock",
        ],
        "stripped suppressed.rs should trip all four rules"
    );
}

#[test]
fn clean_fixture_yields_no_findings() {
    let src = read_fixture("clean.rs");
    let findings = lint_source("crates/core/src/engine.rs", &src);
    assert!(
        findings.is_empty(),
        "look-alike patterns misfired: {findings:?}"
    );
}

#[test]
fn whole_tree_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = lint_workspace(&root).expect("walk workspace");
    assert!(
        findings.is_empty(),
        "tree has lint findings:\n{}",
        mqo_lint::report::render_text(&findings)
    );
}

#[test]
fn allow_on_line_above_applies() {
    let src = "\
// mqo-lint: allow(lock-poison) -- test
let g = m.lock().unwrap();
";
    assert!(lint_source("crates/core/src/x.rs", src).is_empty());
}

#[test]
fn allow_two_lines_above_does_not_apply() {
    let src = "\
// mqo-lint: allow(lock-poison) -- test

let g = m.lock().unwrap();
";
    let findings = lint_source("crates/core/src/x.rs", src);
    assert_eq!(rules_of(&findings), vec!["lock-poison"]);
}

#[test]
fn allow_file_covers_every_line() {
    let src = "\
// mqo-lint: allow-file(lock-poison) -- test
let a = m.lock().unwrap();
let b = m.lock().expect(\"poisoned\");
";
    assert!(lint_source("crates/core/src/x.rs", src).is_empty());
}

#[test]
fn allow_does_not_cross_rules() {
    let src = "\
let g = m.lock().unwrap(); // mqo-lint: allow(wall-clock) -- wrong rule
";
    let findings = lint_source("crates/core/src/x.rs", src);
    assert_eq!(rules_of(&findings), vec!["lock-poison"]);
}

#[test]
fn unknown_rule_in_suppression_is_reported() {
    let src = "// mqo-lint: allow(no-such-rule) -- typo\n";
    let findings = lint_source("crates/core/src/x.rs", src);
    assert_eq!(rules_of(&findings), vec!["bad-suppression"]);
}
