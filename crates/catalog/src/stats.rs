//! Column and table statistics used by selectivity and cardinality
//! estimation (the "standard techniques ... using statistics about
//! relations" of Section 6).

/// Statistics of a single column: distinct-value count and value range over
/// the `i64`-encoded domain. Values are assumed uniformly distributed over
/// `[min, max]` with `distinct` distinct values — the textbook model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ColumnStats {
    /// Estimated number of distinct values, `V(A, R)`.
    pub distinct: f64,
    /// Minimum encoded value.
    pub min: i64,
    /// Maximum encoded value.
    pub max: i64,
}

impl ColumnStats {
    /// Builds stats; `distinct` is clamped to at least 1 and the range is
    /// normalized so `min <= max`.
    pub fn new(distinct: f64, min: i64, max: i64) -> Self {
        let (min, max) = if min <= max { (min, max) } else { (max, min) };
        ColumnStats {
            distinct: distinct.max(1.0),
            min,
            max,
        }
    }

    /// Width of the value range (at least 1 to avoid division by zero for
    /// single-valued columns).
    pub fn span(&self) -> f64 {
        ((self.max - self.min) as f64).max(1.0)
    }

    /// Selectivity of `col = v`: `1 / distinct` if `v` is inside the range,
    /// else 0.
    pub fn eq_selectivity(&self, v: i64) -> f64 {
        if v < self.min || v > self.max {
            0.0
        } else {
            1.0 / self.distinct
        }
    }

    /// Selectivity of `col < v` under the uniform assumption.
    pub fn lt_selectivity(&self, v: i64) -> f64 {
        if v <= self.min {
            0.0
        } else if v > self.max {
            1.0
        } else {
            ((v - self.min) as f64 / self.span()).clamp(0.0, 1.0)
        }
    }

    /// Selectivity of `col > v` under the uniform assumption.
    pub fn gt_selectivity(&self, v: i64) -> f64 {
        if v >= self.max {
            0.0
        } else if v < self.min {
            1.0
        } else {
            ((self.max - v) as f64 / self.span()).clamp(0.0, 1.0)
        }
    }

    /// Selectivity of `col IN {v_1, ..., v_k}`: `k/distinct` capped at 1,
    /// counting only in-range values.
    pub fn in_selectivity(&self, values: &[i64]) -> f64 {
        let k = values
            .iter()
            .filter(|&&v| v >= self.min && v <= self.max)
            .count() as f64;
        (k / self.distinct).min(1.0)
    }

    /// Restricts the stats to a filtered output of `fraction` of the rows:
    /// distinct count shrinks, range is kept (conservative).
    pub fn scaled(&self, out_rows: f64) -> Self {
        ColumnStats {
            distinct: self.distinct.min(out_rows).max(1.0),
            min: self.min,
            max: self.max,
        }
    }
}

/// Statistics of a (base or derived) table.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TableStats {
    /// Estimated row count.
    pub rows: f64,
    /// Tuple width in bytes.
    pub width: u32,
}

impl TableStats {
    /// Builds table stats; rows are clamped non-negative.
    pub fn new(rows: f64, width: u32) -> Self {
        TableStats {
            rows: rows.max(0.0),
            width,
        }
    }

    /// Size in bytes.
    pub fn bytes(&self) -> f64 {
        self.rows * f64::from(self.width)
    }

    /// Number of blocks of `block_size` bytes needed (at least 1 for a
    /// non-empty result).
    pub fn blocks(&self, block_size: u32) -> f64 {
        if self.rows <= 0.0 {
            0.0
        } else {
            (self.bytes() / f64::from(block_size)).ceil().max(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_selectivity_inside_and_outside() {
        let s = ColumnStats::new(10.0, 0, 99);
        assert_eq!(s.eq_selectivity(5), 0.1);
        assert_eq!(s.eq_selectivity(-1), 0.0);
        assert_eq!(s.eq_selectivity(100), 0.0);
    }

    #[test]
    fn range_selectivities() {
        let s = ColumnStats::new(100.0, 0, 100);
        assert_eq!(s.lt_selectivity(0), 0.0);
        assert_eq!(s.lt_selectivity(50), 0.5);
        assert_eq!(s.lt_selectivity(101), 1.0);
        assert_eq!(s.gt_selectivity(100), 0.0);
        assert_eq!(s.gt_selectivity(50), 0.5);
        assert_eq!(s.gt_selectivity(-1), 1.0);
    }

    #[test]
    fn in_selectivity_counts_in_range() {
        let s = ColumnStats::new(4.0, 0, 3);
        assert_eq!(s.in_selectivity(&[0, 2]), 0.5);
        assert_eq!(s.in_selectivity(&[0, 99]), 0.25);
        assert_eq!(s.in_selectivity(&[0, 1, 2, 3, 3]), 1.0);
    }

    #[test]
    fn degenerate_single_value_column() {
        let s = ColumnStats::new(1.0, 7, 7);
        assert_eq!(s.eq_selectivity(7), 1.0);
        assert_eq!(s.lt_selectivity(7), 0.0);
        assert_eq!(s.gt_selectivity(7), 0.0);
    }

    #[test]
    fn scaled_shrinks_distinct() {
        let s = ColumnStats::new(1000.0, 0, 9999);
        let scaled = s.scaled(10.0);
        assert_eq!(scaled.distinct, 10.0);
        assert_eq!(scaled.min, 0);
        let tiny = s.scaled(0.1);
        assert_eq!(tiny.distinct, 1.0);
    }

    #[test]
    fn table_stats_blocks() {
        let t = TableStats::new(1000.0, 100);
        assert_eq!(t.bytes(), 100_000.0);
        assert_eq!(t.blocks(4096), 25.0);
        let empty = TableStats::new(0.0, 100);
        assert_eq!(empty.blocks(4096), 0.0);
        let tiny = TableStats::new(1.0, 8);
        assert_eq!(tiny.blocks(4096), 1.0);
    }

    #[test]
    fn reversed_range_is_normalized() {
        let s = ColumnStats::new(5.0, 10, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 10);
    }
}
