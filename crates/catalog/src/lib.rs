//! Relational catalog and statistics.
//!
//! The optimizer never touches data: like the paper's experiments, it works
//! purely from catalog statistics ("standard techniques were used for
//! estimating costs, using statistics about relations", Section 6). A
//! [`Catalog`] holds base tables with row counts, per-column distinct
//! counts and value ranges, tuple widths, and clustered primary-key
//! indices. Scale factors are applied by the workload crates when building
//! a catalog (e.g. TPCD at 1 GB vs 100 GB).
//!
//! All values are encoded into `i64`: integers directly, dates as day
//! numbers, and strings through the catalog's [`Dictionary`]. This keeps
//! predicate fingerprinting exact (no floating-point keys in the memo).

#![forbid(unsafe_code)]

pub mod dictionary;
pub mod stats;

pub use dictionary::Dictionary;
pub use stats::{ColumnStats, TableStats};

use std::collections::HashMap;

/// Identifies a base table in a [`Catalog`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

/// Identifies a column of a base table: table plus column position.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnRef {
    pub table: TableId,
    pub column: u32,
}

/// A column definition plus its statistics.
#[derive(Clone, Debug)]
pub struct Column {
    /// Column name (unique within its table).
    pub name: String,
    /// Statistics used for selectivity estimation.
    pub stats: ColumnStats,
    /// Width in bytes contributed to the tuple.
    pub width: u32,
}

/// A base table: columns, cardinality, and index information.
#[derive(Clone, Debug)]
pub struct Table {
    /// Table name (unique within the catalog).
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<Column>,
    /// Estimated number of rows.
    pub rows: f64,
    /// Positions of the primary-key columns, in key order. The experiments
    /// assume "a clustered index on the primary keys for all the base
    /// relations" (Section 6.1); when non-empty, the table is stored
    /// clustered on this key.
    pub primary_key: Vec<u32>,
}

impl Table {
    /// Total tuple width in bytes.
    pub fn tuple_width(&self) -> u32 {
        self.columns.iter().map(|c| c.width).sum()
    }

    /// Total table size in bytes.
    pub fn size_bytes(&self) -> f64 {
        self.rows * f64::from(self.tuple_width())
    }

    /// Looks up a column position by name.
    pub fn column_index(&self, name: &str) -> Option<u32> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .map(|i| i as u32)
    }

    /// Whether the table has a clustered index whose leading key column is
    /// `column` (index position within this table).
    pub fn clustered_on(&self, column: u32) -> bool {
        self.primary_key.first() == Some(&column)
    }
}

/// A catalog of base tables plus the string dictionary.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    tables: Vec<Table>,
    by_name: HashMap<String, TableId>,
    dict: Dictionary,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a table, returning its id. Panics on duplicate names.
    pub fn add_table(&mut self, table: Table) -> TableId {
        assert!(
            !self.by_name.contains_key(&table.name),
            "duplicate table name {:?}",
            table.name
        );
        let id = TableId(self.tables.len() as u32);
        self.by_name.insert(table.name.clone(), id);
        self.tables.push(table);
        id
    }

    /// Looks up a table by id.
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.0 as usize]
    }

    /// Looks up a table id by name.
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.by_name.get(name).copied()
    }

    /// Looks up a column by qualified reference.
    pub fn column(&self, col: ColumnRef) -> &Column {
        &self.table(col.table).columns[col.column as usize]
    }

    /// Resolves `"table"."column"` into a [`ColumnRef`].
    pub fn resolve(&self, table: &str, column: &str) -> Option<ColumnRef> {
        let table_id = self.table_id(table)?;
        let column = self.table(table_id).column_index(column)?;
        Some(ColumnRef {
            table: table_id,
            column,
        })
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the catalog has no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Iterates over `(id, table)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TableId, &Table)> {
        self.tables
            .iter()
            .enumerate()
            .map(|(i, t)| (TableId(i as u32), t))
    }

    /// The string dictionary (interning string constants as `i64` codes).
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// Mutable access to the dictionary (used while building workloads).
    pub fn dict_mut(&mut self) -> &mut Dictionary {
        &mut self.dict
    }
}

/// Convenience builder for tables.
#[derive(Debug)]
pub struct TableBuilder {
    name: String,
    columns: Vec<Column>,
    rows: f64,
    primary_key: Vec<u32>,
}

impl TableBuilder {
    /// Starts a table with the given name and row count.
    pub fn new(name: impl Into<String>, rows: f64) -> Self {
        TableBuilder {
            name: name.into(),
            columns: Vec::new(),
            rows,
            primary_key: Vec::new(),
        }
    }

    /// Adds a column with explicit stats.
    pub fn column(
        mut self,
        name: impl Into<String>,
        distinct: f64,
        range: (i64, i64),
        width: u32,
    ) -> Self {
        self.columns.push(Column {
            name: name.into(),
            stats: ColumnStats::new(distinct, range.0, range.1),
            width,
        });
        self
    }

    /// Adds a key-like column: distinct count equals the row count and the
    /// domain is `[0, rows)`.
    pub fn key_column(self, name: impl Into<String>, width: u32) -> Self {
        let rows = self.rows;
        self.column(name, rows, (0, rows.max(1.0) as i64 - 1), width)
    }

    /// Declares the primary key by column names (must already be added).
    /// The table is stored clustered on this key.
    pub fn primary_key(mut self, names: &[&str]) -> Self {
        self.primary_key = names
            .iter()
            .map(|n| {
                self.columns
                    .iter()
                    .position(|c| &c.name == n)
                    .unwrap_or_else(|| panic!("primary key column {n:?} not found"))
                    as u32
            })
            .collect();
        self
    }

    /// Finishes the table.
    pub fn build(self) -> Table {
        assert!(!self.columns.is_empty(), "table must have columns");
        Table {
            name: self.name,
            columns: self.columns,
            rows: self.rows,
            primary_key: self.primary_key,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_table(
            TableBuilder::new("part", 200_000.0)
                .key_column("p_partkey", 4)
                .column("p_type", 150.0, (0, 149), 25)
                .column("p_size", 50.0, (1, 50), 4)
                .primary_key(&["p_partkey"])
                .build(),
        );
        cat.add_table(
            TableBuilder::new("supplier", 10_000.0)
                .key_column("s_suppkey", 4)
                .column("s_nationkey", 25.0, (0, 24), 4)
                .primary_key(&["s_suppkey"])
                .build(),
        );
        cat
    }

    #[test]
    fn lookup_by_name_and_id() {
        let cat = sample_catalog();
        let part = cat.table_id("part").unwrap();
        assert_eq!(cat.table(part).name, "part");
        assert_eq!(cat.table(part).rows, 200_000.0);
        assert!(cat.table_id("lineitem").is_none());
    }

    #[test]
    fn resolve_columns() {
        let cat = sample_catalog();
        let c = cat.resolve("part", "p_size").unwrap();
        assert_eq!(cat.column(c).name, "p_size");
        assert_eq!(cat.column(c).stats.distinct, 50.0);
        assert!(cat.resolve("part", "nope").is_none());
        assert!(cat.resolve("nope", "p_size").is_none());
    }

    #[test]
    fn tuple_width_and_size() {
        let cat = sample_catalog();
        let part = cat.table(cat.table_id("part").unwrap());
        assert_eq!(part.tuple_width(), 33);
        assert_eq!(part.size_bytes(), 200_000.0 * 33.0);
    }

    #[test]
    fn clustered_index_detection() {
        let cat = sample_catalog();
        let part = cat.table(cat.table_id("part").unwrap());
        assert!(part.clustered_on(0));
        assert!(!part.clustered_on(1));
    }

    #[test]
    fn key_column_stats() {
        let cat = sample_catalog();
        let supp = cat.table(cat.table_id("supplier").unwrap());
        assert_eq!(supp.columns[0].stats.distinct, 10_000.0);
        assert_eq!(supp.columns[0].stats.max, 9_999);
    }

    #[test]
    #[should_panic(expected = "duplicate table name")]
    fn duplicate_table_panics() {
        let mut cat = sample_catalog();
        cat.add_table(TableBuilder::new("part", 1.0).key_column("x", 4).build());
    }

    #[test]
    #[should_panic(expected = "primary key column")]
    fn missing_pk_column_panics() {
        TableBuilder::new("t", 1.0)
            .key_column("a", 4)
            .primary_key(&["b"])
            .build();
    }
}
