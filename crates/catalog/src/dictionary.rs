//! String interning: maps string constants (region names, market segments,
//! order priorities, ...) to stable `i64` codes so predicates over string
//! columns hash and compare exactly.

use std::collections::HashMap;

/// An insertion-ordered string ↔ `i64` dictionary.
#[derive(Clone, Debug, Default)]
pub struct Dictionary {
    codes: HashMap<String, i64>,
    strings: Vec<String>,
}

impl Dictionary {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its code (existing or freshly assigned).
    pub fn intern(&mut self, s: &str) -> i64 {
        if let Some(&code) = self.codes.get(s) {
            return code;
        }
        let code = self.strings.len() as i64;
        self.codes.insert(s.to_owned(), code);
        self.strings.push(s.to_owned());
        code
    }

    /// Looks up the code of `s` without interning.
    pub fn code(&self, s: &str) -> Option<i64> {
        self.codes.get(s).copied()
    }

    /// Reverse lookup.
    pub fn string(&self, code: i64) -> Option<&str> {
        usize::try_from(code)
            .ok()
            .and_then(|i| self.strings.get(i))
            .map(String::as_str)
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern("ASIA");
        let b = d.intern("EUROPE");
        assert_ne!(a, b);
        assert_eq!(d.intern("ASIA"), a);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn roundtrip() {
        let mut d = Dictionary::new();
        let code = d.intern("BUILDING");
        assert_eq!(d.string(code), Some("BUILDING"));
        assert_eq!(d.code("BUILDING"), Some(code));
        assert_eq!(d.code("MISSING"), None);
        assert_eq!(d.string(99), None);
        assert_eq!(d.string(-1), None);
    }
}
