//! Property-based tests for the optimizer substrate: estimation and memo
//! invariants under randomized inputs.
//!
//! The build is offline, so instead of proptest these run as deterministic
//! seeded sweeps (see `mqo_submod::prng`): each case derives its inputs
//! from a per-case seed, and failures panic with that seed.

use mqo_catalog::ColumnStats;
use mqo_submod::prng::{seeded_sweep, Prng};
use mqo_tpcd::random::{chain_catalog, chain_with_sels as chain_query};
use mqo_volcano::cost::{CostModel, DiskCostModel};
use mqo_volcano::logical::LogicalOp;
use mqo_volcano::memo::Memo;
use mqo_volcano::optimizer::{MatOverlay, Optimizer, PlanTable};
use mqo_volcano::rules::{expand, RuleSet};
use mqo_volcano::{Constraint, DagContext, PlanNode};

const CASES: u64 = 48;
const SWEEP_SEED: u64 = 0x5EED_0002;

/// A per-table selection mask drawn from the low bits of `mask`.
fn draw_sels(rng: &mut Prng, k: usize, constant: i64) -> Vec<Option<i64>> {
    let mask = rng.gen_range(0u8..16);
    (0..k)
        .map(|i| (mask >> i & 1 == 1).then_some(constant))
        .collect()
}

/// Constraint selectivities are probabilities; intersections never
/// increase selectivity.
#[test]
fn prop_selectivity_in_unit_interval() {
    seeded_sweep("selectivity_in_unit_interval", SWEEP_SEED, CASES, |rng| {
        let distinct = rng.gen_range(1.0f64..10_000.0);
        let min = rng.gen_range(-1000i64..1000);
        let span = rng.gen_range(1i64..100_000);
        let v1 = rng.gen_range(-2000i64..110_000);
        let v2 = rng.gen_range(-2000i64..110_000);
        let stats = ColumnStats::new(distinct, min, min + span);
        for c in [
            Constraint::eq(v1),
            Constraint::le(v1),
            Constraint::ge(v1),
            Constraint::range(Some(v1.min(v2)), Some(v1.max(v2))),
            Constraint::in_list(vec![v1, v2]),
        ] {
            let s = c.selectivity(&stats);
            assert!((0.0..=1.0).contains(&s), "{c:?} -> {s}");
        }
        let a = Constraint::le(v1.max(v2));
        let b = Constraint::ge(v1.min(v2));
        let both = a.intersect(&b);
        assert!(both.selectivity(&stats) <= a.selectivity(&stats) + 1e-12);
        assert!(both.selectivity(&stats) <= b.selectivity(&stats) + 1e-12);
    });
}

/// Inserting the same plan twice is a no-op; expansion is idempotent;
/// all costs are finite and positive.
#[test]
fn prop_memo_idempotent_and_costs_finite() {
    seeded_sweep("memo_idempotent", SWEEP_SEED + 1, CASES, |rng| {
        let k = rng.gen_range(2usize..5);
        let base_rows = rng.gen_range(100.0f64..50_000.0);
        let cat = chain_catalog(k, base_rows);
        let mut ctx = DagContext::new(cat);
        let sels = draw_sels(rng, k, 7);
        let q = chain_query(&mut ctx, k, &sels);
        let mut memo = Memo::new(ctx);
        let g1 = memo.insert_plan(&q);
        let g2 = memo.insert_plan(&q);
        assert_eq!(memo.find(g1), memo.find(g2));

        let s1 = expand(&mut memo, &RuleSet::default());
        let s2 = expand(&mut memo, &RuleSet::default());
        assert_eq!(s1.exprs, s2.exprs);
        assert_eq!(s2.passes, 1);

        let cm = DiskCostModel::paper();
        let opt = Optimizer::new(&memo, &cm);
        let mut table = PlanTable::new();
        let cost = opt.best_use_cost(g1, &MatOverlay::empty(), &mut table);
        assert!(cost.is_finite() && cost > 0.0, "cost {cost}");
    });
}

/// Group logical properties stay consistent after expansion: every
/// expression's recomputed row estimate matches its group's.
#[test]
fn prop_group_cardinalities_consistent() {
    seeded_sweep("group_cardinalities", SWEEP_SEED + 2, CASES, |rng| {
        let k = rng.gen_range(2usize..5);
        let cat = chain_catalog(k, 1000.0);
        let mut ctx = DagContext::new(cat);
        let sels = draw_sels(rng, k, 3);
        let q = chain_query(&mut ctx, k, &sels);
        let mut memo = Memo::new(ctx);
        memo.insert_plan(&q);
        expand(&mut memo, &RuleSet::default());
        // Rows non-negative and finite everywhere; join groups' leaves are
        // consistent with their children.
        for e in memo.expr_ids() {
            let g = memo.group_of(e);
            let props = memo.props(g);
            assert!(
                props.rows.is_finite() && props.rows >= 0.0,
                "rows {}",
                props.rows
            );
            if let LogicalOp::Join(_) = &memo.expr(e).op {
                let ch = &memo.expr(e).children;
                let l = memo.props(memo.find(ch[0])).leaves.len();
                let r = memo.props(memo.find(ch[1])).leaves.len();
                assert_eq!(l + r, props.leaves.len());
            }
        }
    });
}

/// Materialization monotonicity: adding a group to the overlay never
/// increases the best-use cost of any other group.
#[test]
fn prop_overlay_monotone() {
    seeded_sweep("overlay_monotone", SWEEP_SEED + 3, CASES, |rng| {
        let k = rng.gen_range(2usize..4);
        let sel = rng.gen_bool(0.5).then(|| rng.gen_range(0i64..20));
        let cat = chain_catalog(k, 20_000.0);
        let mut ctx = DagContext::new(cat);
        let sels: Vec<Option<i64>> = std::iter::once(sel)
            .chain(std::iter::repeat(None))
            .take(k)
            .collect();
        let q = chain_query(&mut ctx, k, &sels);
        let mut memo = Memo::new(ctx);
        let root = memo.insert_plan(&q);
        expand(&mut memo, &RuleSet::default());
        let cm = DiskCostModel::paper();
        let opt = Optimizer::new(&memo, &cm);

        let mut t0 = PlanTable::new();
        let plain = opt.best_use_cost(root, &MatOverlay::empty(), &mut t0);
        // Try every group as a singleton overlay.
        for g in memo.topo_order() {
            if g == memo.find(root) {
                continue;
            }
            let overlay = MatOverlay::new(&memo, [g]);
            let mut t = PlanTable::new();
            let with = opt.best_use_cost(root, &overlay, &mut t);
            assert!(
                with <= plain + 1e-9 * (1.0 + plain),
                "overlaying {g:?} increased buc: {with} > {plain}"
            );
        }
    });
}

/// Hash-consing soundness: interning the same logical expression twice
/// yields the same [`mqo_volcano::memo::ExprId`] (and allocates nothing),
/// and structurally distinct expressions never collide — checked against a
/// naive structural-equality oracle over every pair of live expressions,
/// independent of the interner's own index.
#[test]
fn prop_hash_consing_sound() {
    seeded_sweep("hash_consing_sound", SWEEP_SEED + 5, CASES, |rng| {
        let k = rng.gen_range(2usize..5);
        let cat = chain_catalog(k, 1000.0);
        let mut ctx = DagContext::new(cat);
        let n_queries = rng.gen_range(1usize..4);
        let queries: Vec<PlanNode> = (0..n_queries)
            .map(|_| {
                let constant = rng.gen_range(0i64..3);
                let sels = draw_sels(rng, k, constant);
                chain_query(&mut ctx, k, &sels)
            })
            .collect();
        let mut memo = Memo::new(ctx);
        for q in &queries {
            let r = memo.insert_plan(q);
            memo.add_query_root(r);
        }
        expand(&mut memo, &RuleSet::default());
        memo.check_consistency();

        // Naive oracle: no two live expressions are structurally equal
        // (same operator payload, same find-resolved children).
        let ids: Vec<_> = memo.expr_ids().collect();
        for (i, &e1) in ids.iter().enumerate() {
            let c1: Vec<_> = memo.children(e1).iter().map(|&c| memo.find(c)).collect();
            for &e2 in &ids[i + 1..] {
                let c2: Vec<_> = memo.children(e2).iter().map(|&c| memo.find(c)).collect();
                assert!(
                    memo.op(e1) != memo.op(e2) || c1 != c2,
                    "live exprs {e1:?} and {e2:?} are structurally identical"
                );
            }
        }

        // Re-interning every live expression is the identity: same ExprId
        // through the probe, same group through insert, no new slots.
        for &e in &ids {
            let op = memo.op(e).clone();
            let children = memo.children(e).to_vec();
            assert_eq!(
                memo.expr_id_of(&op, &children),
                Some(e),
                "probe of a live expr must return its own id"
            );
            let owner = memo.group_of(e);
            let before = memo.exprs_allocated();
            let g = memo.insert(op, children, None);
            assert_eq!(g, owner, "re-insert must land on the owning group");
            assert_eq!(
                memo.exprs_allocated(),
                before,
                "re-insert must not allocate"
            );
        }
    });
}

/// The disk cost model is monotone in blocks for every operator.
#[test]
fn prop_cost_model_monotone() {
    seeded_sweep("cost_model_monotone", SWEEP_SEED + 4, CASES, |rng| {
        let b1 = rng.gen_range(1.0f64..1e6);
        let factor = rng.gen_range(1.0f64..100.0);
        let m = DiskCostModel::paper();
        let b2 = b1 * factor;
        assert!(m.table_scan(b2) >= m.table_scan(b1));
        assert!(m.index_scan(b2) >= m.index_scan(b1));
        assert!(m.sort(b2) >= m.sort(b1) - 1e-9);
        assert!(m.materialize_write(b2) >= m.materialize_write(b1));
        assert!(m.materialize_read(b2) >= m.materialize_read(b1));
        assert!(m.nl_join(b2, 10.0, 1.0) >= m.nl_join(b1, 10.0, 1.0));
        assert!(m.merge_join(b2, 10.0, 1.0) >= m.merge_join(b1, 10.0, 1.0));
    });
}
