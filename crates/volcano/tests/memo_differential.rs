//! Differential suite for parallel memo expansion: the memo produced by
//! `expand_with(.., threads)` must be **identical** to the serial one at
//! every thread count — same group/expression counts, same dense
//! topological view (which pins group identities, adjacency, and order),
//! and identical optimized physical plans for every query root.
//!
//! The generation phase reads a frozen snapshot and the commit phase is
//! serial in frontier order, so this holds bit-for-bit by construction;
//! these sweeps pin the contract on the real TPCD batched workloads and on
//! seeded random instances.

use mqo_submod::prng::Prng;
use mqo_volcano::cost::DiskCostModel;
use mqo_volcano::logical::PlanNode;
use mqo_volcano::memo::Memo;
use mqo_volcano::optimizer::{MatOverlay, Optimizer, PlanTable};
use mqo_volcano::physical::SortOrder;
use mqo_volcano::rules::{expand_with, ExpansionStats, RuleSet};
use mqo_volcano::{DagContext, GroupId};

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Builds a memo from `queries`, expands it with `threads` workers, and
/// roots it.
fn build(
    ctx: DagContext,
    queries: &[PlanNode],
    rules: &RuleSet,
    threads: usize,
) -> (Memo, GroupId, Vec<GroupId>, ExpansionStats) {
    let mut memo = Memo::new(ctx);
    for q in queries {
        let root = memo.insert_plan(q);
        memo.add_query_root(root);
    }
    let stats = expand_with(&mut memo, rules, threads);
    let root = memo.build_batch_root();
    let roots = memo.roots();
    (memo, root, roots, stats)
}

/// The optimized physical plan of every query root (no materializations),
/// rendered to strings for comparison, plus the costs.
fn optimized_plans(memo: &Memo, roots: &[GroupId]) -> Vec<(String, f64)> {
    let cm = DiskCostModel::paper();
    let opt = Optimizer::new(memo, &cm);
    let overlay = MatOverlay::empty();
    roots
        .iter()
        .map(|&r| {
            let mut table = PlanTable::new();
            let cost = opt.best_use_cost(r, &overlay, &mut table);
            let plan = opt.extract_plan(r, &SortOrder::none(), &overlay, &mut table);
            (format!("{plan:?}"), cost)
        })
        .collect()
}

/// Asserts the serial and `threads`-worker expansions of the same workload
/// agree on everything observable.
fn assert_identical(make: impl Fn() -> (DagContext, Vec<PlanNode>), rules: &RuleSet, label: &str) {
    let (ctx, queries) = make();
    let (serial, s_root, s_roots, s_stats) = build(ctx, &queries, rules, 1);
    serial.check_consistency();
    let s_topo = serial.topo_view();
    let s_plans = optimized_plans(&serial, &s_roots);
    for t in THREADS.into_iter().skip(1) {
        let (ctx, queries) = make();
        let (par, p_root, p_roots, p_stats) = build(ctx, &queries, rules, t);
        par.check_consistency();
        assert_eq!(
            serial.exprs_allocated(),
            par.exprs_allocated(),
            "{label} threads={t}: allocated expression slots diverge"
        );
        assert_eq!(serial.n_exprs(), par.n_exprs(), "{label} threads={t}");
        assert_eq!(serial.n_groups(), par.n_groups(), "{label} threads={t}");
        assert_eq!(s_stats.passes, p_stats.passes, "{label} threads={t}");
        assert_eq!(
            s_stats.candidates, p_stats.candidates,
            "{label} threads={t}"
        );
        assert_eq!(s_root, p_root, "{label} threads={t}: batch root diverges");
        assert_eq!(s_roots, p_roots, "{label} threads={t}: query roots");
        assert_eq!(
            s_topo,
            par.topo_view(),
            "{label} threads={t}: TopoView diverges"
        );
        assert_eq!(
            s_plans,
            optimized_plans(&par, &p_roots),
            "{label} threads={t}: optimized plans diverge"
        );
    }
}

#[test]
fn tpcd_batches_expand_identically_at_every_thread_count() {
    for i in [3usize, 4] {
        for rules in [RuleSet::default(), RuleSet::joins_only()] {
            assert_identical(
                || {
                    let w = mqo_tpcd::batched(i, 1.0);
                    (w.ctx, w.queries)
                },
                &rules,
                &format!("BQ{i}"),
            );
        }
    }
}

#[test]
fn random_instances_expand_identically_at_every_thread_count() {
    // Instance distribution shared with the session-evolution harness:
    // `mqo_tpcd::random` (5 chained tables, 2-4 overlapping chain queries).
    for case in 0..8u64 {
        let seed = Prng::derive_seed(0x4D45_4D4F, case);
        let make = || mqo_tpcd::random::random_workload(seed, 5);
        assert_identical(make, &RuleSet::default(), &format!("random case {case}"));
    }
}
