//! Cost models.
//!
//! The optimizer is agnostic to the cost estimates ("the cost estimator
//! functions are taken as input to the optimizer", Section 2.2); it asks a
//! [`CostModel`] for per-operator costs in terms of input/output *blocks*.
//!
//! [`DiskCostModel`] uses the paper's constants (Section 6): 4 KB blocks,
//! 6 MB of memory per operator, 10 ms seek, 2 ms/block read, 4 ms/block
//! write, 0.2 ms/block of CPU. [`UnitCostModel`] reproduces the illustrative
//! costs of Example 1 (10 per scan, 100 per join, 10 per materialization
//! write/read).

/// Per-operator cost oracle. All quantities are in blocks; returned costs
/// are in milliseconds (for the disk model) or abstract units.
///
/// `Send + Sync` is a supertrait so sessions and the serving layer can own
/// a `Box<dyn CostModel>` behind a shared writer lock; cost models are
/// pure arithmetic over their constants, so this costs implementors
/// nothing.
pub trait CostModel: Send + Sync {
    /// Block size in bytes (used to convert row counts into blocks).
    fn block_size(&self) -> u32;

    /// Full sequential scan of a base relation.
    fn table_scan(&self, blocks: f64) -> f64;

    /// Clustered-index range scan touching `matched_blocks`.
    fn index_scan(&self, matched_blocks: f64) -> f64;

    /// In-stream filter over `input_blocks` (CPU only).
    fn filter(&self, input_blocks: f64) -> f64;

    /// External merge sort of `blocks` (input arrives piped; output piped).
    fn sort(&self, blocks: f64) -> f64;

    /// Merge join of sorted streams (CPU only; sorting is paid by the
    /// children or enforcers).
    fn merge_join(&self, left_blocks: f64, right_blocks: f64, out_blocks: f64) -> f64;

    /// Block nested-loops join. The first pass over the inner is produced
    /// by the inner's plan (already costed); if more passes are needed the
    /// inner is spooled and re-read.
    fn nl_join(&self, outer_blocks: f64, inner_blocks: f64, out_blocks: f64) -> f64;

    /// Sort-based aggregation over a sorted input stream.
    fn sort_agg(&self, input_blocks: f64, out_blocks: f64) -> f64;

    /// Ungrouped (scalar) aggregation.
    fn scalar_agg(&self, input_blocks: f64) -> f64;

    /// Writing a materialized result sequentially (Section 6: "the
    /// materialization cost is the cost of writing out the results
    /// sequentially").
    fn materialize_write(&self, blocks: f64) -> f64;

    /// Re-reading a materialized result.
    fn materialize_read(&self, blocks: f64) -> f64;
}

/// The paper's resource-consumption model.
#[derive(Clone, Copy, Debug)]
pub struct DiskCostModel {
    /// Block size in bytes (4 KB in the paper).
    pub block_size: u32,
    /// Memory per operator, in blocks (6 MB in the paper).
    pub memory_blocks: f64,
    /// Seek time per random access, ms.
    pub seek_ms: f64,
    /// Transfer time per block read, ms.
    pub read_ms: f64,
    /// Transfer time per block write, ms.
    pub write_ms: f64,
    /// CPU cost per block processed, ms.
    pub cpu_ms: f64,
}

impl DiskCostModel {
    /// The configuration of Section 6: 4 KB blocks, 6 MB per operator,
    /// 10 ms seek, 2 ms/block read, 4 ms/block write, 0.2 ms/block CPU.
    pub fn paper() -> Self {
        DiskCostModel {
            block_size: 4096,
            memory_blocks: (6 * 1024 * 1024 / 4096) as f64, // 1536 blocks
            seek_ms: 10.0,
            read_ms: 2.0,
            write_ms: 4.0,
            cpu_ms: 0.2,
        }
    }

    /// The paper's alternative 128 MB-per-operator configuration.
    pub fn paper_128mb() -> Self {
        DiskCostModel {
            memory_blocks: (128usize * 1024 * 1024 / 4096) as f64,
            ..Self::paper()
        }
    }

    fn read_seq(&self, blocks: f64) -> f64 {
        self.seek_ms + blocks * self.read_ms
    }

    fn write_seq(&self, blocks: f64) -> f64 {
        self.seek_ms + blocks * self.write_ms
    }
}

impl CostModel for DiskCostModel {
    fn block_size(&self) -> u32 {
        self.block_size
    }

    fn table_scan(&self, blocks: f64) -> f64 {
        self.read_seq(blocks) + blocks * self.cpu_ms
    }

    fn index_scan(&self, matched_blocks: f64) -> f64 {
        self.read_seq(matched_blocks) + matched_blocks * self.cpu_ms
    }

    fn filter(&self, input_blocks: f64) -> f64 {
        input_blocks * self.cpu_ms
    }

    fn sort(&self, blocks: f64) -> f64 {
        let m = self.memory_blocks.max(3.0);
        if blocks <= m {
            // In-memory sort, pipelined.
            return blocks * self.cpu_ms;
        }
        let runs = (blocks / m).ceil();
        let merge_passes = (runs.ln() / (m - 1.0).ln()).ceil().max(1.0);
        // Run formation write + per-pass read/write + final pass read-only
        // (output piped to the consumer).
        let io = self.write_seq(blocks)
            + (merge_passes - 1.0) * (self.read_seq(blocks) + self.write_seq(blocks))
            + self.read_seq(blocks);
        io + (merge_passes + 1.0) * blocks * self.cpu_ms
    }

    fn merge_join(&self, left_blocks: f64, right_blocks: f64, out_blocks: f64) -> f64 {
        (left_blocks + right_blocks + out_blocks) * self.cpu_ms
    }

    fn nl_join(&self, outer_blocks: f64, inner_blocks: f64, out_blocks: f64) -> f64 {
        let m = (self.memory_blocks - 2.0).max(1.0);
        let passes = (outer_blocks / m).ceil().max(1.0);
        let respool = if passes > 1.0 {
            self.write_seq(inner_blocks) + (passes - 1.0) * self.read_seq(inner_blocks)
        } else {
            0.0
        };
        respool + (outer_blocks + passes * inner_blocks + out_blocks) * self.cpu_ms
    }

    fn sort_agg(&self, input_blocks: f64, out_blocks: f64) -> f64 {
        (input_blocks + out_blocks) * self.cpu_ms
    }

    fn scalar_agg(&self, input_blocks: f64) -> f64 {
        input_blocks * self.cpu_ms
    }

    fn materialize_write(&self, blocks: f64) -> f64 {
        self.write_seq(blocks)
    }

    fn materialize_read(&self, blocks: f64) -> f64 {
        self.read_seq(blocks) + blocks * self.cpu_ms
    }
}

/// The illustrative model of Example 1: every base-relation access costs 10,
/// every join costs 100, materializing costs 10 to write and 10 per re-read.
/// Everything else is free. Result sizes are ignored.
#[derive(Clone, Copy, Debug, Default)]
pub struct UnitCostModel;

impl CostModel for UnitCostModel {
    fn block_size(&self) -> u32 {
        4096
    }
    fn table_scan(&self, _blocks: f64) -> f64 {
        10.0
    }
    fn index_scan(&self, _blocks: f64) -> f64 {
        10.0
    }
    fn filter(&self, _blocks: f64) -> f64 {
        0.0
    }
    fn sort(&self, _blocks: f64) -> f64 {
        0.0
    }
    fn merge_join(&self, _l: f64, _r: f64, _o: f64) -> f64 {
        100.0
    }
    fn nl_join(&self, _outer: f64, _inner: f64, _o: f64) -> f64 {
        100.0
    }
    fn sort_agg(&self, _i: f64, _o: f64) -> f64 {
        0.0
    }
    fn scalar_agg(&self, _i: f64) -> f64 {
        0.0
    }
    fn materialize_write(&self, _blocks: f64) -> f64 {
        10.0
    }
    fn materialize_read(&self, _blocks: f64) -> f64 {
        10.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let m = DiskCostModel::paper();
        assert_eq!(m.block_size(), 4096);
        assert_eq!(m.memory_blocks, 1536.0);
        // Scan of 100 blocks: 10 + 100*2 + 100*0.2 = 230 ms.
        assert!((m.table_scan(100.0) - 230.0).abs() < 1e-9);
    }

    #[test]
    fn sort_in_memory_vs_external() {
        let m = DiskCostModel::paper();
        // 1000 blocks fit in 1536: CPU only.
        assert!((m.sort(1000.0) - 200.0).abs() < 1e-9);
        // 10_000 blocks: 7 runs, 1 merge pass.
        let c = m.sort(10_000.0);
        let expect = (10.0 + 10_000.0 * 4.0) // run formation write
            + (10.0 + 10_000.0 * 2.0)        // final merge read
            + 2.0 * 10_000.0 * 0.2; // cpu
        assert!((c - expect).abs() < 1e-9, "{c} vs {expect}");
        // Sorting more blocks costs more.
        assert!(m.sort(20_000.0) > c);
    }

    #[test]
    fn nl_join_respools_inner() {
        let m = DiskCostModel::paper();
        // Outer fits in memory: no respool.
        let small = m.nl_join(100.0, 50.0, 10.0);
        assert!((small - (100.0 + 50.0 + 10.0) * 0.2).abs() < 1e-9);
        // Outer needs 2 passes: inner written once, re-read once.
        let big = m.nl_join(3000.0, 50.0, 10.0);
        let expect = (10.0 + 50.0 * 4.0) + (10.0 + 50.0 * 2.0) + (3000.0 + 2.0 * 50.0 + 10.0) * 0.2;
        assert!((big - expect).abs() < 1e-9);
    }

    #[test]
    fn unit_model_matches_example1_numbers() {
        let m = UnitCostModel;
        assert_eq!(m.table_scan(12345.0), 10.0);
        assert_eq!(m.nl_join(1.0, 1.0, 1.0), 100.0);
        assert_eq!(m.materialize_write(9.0), 10.0);
        assert_eq!(m.materialize_read(9.0), 10.0);
    }

    #[test]
    fn costs_monotone_in_blocks() {
        let m = DiskCostModel::paper();
        for b in [1.0, 10.0, 100.0, 1000.0, 100_000.0] {
            assert!(m.table_scan(b * 2.0) > m.table_scan(b));
            assert!(m.sort(b * 2.0) >= m.sort(b));
            assert!(m.materialize_write(b) > 0.0);
        }
    }
}
